//! Quickstart: run the hedged two-party swap of §5.2 end to end, then show
//! what happens when Bob turns into a sore loser.

use sore_loser_hedging::protocols::script::Strategy;
use sore_loser_hedging::protocols::two_party::{run_hedged_swap, TwoPartyConfig};

fn main() {
    let config = TwoPartyConfig::default();

    println!("== Hedged two-party swap: both parties compliant ==");
    let report = run_hedged_swap(&config, Strategy::compliant(), Strategy::compliant());
    println!("swap completed: {}", report.swap_completed);
    println!(
        "Alice: apricot {:+}, banana {:+}, premiums {:+}",
        report.alice_apricot_payoff, report.alice_banana_payoff, report.alice_premium_payoff
    );
    println!(
        "Bob:   apricot {:+}, banana {:+}, premiums {:+}",
        report.bob_apricot_payoff, report.bob_banana_payoff, report.bob_premium_payoff
    );

    println!();
    println!("== Bob walks away after the premium phase ==");
    let report = run_hedged_swap(&config, Strategy::compliant(), Strategy::stop_after(1));
    println!("swap completed: {}", report.swap_completed);
    println!("Alice premium payoff: {:+} (compensated with p_b)", report.alice_premium_payoff);
    println!("Bob premium payoff:   {:+} (forfeits p_b)", report.bob_premium_payoff);
    println!(
        "Alice locked up for {} blocks and is hedged: {}",
        report.alice_lockup.principal_blocks, report.hedged_for_alice
    );
}
