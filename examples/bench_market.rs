//! Machine-readable market-settlement throughput report.
//!
//! Runs the market-scale settlement engine (`marketsim::market`) at a
//! pinned seed and worker counts 1, 2, 4 and 8, asserts the engine's two
//! hard promises — zero violations (every deal reaches its hedged-theorem
//! terminal state, funds conserve fee-adjusted on every shard) and a
//! byte-identical settlement report across worker counts — and writes
//! `BENCH_market.json` with settled-deals/sec, p50/p99 settlement latency
//! in rounds, and gas-per-deal.
//!
//! ```text
//! cargo run --release --example bench_market
//! ```
//!
//! The committed `BENCH_market.json` holds the full-scale numbers: 8 chain
//! shards × 120,000 accounts each, 2,000 deals. CI reruns the same binary
//! with `BENCH_MARKET_SMOKE=1` — a small deal count on the same shard
//! topology — so the correctness assertions and the JSON schema are
//! exercised on every push without the full-scale runtime.

use std::fmt::Write as _;

use sore_loser_hedging::chainsim::TraceMode;
use sore_loser_hedging::marketsim::market::{run_market, MarketConfig};

/// The pinned seed of the committed benchmark run.
const SEED: u64 = 0x005E_771E_5EED;

/// Worker counts benchmarked; the report must be identical across all.
const WORKER_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn config(smoke: bool) -> MarketConfig {
    let base = MarketConfig {
        seed: SEED,
        shards: 8,
        delta_blocks: 2,
        workers: 1,
        trace: TraceMode::Off,
        gas_price: 3,
        endowment: 1_000_000_000,
        walkaway_percent: 10,
        ..MarketConfig::default()
    };
    if smoke {
        // Same shard topology (contention pattern), small deal count.
        MarketConfig { accounts: 16_000, deals: 300, deals_per_round: 32, ..base }
    } else {
        MarketConfig { accounts: 120_000, deals: 2_000, deals_per_round: 64, ..base }
    }
}

fn main() {
    let smoke = std::env::var("BENCH_MARKET_SMOKE").as_deref() == Ok("1");
    let cfg = config(smoke);

    println!("=== market settlement throughput (seed {SEED:#x}, smoke={smoke}) ===");
    println!(
        "{} shards x {} accounts, {} deals ({} per round), delta={} blocks",
        cfg.shards, cfg.accounts, cfg.deals, cfg.deals_per_round, cfg.delta_blocks
    );
    println!("workers | settled | deals/sec | setup s | execute s");

    // One untimed warm-up run: the first market pays the allocator's and
    // page cache's cold-start costs, which would otherwise be billed
    // entirely to the first measured worker count.
    let warmup = run_market(&cfg);
    assert_eq!(warmup.report.violations, 0, "warm-up run violated invariants");

    let mut runs = Vec::new();
    for &workers in &WORKER_COUNTS {
        let run = run_market(&MarketConfig { workers, ..cfg.clone() });
        assert_eq!(
            run.report.violations, 0,
            "workers={workers}: market violated invariants: {:?}",
            run.report.violation_details
        );
        assert_eq!(run.report.settled, cfg.deals, "workers={workers}: not every deal settled");
        println!(
            "{workers} | {} | {:.0} | {:.3} | {:.3}",
            run.report.settled,
            run.settled_per_sec(),
            run.setup.as_secs_f64(),
            run.execute.as_secs_f64()
        );
        runs.push((workers, run));
    }

    // The determinism promise, enforced where the numbers are produced:
    // every worker count yields the byte-identical settlement report.
    let base = &runs[0].1.report;
    for (workers, run) in &runs[1..] {
        assert_eq!(
            run.report.canonical_string(),
            base.canonical_string(),
            "workers={workers}: settlement report diverged from 1-worker run"
        );
    }
    let digest = base.digest();
    println!("report digest {digest} identical across workers {WORKER_COUNTS:?}");

    if !smoke {
        // Acceptance floor of the committed run.
        assert!(base.settled >= 1_000, "committed run must settle >= 1000 deals");
        assert!(base.accounts >= 100_000, "committed run must use >= 100k shared accounts");
    }

    // The same market under seed-pinned reorg injection: every shard chain
    // keeps a depth-1 finality window and fires a redelivering reorg
    // roughly every 4 rounds. Depth-1 rewinds replay the open round
    // verbatim, so settlement must stay clean — and the report must stay
    // byte-identical across worker counts with reorgs firing.
    let reorg_cfg = MarketConfig { reorg_interval: 4, reorg_depth: 1, ..cfg.clone() };
    let reorg_base = run_market(&reorg_cfg).report;
    assert!(reorg_base.reorgs > 0, "reorg injector never fired");
    assert_eq!(
        reorg_base.violations, 0,
        "depth-1 reorgs must not break settlement: {:?}",
        reorg_base.violation_details
    );
    assert_eq!(reorg_base.settled, cfg.deals, "reorg run: not every deal settled");
    for &workers in &WORKER_COUNTS[1..] {
        let run = run_market(&MarketConfig { workers, ..reorg_cfg.clone() });
        assert_eq!(
            run.report.canonical_string(),
            reorg_base.canonical_string(),
            "workers={workers}: reorg-run report diverged from 1-worker run"
        );
    }
    let reorg_digest = reorg_base.digest();
    println!(
        "reorg run: {} reorgs, {} calls rewound+replayed, digest {reorg_digest} identical \
         across workers {WORKER_COUNTS:?}",
        reorg_base.reorgs, reorg_base.reorg_rewound_calls
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"market_settlement\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"config\": {\n");
    let _ = writeln!(json, "    \"seed\": \"{SEED:#x}\",");
    let _ = writeln!(json, "    \"shards\": {},", cfg.shards);
    let _ = writeln!(json, "    \"accounts_per_shard\": {},", cfg.accounts);
    let _ = writeln!(json, "    \"deals\": {},", cfg.deals);
    let _ = writeln!(json, "    \"deals_per_round\": {},", cfg.deals_per_round);
    let _ = writeln!(json, "    \"delta_blocks\": {},", cfg.delta_blocks);
    let _ = writeln!(json, "    \"gas_price\": {},", cfg.gas_price);
    let _ = writeln!(json, "    \"walkaway_percent\": {}", cfg.walkaway_percent);
    json.push_str("  },\n");
    json.push_str("  \"report\": {\n");
    let _ = writeln!(json, "    \"rounds\": {},", base.rounds);
    let _ = writeln!(json, "    \"settled\": {},", base.settled);
    json.push_str("    \"settled_by_kind\": {\n");
    let _ = writeln!(json, "      \"hedged_swap\": {},", base.settled_by_kind.hedged_swap);
    let _ = writeln!(json, "      \"cycle3\": {},", base.settled_by_kind.cycle3);
    let _ = writeln!(json, "      \"auction\": {},", base.settled_by_kind.auction);
    let _ = writeln!(json, "      \"brokered\": {}", base.settled_by_kind.brokered);
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"violations\": {},", base.violations);
    let _ = writeln!(json, "    \"latency_p50_rounds\": {},", base.latency_p50_rounds);
    let _ = writeln!(json, "    \"latency_p99_rounds\": {},", base.latency_p99_rounds);
    let _ = writeln!(json, "    \"latency_max_rounds\": {},", base.latency_max_rounds);
    let _ = writeln!(json, "    \"gas_total\": {},", base.gas_total);
    let _ = writeln!(json, "    \"gas_per_deal\": {},", base.gas_per_deal);
    let _ = writeln!(json, "    \"fees_total\": {},", base.fees_total);
    let _ = writeln!(json, "    \"calls\": {},", base.calls);
    let _ = writeln!(json, "    \"failed_calls\": {},", base.failed_calls);
    let _ = writeln!(json, "    \"digest\": \"{digest}\"");
    json.push_str("  },\n");
    json.push_str("  \"reorg_run\": {\n");
    let _ = writeln!(json, "    \"reorg_interval\": {},", reorg_cfg.reorg_interval);
    let _ = writeln!(json, "    \"reorg_depth\": {},", reorg_cfg.reorg_depth);
    let _ = writeln!(json, "    \"reorgs\": {},", reorg_base.reorgs);
    let _ = writeln!(json, "    \"rewound_calls\": {},", reorg_base.reorg_rewound_calls);
    let _ = writeln!(json, "    \"redelivered_calls\": {},", reorg_base.reorg_redelivered_calls);
    let _ =
        writeln!(json, "    \"redelivery_failures\": {},", reorg_base.reorg_redelivery_failures);
    let _ = writeln!(json, "    \"settled\": {},", reorg_base.settled);
    let _ = writeln!(json, "    \"violations\": {},", reorg_base.violations);
    let _ = writeln!(json, "    \"digest\": \"{reorg_digest}\"");
    json.push_str("  },\n");
    json.push_str("  \"settled_deals_per_sec\": {\n");
    for (i, (workers, run)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{workers}\": {:.0}{comma}", run.settled_per_sec());
    }
    json.push_str("  },\n");
    json.push_str("  \"execute_seconds\": {\n");
    for (i, (workers, run)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{workers}\": {:.4}{comma}", run.execute.as_secs_f64());
    }
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_market.json", &json).expect("write BENCH_market.json");
    println!("wrote BENCH_market.json ({} bytes)", json.len());
}
