//! The brokered ticket sale of §8 (Figure 4): Alice brokers Bob's ticket to
//! Carol, keeping the 1-coin spread; deviations forfeit premiums.

use std::collections::BTreeMap;

use sore_loser_hedging::protocols::broker::{run_brokered_sale, BrokerConfig, BROKER, SELLER};
use sore_loser_hedging::protocols::script::Strategy;

fn main() {
    let config = BrokerConfig::default();

    println!("== Compliant brokered sale ==");
    let report = run_brokered_sale(&config, &BTreeMap::new());
    println!(
        "completed: {} | everyone hedged: {}",
        report.completed,
        report.all_compliant_hedged()
    );

    println!("\n== The broker walks away before trading ==");
    let strategies = BTreeMap::from([(BROKER, Strategy::stop_after(2))]);
    let report = run_brokered_sale(&config, &strategies);
    for (party, outcome) in &report.parties {
        println!(
            "  {party}: premium payoff {:+}, hedged {}",
            outcome.premium_payoff, outcome.hedged
        );
    }

    println!("\n== The seller walks away after premiums ==");
    let strategies = BTreeMap::from([(SELLER, Strategy::stop_after(2))]);
    let report = run_brokered_sale(&config, &strategies);
    for (party, outcome) in &report.parties {
        println!(
            "  {party}: premium payoff {:+}, hedged {}",
            outcome.premium_payoff, outcome.hedged
        );
    }
}
