//! The hedged ticket auction of §9: honest, cheating and absent auctioneers.

use std::collections::BTreeMap;

use sore_loser_hedging::protocols::auction::{run_auction, AuctionConfig, AuctioneerBehaviour};

fn main() {
    for behaviour in [
        AuctioneerBehaviour::DeclareHighBidder,
        AuctioneerBehaviour::DeclareLowBidder,
        AuctioneerBehaviour::Abandon,
    ] {
        let config = AuctionConfig { auctioneer: behaviour, ..AuctionConfig::default() };
        let report = run_auction(&config, &BTreeMap::new());
        println!("== auctioneer behaviour: {behaviour:?} ==");
        println!("  outcome: {:?}", report.outcome);
        println!("  ticket winner: {:?}", report.ticket_winner);
        println!("  bidder coin payoffs: {:?}", report.bidder_coin_payoffs);
        println!("  auctioneer coin payoff: {:+}", report.auctioneer_coin_payoff);
        println!(
            "  no bid stolen: {} | bidders compensated: {}",
            report.no_bid_stolen, report.bidders_compensated
        );
        println!();
    }
}
