//! Machine-readable model-checking throughput report.
//!
//! Runs the standard sweep families at 1, 2 and N worker threads, measures
//! scenarios/second, and writes `BENCH_modelcheck.json` so future
//! optimisation work has a recorded trajectory to compare against. The
//! committed copy of that file holds the numbers measured for this
//! revision; the `baseline` block preserves the pre-zero-allocation
//! numbers (PR 2) on the same class of machine.
//!
//! ```text
//! cargo run --release --example bench_report
//! ```
//!
//! CI runs this as a release-mode smoke test: it must complete and produce
//! valid JSON, but no timing assertions are made (CI boxes are noisy).

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use sore_loser_hedging::modelcheck::engine::{ParallelSweep, ScenarioGen};
use sore_loser_hedging::modelcheck::multi_party_families;
use sore_loser_hedging::modelcheck::scenarios::{AuctionSweep, BootstrapSweep, TwoPartySweep};
use sore_loser_hedging::protocols::two_party::TwoPartyConfig;

/// 1-thread scenarios/second measured at PR 2 (the `BTreeMap` ledger,
/// eager `format!` traces and per-scenario world construction), kept for
/// trajectory. Measured on the same single-core container class that
/// produced the committed current numbers.
const BASELINE_PR2: &[(&str, u64)] =
    &[("multi-party n=3", 19_556), ("multi-party n=4", 8_275), ("multi-party n=5", 6_938)];

struct FamilySet {
    name: &'static str,
    gens: Vec<Box<dyn ScenarioGen>>,
}

fn family_sets() -> Vec<FamilySet> {
    let mut sets = Vec::new();
    for n in [3u32, 4, 5] {
        sets.push(FamilySet {
            name: match n {
                3 => "multi-party n=3",
                4 => "multi-party n=4",
                _ => "multi-party n=5",
            },
            gens: multi_party_families(n)
                .into_iter()
                .map(|f| Box::new(f) as Box<dyn ScenarioGen>)
                .collect(),
        });
    }
    sets.push(FamilySet {
        name: "two-party hedged+base",
        gens: vec![
            Box::new(TwoPartySweep::hedged(TwoPartyConfig::default())),
            Box::new(TwoPartySweep::base(TwoPartyConfig::default())),
        ],
    });
    sets.push(FamilySet { name: "auction", gens: vec![Box::new(AuctionSweep::default())] });
    sets.push(FamilySet {
        name: "bootstrap rounds 1-3",
        gens: (1..=3)
            .map(|rounds| {
                Box::new(BootstrapSweep { a: 5_000, b: 20_000, ratio: 10, rounds })
                    as Box<dyn ScenarioGen>
            })
            .collect(),
    });
    sets
}

/// Scenarios/second for one family set at one thread count (one warm-up
/// sweep, then the faster of two measured sweeps).
fn measure(gens: &[Box<dyn ScenarioGen>], threads: usize) -> (usize, f64) {
    let refs: Vec<&dyn ScenarioGen> = gens.iter().map(|g| g.as_ref() as &dyn ScenarioGen).collect();
    let sweep = ParallelSweep::new(threads);
    let warmup = sweep.run_all(&refs);
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        let summary = sweep.run_all(&refs);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(summary.runs, warmup.runs, "sweeps must be deterministic");
        best = best.min(elapsed);
    }
    (warmup.runs, warmup.runs as f64 / best.max(1e-9))
}

fn main() {
    let max_threads =
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(8);
    let mut thread_counts = vec![1usize, 2];
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"modelcheck_parallel\",\n");
    json.push_str("  \"unit\": \"scenarios_per_sec\",\n");
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    );
    json.push_str("  \"baseline_pr2_1_thread\": {\n");
    for (i, (name, rate)) in BASELINE_PR2.iter().enumerate() {
        let comma = if i + 1 < BASELINE_PR2.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {rate}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"families\": [\n");

    let sets = family_sets();
    println!("\n=== model-checking throughput (scenarios/sec) ===");
    println!("family set | scenarios | threads | scenarios/sec");
    for (i, set) in sets.iter().enumerate() {
        let mut runs = 0usize;
        let mut rates = Vec::new();
        for &threads in &thread_counts {
            let (r, rate) = measure(&set.gens, threads);
            runs = r;
            println!("{} | {r} | {threads} | {rate:.0}", set.name);
            rates.push((threads, rate));
        }
        let comma = if i + 1 < sets.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"family\": \"{}\",", set.name);
        let _ = writeln!(json, "      \"scenarios\": {runs},");
        let _ = writeln!(json, "      \"scenarios_per_sec\": {{");
        for (j, (threads, rate)) in rates.iter().enumerate() {
            let inner_comma = if j + 1 < rates.len() { "," } else { "" };
            let _ = writeln!(json, "        \"{threads}\": {rate:.0}{inner_comma}");
        }
        let _ = writeln!(json, "      }}");
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_modelcheck.json", &json).expect("write BENCH_modelcheck.json");
    println!("\nwrote BENCH_modelcheck.json ({} bytes)", json.len());
}
