//! Machine-readable model-checking throughput report.
//!
//! Runs the standard sweep families at 1, 2, 4 and 8 worker threads,
//! measures scenarios/second and per-family scaling efficiency, and writes
//! `BENCH_modelcheck.json` so future optimisation work has a recorded
//! trajectory to compare against. Multi-party sets reach n = 8 at a
//! two-deviator budget thanks to the symmetry + partial-order reduction
//! layer; each family records its `strategies` (documented profiles) next
//! to `scenarios` (executed runs) and the resulting `reduction_ratio`. The committed copy of that file holds the
//! numbers measured for this revision; the `baseline` blocks preserve the
//! PR 2 (pre-zero-allocation) and PR 3 (pre-deviation-tree) numbers on the
//! same class of machine.
//!
//! ```text
//! cargo run --release --example bench_report
//! ```
//!
//! CI runs this as a release smoke test: it must complete and produce valid
//! JSON. With `BENCH_ENFORCE_SCALING=1` the run additionally fails if
//! 2-thread scaling efficiency drops below 0.8 on any large family
//! (≥ [`LARGE_FAMILY_MIN`] scenarios) — the regression PR 3 shipped with —
//! provided the machine actually has a second CPU to scale onto.
//! Single-core boxes skip the gate rather than flake, where "single-core"
//! means *effective* parallelism: hardware threads capped by any cgroup
//! CPU-bandwidth quota, so a quota-throttled container that merely "sees"
//! four threads is still exempt (PR 4 measured ~0.5 as the time-slicing
//! ideal there, which the 0.8 gate would misread as a regression).
//!
//! The `sampled_*` family sets exercise the randomized tier at the pinned
//! [`SAMPLED_SEED`]: every sweep must hold (zero hedged-theorem violations
//! at the pinned seed), the run must execute at least
//! [`MIN_SAMPLED_PROFILES`] randomized deviation profiles in total, and the
//! JSON records each family's reproduction key plus sampled-space/coverage
//! accounting and the rational climber's compliant-party margins.

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use sore_loser_hedging::modelcheck::engine::{ParallelSweep, ScenarioGen};
use sore_loser_hedging::modelcheck::multi_party_families;
use sore_loser_hedging::modelcheck::sampled::{SampledBootstrap, SampledSweep, MAX_REORG_DEPTH};
use sore_loser_hedging::modelcheck::scenarios::{
    AuctionSweep, BootstrapSweep, BrokerSweep, DealSweep, TwoPartySweep,
};
use sore_loser_hedging::protocols::auction::AuctionConfig;
use sore_loser_hedging::protocols::broker::BrokerConfig;
use sore_loser_hedging::protocols::multi_party::{cycle_config, figure3_config, random_config};
use sore_loser_hedging::protocols::two_party::{TwoPartyConfig, ALICE, BOB};

/// 1-thread scenarios/second measured at PR 2 (the `BTreeMap` ledger,
/// eager `format!` traces and per-scenario world construction), kept for
/// trajectory. Measured on the same single-core container class that
/// produced the committed current numbers.
const BASELINE_PR2: &[(&str, u64)] =
    &[("multi-party n=3", 19_556), ("multi-party n=4", 8_275), ("multi-party n=5", 6_938)];

/// 1-thread scenarios/second measured at PR 3 (zero-allocation hot path,
/// but brute-force replay of every scenario and `Arc<Mutex<..>>` memo
/// tables shared across workers), kept for trajectory.
const BASELINE_PR3: &[(&str, u64)] = &[
    ("multi-party n=3", 89_199),
    ("multi-party n=4", 31_873),
    ("multi-party n=5", 29_047),
    ("two-party hedged+base", 181_035),
    ("auction", 139_507),
    ("bootstrap rounds 1-3", 317_235),
];

/// Families at or above this many scenarios are "large": big enough that
/// per-worker setup (prefix recording, world allocation) amortises away and
/// thread-scaling numbers are signal rather than noise. The scaling gate
/// only applies to them.
const LARGE_FAMILY_MIN: usize = 200;

/// Minimum acceptable 2-thread scaling efficiency on large families when
/// `BENCH_ENFORCE_SCALING=1` and the machine has ≥ 2 hardware threads.
const MIN_TWO_THREAD_EFFICIENCY: f64 = 0.8;

/// The pinned seed every `sampled_*` bench family draws from. Holding the
/// seed fixed makes the bench a (statistical) correctness gate too: a
/// violation in any sampled sweep is deterministic and carries its
/// `(seed, sample)` reproduction key.
const SAMPLED_SEED: u64 = 0x5EED_CAFE;

/// Every bench run must execute at least this many randomized deviation
/// profiles across the sampled families (warm-up and measured sweeps at
/// all thread counts combined).
const MIN_SAMPLED_PROFILES: u64 = 1_000_000;

/// Search budget for each rational-climber run recorded in the report.
const CLIMB_BUDGET: usize = 400;

/// Reproduction key and coverage accounting for a `sampled_*` family set.
struct SampledMeta {
    seed: u64,
    samples: usize,
    space: f64,
    coverage: f64,
    /// `Some((finality_depth, finality_margin))` for families that run the
    /// chain-realism overlay; recorded in the JSON so the reproduction key
    /// pins the reorg parameters alongside the seed.
    realism: Option<(u32, u64)>,
}

struct FamilySet {
    name: &'static str,
    gens: Vec<Box<dyn ScenarioGen>>,
    /// `Some` for sampled-tier sets: carries the reproduction key into the
    /// JSON and obliges every sweep of the set to hold.
    sampled: Option<SampledMeta>,
}

/// Wraps one randomized family as a bench set, capturing its reproduction
/// key and how much of the deviation space the budget covers.
fn sampled_set(name: &'static str, family: SampledSweep) -> FamilySet {
    sampled_set_realism(name, family, None)
}

/// Like [`sampled_set`], additionally pinning the chain-realism parameters
/// (finality depth, finality margin) into the reproduction key.
fn sampled_set_realism(
    name: &'static str,
    family: SampledSweep,
    realism: Option<(u32, u64)>,
) -> FamilySet {
    let meta = SampledMeta {
        seed: family.seed(),
        samples: family.samples(),
        space: family.sampled_space(),
        coverage: family.coverage().min(1.0),
        realism,
    };
    FamilySet { name, gens: vec![Box::new(family)], sampled: Some(meta) }
}

fn family_sets() -> Vec<FamilySet> {
    let mut sets = Vec::new();
    // From n = 5 the cycle (and from n = 4 the clique) runs through the
    // symmetry + partial-order reduction layer at a two-deviator budget;
    // n = 7 and 8 exist *because* of it — the unreduced pair spaces
    // (~135k scenarios at n = 8) priced those sizes out entirely. The
    // per-family `reduction_ratio` field records executed runs over
    // documented profiles.
    for n in [3u32, 4, 5, 6, 7, 8] {
        sets.push(FamilySet {
            name: match n {
                3 => "multi-party n=3",
                4 => "multi-party n=4",
                5 => "multi-party n=5",
                6 => "multi-party n=6",
                7 => "multi-party n=7",
                _ => "multi-party n=8",
            },
            gens: multi_party_families(n)
                .into_iter()
                .map(|f| Box::new(f) as Box<dyn ScenarioGen>)
                .collect(),
            sampled: None,
        });
    }
    // A seeded random-digraph batch: eight structurally distinct
    // strongly-connected five-party graphs, one deviator at a time.
    sets.push(FamilySet {
        name: "random digraphs n=5",
        gens: (0..8u64)
            .map(|seed| {
                Box::new(DealSweep::at_most(
                    format!("random-5-4-seed{seed}"),
                    random_config(5, 4, seed),
                    1,
                )) as Box<dyn ScenarioGen>
            })
            .collect(),
        sampled: None,
    });
    sets.push(FamilySet {
        name: "two-party hedged+base",
        gens: vec![
            Box::new(TwoPartySweep::hedged(TwoPartyConfig::default())),
            Box::new(TwoPartySweep::base(TwoPartyConfig::default())),
        ],
        sampled: None,
    });
    sets.push(FamilySet {
        name: "auction",
        gens: vec![Box::new(AuctionSweep::default())],
        sampled: None,
    });
    sets.push(FamilySet {
        name: "brokered sale",
        gens: vec![Box::new(BrokerSweep::at_most(&BrokerConfig::default(), 2))],
        sampled: None,
    });
    sets.push(FamilySet {
        name: "bootstrap rounds 1-3",
        gens: (1..=3)
            .map(|rounds| {
                Box::new(BootstrapSweep::new(5_000, 20_000, 10, rounds)) as Box<dyn ScenarioGen>
            })
            .collect(),
        sampled: None,
    });
    // The sampled tier: randomized deviation profiles drawn from the
    // pinned SAMPLED_SEED. Budgets are sized so a full bench run (warm-up
    // plus measured sweeps at every thread count) executes well past
    // MIN_SAMPLED_PROFILES randomized profiles while each individual sweep
    // stays in the tenths-of-a-second range.
    sets.push(sampled_set(
        "sampled two-party hedged",
        SampledSweep::hedged_two_party(TwoPartyConfig::default(), SAMPLED_SEED, 40_000),
    ));
    // The chain-realism family: both chains at a MAX_REORG_DEPTH finality
    // window, each sample drawing a full-axis strategy profile plus up to
    // one redelivering reorg. The margin-padded deadlines must absorb
    // every re-delivery (margin = MAX_REORG_DEPTH − 1 is the theorem's
    // threshold); the budget is smaller than the reorg-free families'
    // because reorg samples forgo the shared-prefix fast path.
    let margin = u64::from(MAX_REORG_DEPTH - 1);
    sets.push(sampled_set_realism(
        "sampled two-party hedged under reorgs",
        SampledSweep::hedged_two_party_reorgs(
            TwoPartyConfig { finality_margin: margin, ..TwoPartyConfig::default() },
            SAMPLED_SEED,
            10_000,
        ),
        Some((MAX_REORG_DEPTH, margin)),
    ));
    sets.push(sampled_set(
        "sampled two-party base conforming",
        SampledSweep::base_two_party(TwoPartyConfig::default(), SAMPLED_SEED, 40_000),
    ));
    sets.push(sampled_set(
        "sampled figure3",
        SampledSweep::deal("figure3", figure3_config(), SAMPLED_SEED, 15_000),
    ));
    sets.push(sampled_set(
        "sampled cycle-5",
        SampledSweep::deal("cycle-5", cycle_config(5), SAMPLED_SEED, 8_000),
    ));
    sets.push(sampled_set(
        "sampled auction",
        SampledSweep::auction(AuctionConfig::default(), SAMPLED_SEED, 25_000),
    ));
    let bootstrap = SampledBootstrap::new(5_000, 20_000, 10, 3, SAMPLED_SEED, 25_000);
    let space = bootstrap.sampled_space();
    sets.push(FamilySet {
        name: "sampled bootstrap rounds 3",
        sampled: Some(SampledMeta {
            seed: SAMPLED_SEED,
            samples: 25_000,
            space,
            coverage: (25_000.0 / space).min(1.0),
            realism: None,
        }),
        gens: vec![Box::new(bootstrap)],
    });
    sets
}

/// A single sweep of the fast families lasts only a few milliseconds —
/// far too short to gate on — so each measurement repeats sweeps until at
/// least this much wall time has accumulated (and at least twice), taking
/// the fastest sweep. This keeps the efficiency ratios stable enough for
/// the CI scaling gate on shared runners.
const MIN_MEASURE_SECONDS: f64 = 0.25;

/// Scenarios/second for one family set at one thread count (one warm-up
/// sweep, then the fastest of repeated measured sweeps; see
/// [`MIN_MEASURE_SECONDS`]). Returns `(runs, strategies, rate, sweeps)` —
/// for reduced families `runs < strategies`, the rate counts *executed*
/// scenarios per second, and `sweeps` is the total number of sweeps run
/// (warm-up included) so callers can account executed profiles. With
/// `must_hold` the warm-up summary must be violation-free: the sampled
/// sets use this to make the bench a pinned-seed correctness gate.
fn measure(
    gens: &[Box<dyn ScenarioGen>],
    threads: usize,
    must_hold: bool,
) -> (usize, usize, f64, u64) {
    let refs: Vec<&dyn ScenarioGen> = gens.iter().map(|g| g.as_ref() as &dyn ScenarioGen).collect();
    let sweep = ParallelSweep::new(threads);
    let warmup = sweep.run_all(&refs);
    if must_hold {
        assert!(warmup.holds(), "pinned-seed sweep must hold: {:?}", warmup.violations);
    }
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut repetitions = 0u64;
    while repetitions < 2 || spent < MIN_MEASURE_SECONDS {
        let start = Instant::now();
        let summary = sweep.run_all(&refs);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(summary.runs, warmup.runs, "sweeps must be deterministic");
        best = best.min(elapsed);
        spent += elapsed;
        repetitions += 1;
    }
    // A coarse clock (or an empty family) can measure ~zero elapsed time;
    // `finite_or_zero` downstream relies on the rate at least being a
    // number, so keep the division away from 0/0 and ∞.
    (
        warmup.runs,
        warmup.strategies,
        finite_or_zero(warmup.runs as f64 / best.max(1e-9)),
        repetitions + 1,
    )
}

/// Clamps NaN/∞ — which `{:.N}`-format as literal `NaN`/`inf` and would
/// corrupt `BENCH_modelcheck.json` — to `0.0`. Tiny families measured on a
/// coarse clock are the practical trigger (`0 runs / ~0 seconds`).
fn finite_or_zero(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// The number of CPUs this process can actually scale onto: hardware
/// threads capped by any cgroup CPU-bandwidth quota.
///
/// `available_parallelism` alone over-reports on quota-limited runners (a
/// container can "see" 4 hardware threads while its cgroup time-slices them
/// down to one CPU of bandwidth), and PR 4 measured ~0.5 as the 2-thread
/// time-slicing ideal there — which the 0.8 scaling gate would misread as a
/// contention regression. The gate therefore keys off this value, not the
/// raw thread count.
fn effective_parallelism() -> usize {
    let available = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    match cgroup_cpu_quota() {
        Some(quota) => available.min(quota.max(1)),
        None => available,
    }
}

/// The cgroup CPU quota in whole CPUs (rounded up), or `None` when
/// unlimited, unreadable or not on a cgroup-managed system.
fn cgroup_cpu_quota() -> Option<usize> {
    // cgroup v2 exposes "<quota|max> <period>" in a single file.
    if let Ok(raw) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
        let mut parts = raw.split_whitespace();
        let quota = parts.next()?;
        if quota == "max" {
            return None;
        }
        let quota: u64 = quota.parse().ok()?;
        let period: u64 = parts.next()?.parse().ok()?;
        return Some(quota.div_ceil(period.max(1)) as usize);
    }
    // cgroup v1 splits quota (µs per period, -1 = unlimited) and period.
    let quota: i64 =
        std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").ok()?.trim().parse().ok()?;
    if quota < 0 {
        return None;
    }
    let period: u64 = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    Some((quota as u64).div_ceil(period.max(1)) as usize)
}

fn main() {
    let available = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    let effective = effective_parallelism();
    let thread_counts = [1usize, 2, 4, 8];
    let enforce_scaling = std::env::var("BENCH_ENFORCE_SCALING").as_deref() == Ok("1");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"modelcheck_parallel\",\n");
    json.push_str("  \"unit\": \"scenarios_per_sec\",\n");
    let _ = writeln!(json, "  \"available_parallelism\": {available},");
    let _ = writeln!(json, "  \"effective_parallelism\": {effective},");
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    );
    json.push_str("  \"baseline_pr2_1_thread\": {\n");
    for (i, (name, rate)) in BASELINE_PR2.iter().enumerate() {
        let comma = if i + 1 < BASELINE_PR2.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {rate}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"baseline_pr3_1_thread\": {\n");
    for (i, (name, rate)) in BASELINE_PR3.iter().enumerate() {
        let comma = if i + 1 < BASELINE_PR3.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {rate}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"families\": [\n");

    let sets = family_sets();
    let mut violations: Vec<String> = Vec::new();
    let mut sampled_profiles: u64 = 0;
    println!("\n=== model-checking throughput (scenarios/sec) ===");
    println!("family set | scenarios | threads | scenarios/sec | efficiency");
    for (i, set) in sets.iter().enumerate() {
        let must_hold = set.sampled.is_some();
        let mut runs = 0usize;
        let mut strategies = 0usize;
        let mut rates = Vec::new();
        for &threads in &thread_counts {
            let (r, s, rate, sweeps) = measure(&set.gens, threads, must_hold);
            runs = r;
            strategies = s;
            rates.push((threads, rate));
            if must_hold {
                sampled_profiles += r as u64 * sweeps;
            }
        }
        let single = rates[0].1;
        // Scaling efficiency: throughput per thread relative to 1-thread
        // throughput. 1.0 is perfect scaling; 0.5 means half of every
        // added thread is wasted. Only meaningful up to the machine's
        // hardware parallelism. Guarded against a zero/degenerate 1-thread
        // measurement: NaN or ∞ must never reach the JSON report.
        let efficiencies: Vec<(usize, f64)> = rates
            .iter()
            .map(|&(threads, rate)| (threads, finite_or_zero(rate / (single * threads as f64))))
            .collect();
        for (&(threads, rate), &(_, eff)) in rates.iter().zip(&efficiencies) {
            println!("{} | {runs} | {threads} | {rate:.0} | {eff:.2}", set.name);
        }
        if runs >= LARGE_FAMILY_MIN && effective >= 2 {
            let two_thread_eff = efficiencies.iter().find(|(t, _)| *t == 2).map(|(_, e)| *e);
            if let Some(mut eff) = two_thread_eff {
                // A genuine contention regression keeps *every* sample low;
                // scheduler noise only dents some. Before declaring a
                // violation, re-measure the 1/2-thread pair a couple more
                // times and judge the best efficiency observed, so a single
                // noisy-neighbour hiccup cannot fail CI.
                let mut retries = 0;
                while eff < MIN_TWO_THREAD_EFFICIENCY && retries < 2 {
                    let (r1, _, single_rate, s1) = measure(&set.gens, 1, must_hold);
                    let (r2, _, pair_rate, s2) = measure(&set.gens, 2, must_hold);
                    if must_hold {
                        sampled_profiles += r1 as u64 * s1 + r2 as u64 * s2;
                    }
                    eff = eff.max(finite_or_zero(pair_rate / (single_rate * 2.0)));
                    retries += 1;
                }
                if eff < MIN_TWO_THREAD_EFFICIENCY {
                    violations.push(format!(
                        "{}: 2-thread efficiency {eff:.2} < {MIN_TWO_THREAD_EFFICIENCY}                          (best of {} measurements)",
                        set.name,
                        retries + 1
                    ));
                }
            }
        }
        let comma = if i + 1 < sets.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"family\": \"{}\",", set.name);
        let _ = writeln!(json, "      \"scenarios\": {runs},");
        let _ = writeln!(json, "      \"strategies\": {strategies},");
        // Executed runs per documented profile: 1.0 for unreduced sets,
        // below 1.0 where symmetry/POR folds or prunes the space.
        let _ = writeln!(
            json,
            "      \"reduction_ratio\": {:.4},",
            finite_or_zero(runs as f64 / strategies.max(1) as f64)
        );
        // Sampled sets additionally record their reproduction key and how
        // much of the deviation space one sweep's budget covers (coverage
        // saturates at 1.0 for spaces smaller than the budget).
        if let Some(meta) = &set.sampled {
            let _ = writeln!(json, "      \"sampled\": {{");
            let _ = writeln!(json, "        \"seed\": \"{:#x}\",", meta.seed);
            let _ = writeln!(json, "        \"samples_per_sweep\": {},", meta.samples);
            let _ = writeln!(json, "        \"sampled_space\": {:e},", finite_or_zero(meta.space));
            if let Some((depth, margin)) = meta.realism {
                let _ = writeln!(json, "        \"finality_depth\": {depth},");
                let _ = writeln!(json, "        \"finality_margin\": {margin},");
            }
            let _ = writeln!(json, "        \"coverage\": {:e}", finite_or_zero(meta.coverage));
            let _ = writeln!(json, "      }},");
        }
        let _ = writeln!(json, "      \"scenarios_per_sec\": {{");
        for (j, (threads, rate)) in rates.iter().enumerate() {
            let inner_comma = if j + 1 < rates.len() { "," } else { "" };
            let _ = writeln!(json, "        \"{threads}\": {rate:.0}{inner_comma}");
        }
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"scaling_efficiency\": {{");
        for (j, (threads, eff)) in efficiencies.iter().enumerate() {
            let inner_comma = if j + 1 < efficiencies.len() { "," } else { "" };
            let _ = writeln!(json, "        \"{threads}\": {eff:.2}{inner_comma}");
        }
        let _ = writeln!(json, "      }}");
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ],\n");

    // Sampled-tier accounting: every sampled sweep above already asserted
    // it holds, so reaching this point means zero hedged-theorem
    // violations across all randomized profiles at the pinned seed.
    println!(
        "\nsampled tier: {sampled_profiles} randomized profiles executed at seed {SAMPLED_SEED:#x}"
    );
    assert!(
        sampled_profiles >= MIN_SAMPLED_PROFILES,
        "bench run must execute ≥ {MIN_SAMPLED_PROFILES} randomized profiles, \
         got {sampled_profiles}"
    );

    // Rational-climber margins at the pinned seed: the climber must
    // rediscover the base protocol's sore-loser free-out (a negative
    // compliant-party margin) and must find no profitable deviation
    // against the hedged protocol.
    let climbs = [
        ("base two-party", false, BOB),
        ("hedged two-party", true, ALICE),
        ("hedged two-party", true, BOB),
    ];
    println!("\n=== rational climber (budget {CLIMB_BUDGET}) ===");
    let _ = writeln!(json, "  \"sampled_tier\": {{");
    let _ = writeln!(json, "    \"seed\": \"{SAMPLED_SEED:#x}\",");
    let _ = writeln!(json, "    \"profiles_executed\": {sampled_profiles},");
    let _ = writeln!(json, "    \"rational_climbs\": [");
    for (j, (name, hedged, deviator)) in climbs.iter().enumerate() {
        let config = TwoPartyConfig::default();
        let family = if *hedged {
            SampledSweep::hedged_two_party(config, SAMPLED_SEED, 1)
        } else {
            SampledSweep::base_two_party(config, SAMPLED_SEED, 1)
        };
        let climb = family
            .climb(*deviator, SAMPLED_SEED, CLIMB_BUDGET)
            .expect("two-party families always climb");
        if *hedged {
            assert!(
                climb.compliant_margin >= 0,
                "hedged theorem: no deviation may leave a compliant party \
                 under-compensated, found {climb:?}"
            );
            assert!(
                climb.deviator_payoff <= 0,
                "hedged theorem: deviating must not profit, found {climb:?}"
            );
        } else {
            assert!(
                climb.compliant_margin < 0,
                "negative control: the climber must rediscover the base \
                 protocol's sore-loser attack, found {climb:?}"
            );
        }
        println!(
            "{name} deviator={}: payoff={} compliant_margin={} ({} evaluations)",
            climb.deviator, climb.deviator_payoff, climb.compliant_margin, climb.evaluations
        );
        let comma = if j + 1 < climbs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"family\": \"{name}\", \"deviator\": {}, \"deviator_payoff\": {}, \
             \"compliant_margin\": {}, \"evaluations\": {}, \"improvements\": {}}}{comma}",
            climb.deviator.0,
            climb.deviator_payoff,
            climb.compliant_margin,
            climb.evaluations,
            climb.improvements
        );
    }
    let _ = writeln!(json, "    ]");
    json.push_str("  },\n");

    // Static-analysis suite: run all three staticcheck passes and record
    // the analyzed surface. The gate is zero findings — a finding here
    // means a contract can strand funds, a published deadline ladder is
    // infeasible, or a semantic crate regressed on determinism.
    let static_report = staticcheck::analyze_default_suite();
    assert!(
        static_report.findings.is_empty(),
        "static analysis must be clean for a bench report:\n{}",
        static_report.render()
    );
    println!(
        "\nstaticcheck: {} contracts ({} machines), {} schedules, {} scripts, \
         {} files scanned, {} waivers, 0 findings",
        static_report.contracts_analyzed,
        static_report.machines_analyzed,
        static_report.schedules_checked,
        static_report.scripts_analyzed,
        static_report.files_scanned,
        static_report.waivers
    );
    let _ = writeln!(json, "  \"staticcheck\": {{");
    let _ = writeln!(json, "    \"passes\": {},", staticcheck::SuiteReport::PASSES);
    let _ = writeln!(json, "    \"contracts_analyzed\": {},", static_report.contracts_analyzed);
    let _ = writeln!(json, "    \"machines_analyzed\": {},", static_report.machines_analyzed);
    let _ = writeln!(json, "    \"schedules_checked\": {},", static_report.schedules_checked);
    let _ = writeln!(json, "    \"scripts_analyzed\": {},", static_report.scripts_analyzed);
    let _ = writeln!(json, "    \"files_scanned\": {},", static_report.files_scanned);
    let _ = writeln!(json, "    \"waivers\": {},", static_report.waivers);
    let _ = writeln!(json, "    \"findings\": {}", static_report.findings.len());
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_modelcheck.json", &json).expect("write BENCH_modelcheck.json");
    println!("\nwrote BENCH_modelcheck.json ({} bytes)", json.len());

    if enforce_scaling {
        if effective < 2 {
            println!(
                "BENCH_ENFORCE_SCALING set but only {effective} effective CPU(s) \
                 ({available} hardware thread(s), cgroup-quota capped); skipping the \
                 scaling gate (2-thread wall-clock gains are impossible here)."
            );
        } else {
            assert!(
                violations.is_empty(),
                "2-thread scaling efficiency regressed on large families:\n  {}",
                violations.join("\n  ")
            );
            println!(
                "scaling gate passed: every large family ≥ {MIN_TWO_THREAD_EFFICIENCY} at 2 threads"
            );
        }
    }
}
