//! The three-party swap of Figure 3a, compliant and with Carol defecting.

use std::collections::BTreeMap;

use sore_loser_hedging::chainsim::PartyId;
use sore_loser_hedging::protocols::multi_party::{figure3_config, run_multi_party_swap};
use sore_loser_hedging::protocols::script::Strategy;
use sore_loser_hedging::swapgraph::{premiums, Digraph};

fn main() {
    let g = Digraph::figure3();
    println!("Figure 3a premium structure (p = 1):");
    println!("  leader premium R(A) = {}", premiums::leader_redemption_premium(&g, 0, 1));
    for entry in premiums::redemption_premium_table(&g, 0, 1) {
        println!("  arc {:?} path {:?}: {}p", entry.arc, entry.path, entry.amount);
    }

    println!("\n== Compliant three-party swap ==");
    let report = run_multi_party_swap(&figure3_config(), &BTreeMap::new());
    println!(
        "completed: {} | everyone hedged: {}",
        report.completed,
        report.all_compliant_hedged()
    );

    println!("\n== Carol never escrows her asset ==");
    let strategies = BTreeMap::from([(PartyId(2), Strategy::stop_after(2))]);
    let report = run_multi_party_swap(&figure3_config(), &strategies);
    println!("completed: {}", report.completed);
    for (party, outcome) in &report.parties {
        println!(
            "  {party}: premium payoff {:+}, escrowed-but-unredeemed {}, hedged {}",
            outcome.premium_payoff, outcome.escrowed_unredeemed, outcome.hedged
        );
    }
}
