//! Prints the two-party deviation payoff matrix in the exact literal form
//! used by the golden regression test in `tests/conformance.rs`.
//!
//! When an *intentional* protocol change shifts payoffs, regenerate the
//! golden tables with:
//!
//! ```text
//! cargo run --release --example deviation_matrix
//! ```
//!
//! and paste the output over the `HEDGED_GOLDEN` / `BASE_GOLDEN` constants
//! after reviewing every changed row against §5 of the paper.

use sore_loser_hedging::protocols::two_party::{
    run_base_swap, run_hedged_swap, strategy_space, TwoPartyConfig,
};

fn main() {
    let config = TwoPartyConfig::default();
    for (name, hedged) in [("HEDGED", true), ("BASE", false)] {
        println!("const {name}_GOLDEN: &[(&str, &str, bool, [i128; 6])] = &[");
        for alice in strategy_space() {
            for bob in strategy_space() {
                let r = if hedged {
                    run_hedged_swap(&config, alice, bob)
                } else {
                    run_base_swap(&config, alice, bob)
                };
                println!(
                    "    (\"{alice}\", \"{bob}\", {}, [{}, {}, {}, {}, {}, {}]),",
                    r.swap_completed,
                    r.alice_apricot_payoff,
                    r.alice_banana_payoff,
                    r.alice_premium_payoff,
                    r.bob_apricot_payoff,
                    r.bob_banana_payoff,
                    r.bob_premium_payoff
                );
            }
        }
        println!("];");
    }
}
