//! §6's headline example: hedging a $1,000,000 swap with 1% premiums and a
//! $4 initial lock-up risk needs just 3 bootstrapping rounds.

use sore_loser_hedging::protocols::bootstrap::{run_bootstrap, BootstrapDeviation, ALICE};
use sore_loser_hedging::swapgraph::bootstrap::{bootstrap_plan, rounds_needed};

fn main() {
    let (a, b, ratio, risk) = (500_000u128, 500_000u128, 100u128, 4u128);
    let rounds = rounds_needed(a + b, risk, ratio);
    println!(
        "hedging a ${} swap with {}% premiums and ${risk} initial risk: {rounds} rounds",
        a + b,
        100 / ratio
    );

    let plan = bootstrap_plan(a, b, ratio, rounds);
    println!("{:<7} {:>15} {:>15}", "level", "Alice deposit", "Bob deposit");
    for level in &plan.levels {
        println!("{:<7} {:>15} {:>15}", level.level, level.alice_deposit, level.bob_deposit);
    }
    println!("initial (unprotected) risk: {}", plan.initial_risk());

    println!("\nOn-chain cascade, Alice defaults at level 1:");
    let report = run_bootstrap(
        a,
        b,
        ratio,
        rounds,
        BootstrapDeviation::StopAtLevel { party: ALICE, level: 1 },
    );
    println!(
        "  Alice payoff {:+}, Bob payoff {:+}, compliant loss bounded: {}",
        report.alice_payoff, report.bob_payoff, report.loss_bounded_by_initial_risk
    );
}
