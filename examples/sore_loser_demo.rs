//! Side-by-side comparison of the unhedged base swap (§5.1) and the hedged
//! swap (§5.2) under every unilateral deviation point — the paper's
//! motivating table.

use sore_loser_hedging::protocols::script::Strategy;
use sore_loser_hedging::protocols::two_party::{run_base_swap, run_hedged_swap, TwoPartyConfig};

fn main() {
    let config = TwoPartyConfig::default();
    println!(
        "{:<34} {:>9} {:>9} {:>11} {:>8}",
        "scenario", "A premium", "B premium", "A lockup", "hedged"
    );
    for (label, alice, bob) in [
        ("compliant / compliant", Strategy::compliant(), Strategy::compliant()),
        ("compliant / Bob quits early", Strategy::compliant(), Strategy::stop_after(0)),
        ("compliant / Bob quits mid-swap", Strategy::compliant(), Strategy::stop_after(1)),
        ("Alice quits mid-swap / compliant", Strategy::stop_after(2), Strategy::compliant()),
    ] {
        let base = run_base_swap(&config, alice, bob);
        let hedged = run_hedged_swap(&config, alice, bob);
        println!(
            "base   {:<27} {:>9} {:>9} {:>11} {:>8}",
            label,
            base.alice_premium_payoff,
            base.bob_premium_payoff,
            base.alice_lockup.principal_blocks,
            base.hedged_for_alice && base.hedged_for_bob
        );
        println!(
            "hedged {:<27} {:>9} {:>9} {:>11} {:>8}",
            label,
            hedged.alice_premium_payoff,
            hedged.bob_premium_payoff,
            hedged.alice_lockup.principal_blocks,
            hedged.hedged_for_alice && hedged.hedged_for_bob
        );
    }
}
