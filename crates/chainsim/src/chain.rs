//! A single simulated blockchain.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::amount::Amount;
use crate::caches::SimCaches;
use crate::contract::{CallEnv, Contract, ContractMessage, UndoOp};
use crate::error::ChainError;
#[cfg(test)]
use crate::error::ContractError;
use crate::events::{CallDesc, ChainEvent, EventKind, TraceMode};
use crate::gas::{GasMeter, GasSchedule};
use crate::ids::{AssetId, ChainId, ContractId, PartyId};
use crate::ledger::{AccountRef, Ledger};
use crate::time::Time;

/// Per-chain finality and synchrony parameters.
///
/// `depth` is the chain's *finality lag*, measured in rounds: the effects of
/// the last `depth` rounds are speculative and can be rewound by a
/// [`ReorgEvent`]; anything older is final. The default depth of zero keeps
/// the pre-existing instantly-final semantics (no speculative window is
/// maintained, so the hot sweep paths pay nothing).
///
/// `delta` is the chain's own synchrony bound Δ in blocks — how far this
/// chain advances per world round. A value of zero inherits the world's
/// global Δ; setting it per chain models heterogeneous block cadences
/// (a fast chain and a slow chain in the same swap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinalityParams {
    /// Trailing rounds whose effects are revertible. Zero = instantly final.
    pub depth: u32,
    /// This chain's Δ in blocks per round; zero inherits the world's Δ.
    pub delta: u64,
}

impl FinalityParams {
    /// Instant finality at the world's global Δ: the default, and the exact
    /// semantics every chain had before finality lag existed.
    pub const INSTANT: FinalityParams = FinalityParams { depth: 0, delta: 0 };
}

/// What a reorg does with the speculative calls it rewinds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReorgPolicy {
    /// Rewound calls return to the mempool and re-execute, in their original
    /// order, at the reorg height — the common case on real chains, where
    /// transactions from orphaned blocks are re-included in the canonical
    /// branch (and may now fail, e.g. against a deadline they originally
    /// beat).
    #[default]
    Redeliver,
    /// Rewound calls vanish entirely — censorship or transaction loss.
    /// Contract publishes are still re-delivered (dropping one would
    /// invalidate every later contract id on the chain).
    DropCalls,
}

/// A deterministic, scheduled chain reorganisation.
///
/// At the end of world round `at_round` (before the round's height advance),
/// the last `depth` speculative rounds of `chain` are rewound to their
/// pre-round state and the rewound calls are re-delivered or dropped per
/// `policy`. Block heights never rewind: the rewritten history re-executes
/// at the reorg height, which is exactly how a live observer experiences a
/// reorg (the clock keeps moving while the ledger's recent past changes).
///
/// Depths beyond the chain's [`FinalityParams::depth`] are clamped to the
/// speculative window: finalized rounds cannot reorg.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorgEvent {
    /// The chain to reorganise.
    pub chain: ChainId,
    /// The world round at whose end the reorg strikes.
    pub at_round: u64,
    /// How many trailing speculative rounds to rewind.
    pub depth: u32,
    /// Re-deliver or drop the rewound calls.
    pub policy: ReorgPolicy,
}

/// Counters describing the reorgs a chain has absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorgStats {
    /// Reorg events that rewound at least one round.
    pub reorgs: u64,
    /// Successful calls rewound by reorgs.
    pub rewound_calls: u64,
    /// Rewound calls that were re-delivered and succeeded again.
    pub redelivered_calls: u64,
    /// Rewound calls dropped by [`ReorgPolicy::DropCalls`].
    pub dropped_calls: u64,
    /// Rewound calls that were re-delivered but failed at the reorg height
    /// (typically against a deadline they originally beat).
    pub redelivery_failures: u64,
}

/// One speculative round: the chain state at the round's start plus the
/// effective actions applied during it (the replay log a reorg re-delivers).
struct SpecRound {
    base: ChainSnapshot,
    actions: Vec<RecordedAction>,
}

impl SpecRound {
    fn clone_data(&self) -> SpecRound {
        SpecRound {
            base: self.base.clone_data(),
            actions: self.actions.iter().map(RecordedAction::clone_data).collect(),
        }
    }
}

impl fmt::Debug for SpecRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecRound")
            .field("base_height", &self.base.height)
            .field("actions", &self.actions.len())
            .finish()
    }
}

/// An action recorded in the speculative window for possible re-delivery.
enum RecordedAction {
    Publish { publisher: PartyId, contract: Box<dyn Contract> },
    Call { caller: PartyId, contract: ContractId, msg: Box<dyn ContractMessage>, desc: CallDesc },
}

impl RecordedAction {
    fn clone_data(&self) -> RecordedAction {
        match self {
            RecordedAction::Publish { publisher, contract } => {
                RecordedAction::Publish { publisher: *publisher, contract: contract.clone_box() }
            }
            RecordedAction::Call { caller, contract, msg, desc } => RecordedAction::Call {
                caller: *caller,
                contract: *contract,
                msg: msg.clone_message(),
                desc: *desc,
            },
        }
    }
}

/// A simulated blockchain: a ledger, a contract store and a block clock.
///
/// Chains are created through [`crate::World::add_chain`] and advance their
/// heights in lock-step with the rest of the world. All state is public:
/// any party may read the ledger, the event log and the state of any
/// contract (via [`Blockchain::contract_as`]), mirroring the transparency
/// assumption of the paper.
///
/// Contracts are stored in a dense `Vec` indexed by their sequentially
/// assigned [`ContractId`]s, and the whole chain can be recycled between
/// scenario runs (see [`crate::World::reset`]) without dropping the ledger,
/// contract-store or event-log allocations.
pub struct Blockchain {
    id: ChainId,
    name: String,
    native_asset: AssetId,
    height: Time,
    ledger: Ledger,
    /// Slot `i` holds the contract with `ContractId(i)`; a slot is `None`
    /// only transiently while its contract is executing a call.
    contracts: Vec<Option<Box<dyn Contract>>>,
    events: Vec<ChainEvent>,
    trace: TraceMode,
    gas_schedule: GasSchedule,
    gas: GasMeter,
    finality: FinalityParams,
    /// The speculative window: one entry per revertible round, oldest first.
    /// Empty whenever `finality.depth == 0`.
    window: VecDeque<SpecRound>,
    reorg_stats: ReorgStats,
    /// Pooled backing allocation for the per-call undo journal.
    undo_pool: Vec<UndoOp>,
}

impl Blockchain {
    /// Creates a new chain. Called by [`crate::World::add_chain`].
    pub(crate) fn new(
        id: ChainId,
        name: impl Into<String>,
        native_asset: AssetId,
        trace: TraceMode,
    ) -> Self {
        Blockchain {
            id,
            name: name.into(),
            native_asset,
            height: Time::ZERO,
            ledger: Ledger::new(),
            contracts: Vec::new(),
            events: Vec::new(),
            trace,
            gas_schedule: GasSchedule::DEFAULT,
            gas: GasMeter::new(),
            finality: FinalityParams::INSTANT,
            window: VecDeque::new(),
            reorg_stats: ReorgStats::default(),
            undo_pool: Vec::new(),
        }
    }

    /// Re-initialises a retired chain shell for a new run, retaining the
    /// ledger, contract-store and event-log allocations. Called by
    /// [`crate::World::add_chain`] when a spare shell is available.
    pub(crate) fn recycle(
        &mut self,
        id: ChainId,
        name: &str,
        native_asset: AssetId,
        trace: TraceMode,
    ) {
        self.id = id;
        self.name.clear();
        self.name.push_str(name);
        self.native_asset = native_asset;
        self.height = Time::ZERO;
        self.ledger.clear();
        self.contracts.clear();
        self.events.clear();
        self.trace = trace;
        self.gas_schedule = GasSchedule::DEFAULT;
        self.gas.clear();
        self.finality = FinalityParams::INSTANT;
        self.window.clear();
        self.reorg_stats = ReorgStats::default();
    }

    /// The chain's identifier.
    pub fn id(&self) -> ChainId {
        self.id
    }

    /// The chain's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The chain's native currency, used to denominate premiums.
    pub fn native_asset(&self) -> AssetId {
        self.native_asset
    }

    /// The current block height.
    pub fn height(&self) -> Time {
        self.height
    }

    /// Read-only access to the ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable access to the ledger, intended for initial endowments.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Convenience: the balance of `account` in `asset`.
    pub fn balance(&self, account: AccountRef, asset: AssetId) -> Amount {
        self.ledger.balance(account, asset)
    }

    /// Mints `amount` of `asset` to a party and records the event.
    pub fn mint(&mut self, party: PartyId, asset: AssetId, amount: Amount) {
        self.ledger.mint(AccountRef::Party(party), asset, amount);
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.height,
                kind: EventKind::Mint { account: AccountRef::Party(party), asset, amount },
            });
        }
    }

    /// The chain's gas cost table.
    pub fn gas_schedule(&self) -> GasSchedule {
        self.gas_schedule
    }

    /// Replaces the chain's gas cost table (intended for world setup, before
    /// any calls are metered).
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas_schedule = schedule;
    }

    /// The chain's gas meter: total burned, per-party attribution and the
    /// cost of the most recent call.
    pub fn gas_meter(&self) -> &GasMeter {
        &self.gas
    }

    /// The chain's finality parameters (instant finality by default).
    pub fn finality(&self) -> FinalityParams {
        self.finality
    }

    /// Sets the chain's finality parameters.
    ///
    /// A non-zero `depth` opens the speculative window immediately: from
    /// this point on, the chain records each round's successful calls and
    /// publishes so a [`ReorgEvent`] can rewind and re-deliver them.
    /// Intended for world setup; re-configuring mid-run discards the window
    /// recorded so far (the past becomes final).
    pub fn set_finality(&mut self, params: FinalityParams) {
        self.finality = params;
        self.window.clear();
        if params.depth > 0 {
            self.window.push_back(SpecRound { base: self.capture_core(), actions: Vec::new() });
        }
    }

    /// Counters describing the reorgs this chain has absorbed.
    pub fn reorg_stats(&self) -> ReorgStats {
        self.reorg_stats
    }

    /// Publishes a new contract and returns its id.
    ///
    /// Publishing burns [`GasSchedule::publish`] gas, charged to the
    /// publisher.
    pub fn publish(&mut self, publisher: PartyId, contract: Box<dyn Contract>) -> ContractId {
        let id = ContractId(self.contracts.len() as u64);
        self.gas.charge(publisher, self.gas_schedule.publish);
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.height,
                kind: EventKind::ContractPublished {
                    contract: id,
                    publisher,
                    type_name: contract.type_name(),
                },
            });
        }
        if let Some(round) = self.window.back_mut() {
            // Record the contract's initial state: a re-delivered publish
            // replays later calls on top, reproducing the rewound history.
            round
                .actions
                .push(RecordedAction::Publish { publisher, contract: contract.clone_box() });
        }
        self.contracts.push(Some(contract));
        id
    }

    /// Calls contract `id` with the typed message `msg` on behalf of `caller`.
    ///
    /// Calls are transactional: the dispatch runs inside an implicit
    /// commit/rollback frame. On success every effect commits; on failure
    /// the ledger operations and notes the contract performed before failing
    /// are rolled back and the contract's pre-call state is restored, so a
    /// failed call leaves **zero residue** — except gas, which stays charged
    /// for the work attempted (debug builds assert the residue-free
    /// property after every rollback).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchContract`] if `id` is unknown, or
    /// [`ChainError::ContractFailed`] wrapping the [`ContractError`] if the
    /// contract rejects the call. Rejected calls are also recorded in the
    /// event log (under [`TraceMode::Full`]).
    pub fn call(
        &mut self,
        caller: PartyId,
        id: ContractId,
        msg: &dyn ContractMessage,
        call_description: impl Into<CallDesc>,
        directory: &cryptosim::KeyDirectory,
        caches: &mut SimCaches,
    ) -> Result<(), ChainError> {
        let desc: CallDesc = call_description.into();
        // Temporarily take the contract out of its slot so that it and the
        // ledger can be borrowed mutably at the same time.
        let slot = id.0 as usize;
        let mut contract = self
            .contracts
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(ChainError::NoSuchContract { chain: self.id, contract: id })?;
        // The rollback target: a failed call must restore the contract's
        // internal state along with the ledger.
        let backup = contract.clone_box();
        let events_before = self.events.len();
        #[cfg(any(debug_assertions, feature = "strict-rollback"))]
        let balances_probe = {
            let contract_account = AccountRef::Contract(id);
            let caller_account = AccountRef::Party(caller);
            self.ledger
                .assets()
                .into_iter()
                .map(|asset| {
                    (
                        asset,
                        self.ledger.balance(contract_account, asset),
                        self.ledger.balance(caller_account, asset),
                    )
                })
                .collect::<Vec<_>>()
        };
        let undo_pool = std::mem::take(&mut self.undo_pool);
        let (result, gas_used) = {
            let mut env = CallEnv::with_undo_pool(
                self.id,
                id,
                caller,
                self.height,
                &mut self.ledger,
                &mut self.events,
                directory,
                caches,
                self.trace,
                self.gas_schedule,
                undo_pool,
            );
            let result = contract.handle(&mut env, msg.as_any());
            let gas_used = env.gas_used();
            self.undo_pool = match &result {
                Ok(()) => env.into_undo_pool(),
                Err(_) => env.rollback_all(),
            };
            (result, gas_used)
        };
        // Failed calls still burn the gas they consumed before failing.
        self.gas.charge(caller, gas_used);
        match result {
            Ok(()) => {
                self.contracts[slot] = Some(contract);
                if self.trace.is_full() {
                    self.events.push(ChainEvent {
                        height: self.height,
                        kind: EventKind::CallSucceeded { contract: id, caller, call: desc },
                    });
                }
                if let Some(round) = self.window.back_mut() {
                    round.actions.push(RecordedAction::Call {
                        caller,
                        contract: id,
                        msg: msg.clone_message(),
                        desc,
                    });
                }
                Ok(())
            }
            Err(err) => {
                // Rollback frame: the ledger and notes were unwound above;
                // discard the half-mutated contract for its pre-call state.
                self.contracts[slot] = Some(backup);
                #[cfg(any(debug_assertions, feature = "strict-rollback"))]
                {
                    assert_eq!(
                        self.events.len(),
                        events_before,
                        "failed call must withdraw every note it emitted"
                    );
                    for (asset, contract_before, caller_before) in balances_probe {
                        assert_eq!(
                            self.ledger.balance(AccountRef::Contract(id), asset),
                            contract_before,
                            "failed call left residue in the contract account"
                        );
                        assert_eq!(
                            self.ledger.balance(AccountRef::Party(caller), asset),
                            caller_before,
                            "failed call left residue in the caller account"
                        );
                    }
                }
                #[cfg(not(any(debug_assertions, feature = "strict-rollback")))]
                let _ = events_before;
                if self.trace.is_full() {
                    self.events.push(ChainEvent {
                        height: self.height,
                        kind: EventKind::CallFailed {
                            contract: id,
                            caller,
                            call: desc,
                            error: err.clone(),
                        },
                    });
                }
                Err(ChainError::ContractFailed { contract: id, source: err })
            }
        }
    }

    /// Returns a reference to the contract with id `id`, if any.
    pub fn contract(&self, id: ContractId) -> Option<&dyn Contract> {
        self.contracts.get(id.0 as usize).and_then(|slot| slot.as_deref())
    }

    /// Returns the contract downcast to its concrete type `T`, if it exists
    /// and has that type.
    ///
    /// Contract state is public, so any party (and the test suite) may
    /// inspect it this way.
    pub fn contract_as<T: Contract + 'static>(&self, id: ContractId) -> Option<&T> {
        self.contract(id).and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// The number of contracts published on this chain.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }

    /// Iterates over the live contracts on this chain, in publication
    /// order. Static analyzers use this to collect every published
    /// contract's [`StateSpec`](crate::StateSpec) without knowing the
    /// concrete types.
    pub fn contracts(&self) -> impl Iterator<Item = &dyn Contract> {
        self.contracts.iter().filter_map(|slot| slot.as_deref())
    }

    /// The chain's public event log (empty under [`TraceMode::Off`]).
    pub fn events(&self) -> &[ChainEvent] {
        &self.events
    }

    /// Advances the chain by `blocks` blocks.
    pub(crate) fn advance_blocks(&mut self, blocks: u64) {
        self.height = self.height.plus(blocks);
    }

    /// Closes the current world round: advances the height by `blocks` and,
    /// when finality lag is configured, rolls the speculative window forward
    /// (opening the next round's entry and finalizing rounds that fall off
    /// the window). Called by the world at every round boundary.
    pub(crate) fn end_round(&mut self, blocks: u64) {
        self.height = self.height.plus(blocks);
        if self.finality.depth > 0 {
            self.window.push_back(SpecRound { base: self.capture_core(), actions: Vec::new() });
            while self.window.len() > self.finality.depth as usize {
                self.window.pop_front();
            }
        }
    }

    /// Executes a reorg of `depth` rounds (clamped to the speculative
    /// window) at the current height: rewinds the chain to the start of the
    /// oldest rewound round — heights never move backwards — then
    /// re-delivers the rewound publishes and, per `policy`, the rewound
    /// calls, in their original order at the current height. Returns the
    /// number of rounds actually rewound.
    pub(crate) fn reorg(
        &mut self,
        depth: u32,
        policy: ReorgPolicy,
        directory: &cryptosim::KeyDirectory,
        caches: &mut SimCaches,
    ) -> u32 {
        let rewound = (depth as usize).min(self.window.len());
        if rewound == 0 {
            return 0;
        }
        let drained: Vec<SpecRound> = {
            let keep = self.window.len() - rewound;
            self.window.split_off(keep).into_iter().collect()
        };
        let reorg_height = self.height;
        self.restore_core_from(&drained[0].base, self.trace);
        self.height = reorg_height;
        // Re-open the current round on top of the rewound state; re-delivered
        // actions are recorded into it like any other call of this round.
        self.window.push_back(SpecRound { base: self.capture_core(), actions: Vec::new() });
        self.reorg_stats.reorgs += 1;
        for round in drained {
            for action in round.actions {
                match action {
                    RecordedAction::Publish { publisher, contract } => {
                        // Publishes always re-land: contract ids are
                        // sequential, so dropping one would orphan every
                        // later id on the chain.
                        self.publish(publisher, contract);
                    }
                    RecordedAction::Call { caller, contract, msg, desc } => {
                        self.reorg_stats.rewound_calls += 1;
                        match policy {
                            ReorgPolicy::DropCalls => self.reorg_stats.dropped_calls += 1,
                            ReorgPolicy::Redeliver => {
                                match self.call(
                                    caller,
                                    contract,
                                    msg.as_ref(),
                                    desc,
                                    directory,
                                    caches,
                                ) {
                                    Ok(()) => self.reorg_stats.redelivered_calls += 1,
                                    Err(_) => self.reorg_stats.redelivery_failures += 1,
                                }
                            }
                        }
                    }
                }
            }
        }
        rewound as u32
    }

    /// Captures the chain state minus the speculative window (the form
    /// stored inside window entries themselves).
    fn capture_core(&self) -> ChainSnapshot {
        ChainSnapshot {
            id: self.id,
            name: self.name.clone(),
            native_asset: self.native_asset,
            height: self.height,
            ledger: self.ledger.clone(),
            contracts: self
                .contracts
                .iter()
                .map(|slot| slot.as_ref().expect("no call in flight during snapshot").clone_box())
                .collect(),
            events: self.events.clone(),
            gas_schedule: self.gas_schedule,
            gas: self.gas.clone(),
            finality: self.finality,
            window: Vec::new(),
            reorg_stats: self.reorg_stats,
        }
    }

    /// Captures the chain's full state for [`crate::World::snapshot`],
    /// including the speculative/finalized split (finality parameters, the
    /// speculative window and reorg counters).
    ///
    /// Contracts are deep-cloned via [`Contract::clone_box`]; the event log
    /// is cloned as-is (empty under [`TraceMode::Off`], so snapshots of
    /// trace-free sweep worlds never copy events).
    pub(crate) fn capture(&self) -> ChainSnapshot {
        let mut snap = self.capture_core();
        snap.window = self.window.iter().map(SpecRound::clone_data).collect();
        snap
    }

    /// Restores everything except the speculative window bookkeeping.
    fn restore_core_from(&mut self, snap: &ChainSnapshot, trace: TraceMode) {
        self.id = snap.id;
        self.name.clone_from(&snap.name);
        self.native_asset = snap.native_asset;
        self.height = snap.height;
        self.ledger.clone_from(&snap.ledger);
        self.contracts.clear();
        self.contracts.extend(snap.contracts.iter().map(|c| Some(c.clone_box())));
        self.events.clone_from(&snap.events);
        self.trace = trace;
        self.gas_schedule = snap.gas_schedule;
        self.gas.restore_from(&snap.gas);
    }

    /// Restores the chain (possibly a recycled spare shell) to the captured
    /// state, reusing the ledger, event-log and name allocations. The
    /// speculative/finalized split is restored exactly: finality parameters,
    /// the speculative window and reorg counters all come from the snapshot,
    /// so state a reorg reverted before the snapshot can never resurrect
    /// (debug builds assert the restored window's integrity).
    pub(crate) fn restore_from(&mut self, snap: &ChainSnapshot, trace: TraceMode) {
        self.restore_core_from(snap, trace);
        self.finality = snap.finality;
        self.reorg_stats = snap.reorg_stats;
        self.window.clear();
        self.window.extend(snap.window.iter().map(SpecRound::clone_data));
        debug_assert!(
            self.window.len() <= self.finality.depth as usize,
            "restored speculative window exceeds the finality depth"
        );
        debug_assert!(
            self.window.iter().all(|round| round.base.height <= self.height),
            "restored speculative window reaches past the chain tip: a \
             restore must never resurrect reverted speculative state"
        );
        debug_assert!(
            self.window
                .iter()
                .zip(self.window.iter().skip(1))
                .all(|(a, b)| { a.base.height <= b.base.height }),
            "restored speculative window must be oldest-first"
        );
    }
}

/// The captured state of one chain inside a [`crate::WorldSnapshot`].
#[derive(Debug)]
pub(crate) struct ChainSnapshot {
    pub(crate) id: ChainId,
    name: String,
    native_asset: AssetId,
    height: Time,
    ledger: Ledger,
    contracts: Vec<Box<dyn Contract>>,
    events: Vec<ChainEvent>,
    gas_schedule: GasSchedule,
    gas: GasMeter,
    finality: FinalityParams,
    window: Vec<SpecRound>,
    reorg_stats: ReorgStats,
}

impl ChainSnapshot {
    /// Deep-clones the snapshot (contracts via `clone_box`, recorded
    /// messages via `clone_message`).
    fn clone_data(&self) -> ChainSnapshot {
        ChainSnapshot {
            id: self.id,
            name: self.name.clone(),
            native_asset: self.native_asset,
            height: self.height,
            ledger: self.ledger.clone(),
            contracts: self.contracts.iter().map(|c| c.clone_box()).collect(),
            events: self.events.clone(),
            gas_schedule: self.gas_schedule,
            gas: self.gas.clone(),
            finality: self.finality,
            window: self.window.iter().map(SpecRound::clone_data).collect(),
            reorg_stats: self.reorg_stats,
        }
    }
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Blockchain")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("height", &self.height)
            .field("contracts", &self.contracts.len())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::any::Any;

    use super::*;

    /// A minimal counter contract used to exercise the chain plumbing.
    #[derive(Clone, Debug, Default)]
    struct Counter {
        count: u64,
        deposited: Amount,
    }

    #[derive(Clone, Debug)]
    enum CounterMsg {
        Bump,
        /// Bumps only while `now <= deadline` — fails with `TooLate` after,
        /// which is exactly what happens to a re-delivered last-tick call.
        BumpBefore(Time),
        Deposit(Amount),
        Fail,
    }

    impl Contract for Counter {
        fn type_name(&self) -> &'static str {
            "Counter"
        }

        fn clone_box(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }

        fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
            let msg = msg.downcast_ref::<CounterMsg>().ok_or(ContractError::UnsupportedMessage)?;
            match msg {
                CounterMsg::Bump => {
                    self.count += 1;
                    Ok(())
                }
                CounterMsg::BumpBefore(deadline) => {
                    if env.now() > *deadline {
                        return Err(ContractError::TooLate { deadline: *deadline, now: env.now() });
                    }
                    self.count += 1;
                    Ok(())
                }
                CounterMsg::Deposit(amount) => {
                    env.debit_caller(AssetId(0), *amount)?;
                    self.deposited += *amount;
                    Ok(())
                }
                CounterMsg::Fail => Err(ContractError::invalid_state("always fails")),
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn chain_fixture() -> Blockchain {
        Blockchain::new(ChainId(0), "apricot", AssetId(100), TraceMode::Full)
    }

    fn dir() -> cryptosim::KeyDirectory {
        cryptosim::KeyDirectory::new()
    }

    fn caches() -> SimCaches {
        SimCaches::new()
    }

    #[test]
    fn publish_and_call_contract() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.call(PartyId(1), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        let counter = chain.contract_as::<Counter>(id).unwrap();
        assert_eq!(counter.count, 2);
        assert_eq!(chain.contract_count(), 1);
    }

    #[test]
    fn call_unknown_contract_fails() {
        let mut chain = chain_fixture();
        let err = chain
            .call(PartyId(0), ContractId(9), &CounterMsg::Bump, "Bump", &dir(), &mut caches())
            .unwrap_err();
        assert!(matches!(err, ChainError::NoSuchContract { .. }));
    }

    #[test]
    fn failed_calls_are_logged_and_propagated() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        let err = chain
            .call(PartyId(0), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert!(matches!(err, ChainError::ContractFailed { .. }));
        assert!(chain.events().iter().any(|e| matches!(
            &e.kind,
            EventKind::CallFailed { error, .. } if error.to_string().contains("always fails")
        )));
        // The contract survives a failed call.
        assert!(chain.contract(id).is_some());
    }

    #[test]
    fn unsupported_message_is_rejected() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        #[derive(Clone, Debug)]
        struct Bogus;
        let err = chain.call(PartyId(0), id, &Bogus, "Bogus", &dir(), &mut caches()).unwrap_err();
        assert!(matches!(
            err,
            ChainError::ContractFailed { source: ContractError::UnsupportedMessage, .. }
        ));
    }

    #[test]
    fn deposits_move_funds_into_contract_account() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::new(6));
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::new(4));
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().deposited, Amount::new(6));
    }

    #[test]
    fn heights_advance_and_are_recorded_in_events() {
        let mut chain = chain_fixture();
        chain.advance_blocks(5);
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert_eq!(chain.height(), Time(5));
        assert_eq!(chain.events().last().unwrap().height, Time(5));
        assert_eq!(id, ContractId(0));
    }

    #[test]
    fn metadata_accessors() {
        let chain = chain_fixture();
        assert_eq!(chain.id(), ChainId(0));
        assert_eq!(chain.name(), "apricot");
        assert_eq!(chain.native_asset(), AssetId(100));
        assert!(format!("{chain:?}").contains("Blockchain"));
    }

    #[test]
    fn trace_off_records_no_events() {
        let mut chain = Blockchain::new(ChainId(0), "quiet", AssetId(0), TraceMode::Off);
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        let _ = chain
            .call(PartyId(0), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert!(chain.events().is_empty());
        // State changes are identical to a traced run.
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::new(6));
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().deposited, Amount::new(6));
    }

    #[test]
    fn recycle_resets_state_and_keeps_nothing_visible() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.advance_blocks(7);

        chain.recycle(ChainId(3), "banana", AssetId(9), TraceMode::Full);
        assert_eq!(chain.id(), ChainId(3));
        assert_eq!(chain.name(), "banana");
        assert_eq!(chain.native_asset(), AssetId(9));
        assert_eq!(chain.height(), Time::ZERO);
        assert_eq!(chain.contract_count(), 0);
        assert!(chain.events().is_empty());
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::ZERO);
        // Fresh publishes start over at contract id 0.
        let id = chain.publish(PartyId(1), Box::new(Counter::default()));
        assert_eq!(id, ContractId(0));
    }

    #[test]
    fn gas_is_metered_per_call_and_burned_on_failure() {
        let schedule = GasSchedule::DEFAULT;
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert_eq!(chain.gas_meter().total(), schedule.publish);

        chain.call(PartyId(1), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base);
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base + schedule.ledger_op);
        // Failed calls still burn their base gas.
        let _ = chain
            .call(PartyId(1), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base);
        assert_eq!(chain.gas_meter().spent_by(PartyId(1)), 2 * schedule.call_base);
        assert_eq!(
            chain.gas_meter().total(),
            schedule.publish + 3 * schedule.call_base + schedule.ledger_op
        );
    }

    #[test]
    fn gas_meter_is_cleared_by_recycle() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        assert!(chain.gas_meter().total() > 0);
        chain.recycle(ChainId(1), "fresh", AssetId(0), TraceMode::Off);
        assert_eq!(chain.gas_meter().total(), 0);
        assert_eq!(chain.gas_meter().last_call(), 0);
    }

    #[test]
    fn contract_as_with_wrong_type_returns_none() {
        #[derive(Clone, Debug)]
        struct Other;
        impl Contract for Other {
            fn type_name(&self) -> &'static str {
                "Other"
            }
            fn clone_box(&self) -> Box<dyn Contract> {
                Box::new(self.clone())
            }
            fn handle(&mut self, _: &mut CallEnv<'_>, _: &dyn Any) -> Result<(), ContractError> {
                Ok(())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert!(chain.contract_as::<Other>(id).is_none());
        assert!(chain.contract_as::<Counter>(ContractId(99)).is_none());
    }

    #[test]
    fn finality_window_tracks_the_trailing_rounds() {
        let mut chain = chain_fixture();
        chain.set_finality(FinalityParams { depth: 2, delta: 0 });
        assert_eq!(chain.finality(), FinalityParams { depth: 2, delta: 0 });
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        for _ in 0..5 {
            chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
            chain.end_round(1);
        }
        assert_eq!(chain.window.len(), 2);
        assert_eq!(chain.height(), Time(5));
        // The open (current) round has no actions yet; the previous one
        // recorded its single call.
        assert!(chain.window.back().unwrap().actions.is_empty());
        assert_eq!(chain.window.front().unwrap().actions.len(), 1);
    }

    #[test]
    fn redeliver_reorg_replays_history_identically() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        chain.set_finality(FinalityParams { depth: 3, delta: 0 });
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.end_round(1);
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        chain.end_round(1);
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();

        let rewound = chain.reorg(2, ReorgPolicy::Redeliver, &dir(), &mut caches());
        assert_eq!(rewound, 2);
        // Pure re-delivery of deadline-free calls is observationally
        // identical: balances and contract state land where they started.
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::new(6));
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::new(4));
        let counter = chain.contract_as::<Counter>(id).unwrap();
        assert_eq!(counter.count, 1);
        assert_eq!(counter.deposited, Amount::new(6));
        // Heights never rewind.
        assert_eq!(chain.height(), Time(2));
        let stats = chain.reorg_stats();
        assert_eq!(stats.reorgs, 1);
        assert_eq!(stats.rewound_calls, 2);
        assert_eq!(stats.redelivered_calls, 2);
        assert_eq!(stats.dropped_calls, 0);
        assert_eq!(stats.redelivery_failures, 0);
    }

    #[test]
    fn drop_calls_reorg_erases_calls_but_keeps_publishes() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        chain.set_finality(FinalityParams { depth: 2, delta: 0 });
        chain.end_round(1);
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();

        let rewound = chain.reorg(1, ReorgPolicy::DropCalls, &dir(), &mut caches());
        assert_eq!(rewound, 1);
        // The publish re-landed (same id), the deposit vanished.
        assert!(chain.contract_as::<Counter>(id).is_some());
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::ZERO);
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::new(10));
        let stats = chain.reorg_stats();
        assert_eq!(stats.dropped_calls, 1);
        assert_eq!(stats.redelivered_calls, 0);
    }

    #[test]
    fn reorg_depth_is_clamped_to_the_speculative_window() {
        let mut chain = chain_fixture();
        chain.set_finality(FinalityParams { depth: 2, delta: 0 });
        chain.end_round(1);
        // Window holds 2 rounds; asking for 10 rewinds only those 2.
        let rewound = chain.reorg(10, ReorgPolicy::Redeliver, &dir(), &mut caches());
        assert_eq!(rewound, 2);
        // Without a window (instant finality) reorgs are no-ops.
        let mut instant = chain_fixture();
        assert_eq!(instant.reorg(3, ReorgPolicy::Redeliver, &dir(), &mut caches()), 0);
        assert_eq!(instant.reorg_stats(), ReorgStats::default());
    }

    #[test]
    fn redelivered_failures_are_counted_not_propagated() {
        let mut chain = chain_fixture();
        chain.set_finality(FinalityParams { depth: 2, delta: 0 });
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        // Round 0: a last-tick bump that is only valid while now <= 0.
        chain
            .call(PartyId(0), id, &CounterMsg::BumpBefore(Time(0)), "Bump", &dir(), &mut caches())
            .unwrap();
        chain.end_round(1);
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().count, 1);

        // The reorg rewinds both rounds and re-delivers at height 1, past
        // the deadline the call originally beat: the bump is lost, the
        // failure is absorbed into the stats rather than propagated.
        let rewound = chain.reorg(2, ReorgPolicy::Redeliver, &dir(), &mut caches());
        assert_eq!(rewound, 2);
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().count, 0);
        let stats = chain.reorg_stats();
        assert_eq!(stats.rewound_calls, 1);
        assert_eq!(stats.redelivery_failures, 1);
        assert_eq!(stats.redelivered_calls, 0);

        // Failed calls are never recorded, so the reopened round only holds
        // the publish re-delivery, not the failed bump.
        let _ = chain.call(PartyId(0), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches());
        assert_eq!(chain.window.back().unwrap().actions.len(), 1);
    }

    #[test]
    fn snapshot_round_trips_the_speculative_split() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        chain.set_finality(FinalityParams { depth: 2, delta: 3 });
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.end_round(1);
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.reorg(1, ReorgPolicy::Redeliver, &dir(), &mut caches());

        let snap = chain.capture();
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.end_round(1);
        chain.restore_from(&snap, TraceMode::Full);

        assert_eq!(chain.finality(), FinalityParams { depth: 2, delta: 3 });
        assert_eq!(chain.reorg_stats().reorgs, 1);
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().count, 1);
        assert_eq!(chain.window.len(), 2);
        assert_eq!(chain.height(), Time(1));
        // The restored window can still absorb a reorg.
        let rewound = chain.reorg(2, ReorgPolicy::Redeliver, &dir(), &mut caches());
        assert_eq!(rewound, 2);
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().count, 1);
    }
}
