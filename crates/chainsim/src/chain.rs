//! A single simulated blockchain.

use std::any::Any;
use std::fmt;

use crate::amount::Amount;
use crate::caches::SimCaches;
use crate::contract::{CallEnv, Contract};
use crate::error::ChainError;
#[cfg(test)]
use crate::error::ContractError;
use crate::events::{CallDesc, ChainEvent, EventKind, TraceMode};
use crate::gas::{GasMeter, GasSchedule};
use crate::ids::{AssetId, ChainId, ContractId, PartyId};
use crate::ledger::{AccountRef, Ledger};
use crate::time::Time;

/// A simulated blockchain: a ledger, a contract store and a block clock.
///
/// Chains are created through [`crate::World::add_chain`] and advance their
/// heights in lock-step with the rest of the world. All state is public:
/// any party may read the ledger, the event log and the state of any
/// contract (via [`Blockchain::contract_as`]), mirroring the transparency
/// assumption of the paper.
///
/// Contracts are stored in a dense `Vec` indexed by their sequentially
/// assigned [`ContractId`]s, and the whole chain can be recycled between
/// scenario runs (see [`crate::World::reset`]) without dropping the ledger,
/// contract-store or event-log allocations.
pub struct Blockchain {
    id: ChainId,
    name: String,
    native_asset: AssetId,
    height: Time,
    ledger: Ledger,
    /// Slot `i` holds the contract with `ContractId(i)`; a slot is `None`
    /// only transiently while its contract is executing a call.
    contracts: Vec<Option<Box<dyn Contract>>>,
    events: Vec<ChainEvent>,
    trace: TraceMode,
    gas_schedule: GasSchedule,
    gas: GasMeter,
}

impl Blockchain {
    /// Creates a new chain. Called by [`crate::World::add_chain`].
    pub(crate) fn new(
        id: ChainId,
        name: impl Into<String>,
        native_asset: AssetId,
        trace: TraceMode,
    ) -> Self {
        Blockchain {
            id,
            name: name.into(),
            native_asset,
            height: Time::ZERO,
            ledger: Ledger::new(),
            contracts: Vec::new(),
            events: Vec::new(),
            trace,
            gas_schedule: GasSchedule::DEFAULT,
            gas: GasMeter::new(),
        }
    }

    /// Re-initialises a retired chain shell for a new run, retaining the
    /// ledger, contract-store and event-log allocations. Called by
    /// [`crate::World::add_chain`] when a spare shell is available.
    pub(crate) fn recycle(
        &mut self,
        id: ChainId,
        name: &str,
        native_asset: AssetId,
        trace: TraceMode,
    ) {
        self.id = id;
        self.name.clear();
        self.name.push_str(name);
        self.native_asset = native_asset;
        self.height = Time::ZERO;
        self.ledger.clear();
        self.contracts.clear();
        self.events.clear();
        self.trace = trace;
        self.gas_schedule = GasSchedule::DEFAULT;
        self.gas.clear();
    }

    /// The chain's identifier.
    pub fn id(&self) -> ChainId {
        self.id
    }

    /// The chain's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The chain's native currency, used to denominate premiums.
    pub fn native_asset(&self) -> AssetId {
        self.native_asset
    }

    /// The current block height.
    pub fn height(&self) -> Time {
        self.height
    }

    /// Read-only access to the ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable access to the ledger, intended for initial endowments.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Convenience: the balance of `account` in `asset`.
    pub fn balance(&self, account: AccountRef, asset: AssetId) -> Amount {
        self.ledger.balance(account, asset)
    }

    /// Mints `amount` of `asset` to a party and records the event.
    pub fn mint(&mut self, party: PartyId, asset: AssetId, amount: Amount) {
        self.ledger.mint(AccountRef::Party(party), asset, amount);
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.height,
                kind: EventKind::Mint { account: AccountRef::Party(party), asset, amount },
            });
        }
    }

    /// The chain's gas cost table.
    pub fn gas_schedule(&self) -> GasSchedule {
        self.gas_schedule
    }

    /// Replaces the chain's gas cost table (intended for world setup, before
    /// any calls are metered).
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas_schedule = schedule;
    }

    /// The chain's gas meter: total burned, per-party attribution and the
    /// cost of the most recent call.
    pub fn gas_meter(&self) -> &GasMeter {
        &self.gas
    }

    /// Publishes a new contract and returns its id.
    ///
    /// Publishing burns [`GasSchedule::publish`] gas, charged to the
    /// publisher.
    pub fn publish(&mut self, publisher: PartyId, contract: Box<dyn Contract>) -> ContractId {
        let id = ContractId(self.contracts.len() as u64);
        self.gas.charge(publisher, self.gas_schedule.publish);
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.height,
                kind: EventKind::ContractPublished {
                    contract: id,
                    publisher,
                    type_name: contract.type_name(),
                },
            });
        }
        self.contracts.push(Some(contract));
        id
    }

    /// Calls contract `id` with the typed message `msg` on behalf of `caller`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchContract`] if `id` is unknown, or
    /// [`ChainError::ContractFailed`] wrapping the [`ContractError`] if the
    /// contract rejects the call. Rejected calls are also recorded in the
    /// event log (under [`TraceMode::Full`]).
    pub fn call(
        &mut self,
        caller: PartyId,
        id: ContractId,
        msg: &dyn Any,
        call_description: impl Into<CallDesc>,
        directory: &cryptosim::KeyDirectory,
        caches: &mut SimCaches,
    ) -> Result<(), ChainError> {
        // Temporarily take the contract out of its slot so that it and the
        // ledger can be borrowed mutably at the same time.
        let slot = id.0 as usize;
        let mut contract = self
            .contracts
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(ChainError::NoSuchContract { chain: self.id, contract: id })?;
        let (result, gas_used) = {
            let mut env = CallEnv::new(
                self.id,
                id,
                caller,
                self.height,
                &mut self.ledger,
                &mut self.events,
                directory,
                caches,
                self.trace,
                self.gas_schedule,
            );
            let result = contract.handle(&mut env, msg);
            (result, env.gas_used())
        };
        self.contracts[slot] = Some(contract);
        // Failed calls still burn the gas they consumed before failing.
        self.gas.charge(caller, gas_used);
        match result {
            Ok(()) => {
                if self.trace.is_full() {
                    self.events.push(ChainEvent {
                        height: self.height,
                        kind: EventKind::CallSucceeded {
                            contract: id,
                            caller,
                            call: call_description.into(),
                        },
                    });
                }
                Ok(())
            }
            Err(err) => {
                if self.trace.is_full() {
                    self.events.push(ChainEvent {
                        height: self.height,
                        kind: EventKind::CallFailed {
                            contract: id,
                            caller,
                            call: call_description.into(),
                            error: err.clone(),
                        },
                    });
                }
                Err(ChainError::ContractFailed { contract: id, source: err })
            }
        }
    }

    /// Returns a reference to the contract with id `id`, if any.
    pub fn contract(&self, id: ContractId) -> Option<&dyn Contract> {
        self.contracts.get(id.0 as usize).and_then(|slot| slot.as_deref())
    }

    /// Returns the contract downcast to its concrete type `T`, if it exists
    /// and has that type.
    ///
    /// Contract state is public, so any party (and the test suite) may
    /// inspect it this way.
    pub fn contract_as<T: Contract + 'static>(&self, id: ContractId) -> Option<&T> {
        self.contract(id).and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// The number of contracts published on this chain.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }

    /// The chain's public event log (empty under [`TraceMode::Off`]).
    pub fn events(&self) -> &[ChainEvent] {
        &self.events
    }

    /// Advances the chain by `blocks` blocks.
    pub(crate) fn advance_blocks(&mut self, blocks: u64) {
        self.height = self.height.plus(blocks);
    }

    /// Captures the chain's full state for [`crate::World::snapshot`].
    ///
    /// Contracts are deep-cloned via [`Contract::clone_box`]; the event log
    /// is cloned as-is (empty under [`TraceMode::Off`], so snapshots of
    /// trace-free sweep worlds never copy events).
    pub(crate) fn capture(&self) -> ChainSnapshot {
        ChainSnapshot {
            id: self.id,
            name: self.name.clone(),
            native_asset: self.native_asset,
            height: self.height,
            ledger: self.ledger.clone(),
            contracts: self
                .contracts
                .iter()
                .map(|slot| slot.as_ref().expect("no call in flight during snapshot").clone_box())
                .collect(),
            events: self.events.clone(),
            gas_schedule: self.gas_schedule,
            gas: self.gas.clone(),
        }
    }

    /// Restores the chain (possibly a recycled spare shell) to the captured
    /// state, reusing the ledger, event-log and name allocations.
    pub(crate) fn restore_from(&mut self, snap: &ChainSnapshot, trace: TraceMode) {
        self.id = snap.id;
        self.name.clone_from(&snap.name);
        self.native_asset = snap.native_asset;
        self.height = snap.height;
        self.ledger.clone_from(&snap.ledger);
        self.contracts.clear();
        self.contracts.extend(snap.contracts.iter().map(|c| Some(c.clone_box())));
        self.events.clone_from(&snap.events);
        self.trace = trace;
        self.gas_schedule = snap.gas_schedule;
        self.gas.restore_from(&snap.gas);
    }
}

/// The captured state of one chain inside a [`crate::WorldSnapshot`].
#[derive(Debug)]
pub(crate) struct ChainSnapshot {
    pub(crate) id: ChainId,
    name: String,
    native_asset: AssetId,
    height: Time,
    ledger: Ledger,
    contracts: Vec<Box<dyn Contract>>,
    events: Vec<ChainEvent>,
    gas_schedule: GasSchedule,
    gas: GasMeter,
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Blockchain")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("height", &self.height)
            .field("contracts", &self.contracts.len())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal counter contract used to exercise the chain plumbing.
    #[derive(Clone, Debug, Default)]
    struct Counter {
        count: u64,
        deposited: Amount,
    }

    #[derive(Debug)]
    enum CounterMsg {
        Bump,
        Deposit(Amount),
        Fail,
    }

    impl Contract for Counter {
        fn type_name(&self) -> &'static str {
            "Counter"
        }

        fn clone_box(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }

        fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
            let msg = msg.downcast_ref::<CounterMsg>().ok_or(ContractError::UnsupportedMessage)?;
            match msg {
                CounterMsg::Bump => {
                    self.count += 1;
                    Ok(())
                }
                CounterMsg::Deposit(amount) => {
                    env.debit_caller(AssetId(0), *amount)?;
                    self.deposited += *amount;
                    Ok(())
                }
                CounterMsg::Fail => Err(ContractError::invalid_state("always fails")),
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn chain_fixture() -> Blockchain {
        Blockchain::new(ChainId(0), "apricot", AssetId(100), TraceMode::Full)
    }

    fn dir() -> cryptosim::KeyDirectory {
        cryptosim::KeyDirectory::new()
    }

    fn caches() -> SimCaches {
        SimCaches::new()
    }

    #[test]
    fn publish_and_call_contract() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.call(PartyId(1), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        let counter = chain.contract_as::<Counter>(id).unwrap();
        assert_eq!(counter.count, 2);
        assert_eq!(chain.contract_count(), 1);
    }

    #[test]
    fn call_unknown_contract_fails() {
        let mut chain = chain_fixture();
        let err = chain
            .call(PartyId(0), ContractId(9), &CounterMsg::Bump, "Bump", &dir(), &mut caches())
            .unwrap_err();
        assert!(matches!(err, ChainError::NoSuchContract { .. }));
    }

    #[test]
    fn failed_calls_are_logged_and_propagated() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        let err = chain
            .call(PartyId(0), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert!(matches!(err, ChainError::ContractFailed { .. }));
        assert!(chain.events().iter().any(|e| matches!(
            &e.kind,
            EventKind::CallFailed { error, .. } if error.to_string().contains("always fails")
        )));
        // The contract survives a failed call.
        assert!(chain.contract(id).is_some());
    }

    #[test]
    fn unsupported_message_is_rejected() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        #[derive(Debug)]
        struct Bogus;
        let err = chain.call(PartyId(0), id, &Bogus, "Bogus", &dir(), &mut caches()).unwrap_err();
        assert!(matches!(
            err,
            ChainError::ContractFailed { source: ContractError::UnsupportedMessage, .. }
        ));
    }

    #[test]
    fn deposits_move_funds_into_contract_account() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::new(6));
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::new(4));
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().deposited, Amount::new(6));
    }

    #[test]
    fn heights_advance_and_are_recorded_in_events() {
        let mut chain = chain_fixture();
        chain.advance_blocks(5);
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert_eq!(chain.height(), Time(5));
        assert_eq!(chain.events().last().unwrap().height, Time(5));
        assert_eq!(id, ContractId(0));
    }

    #[test]
    fn metadata_accessors() {
        let chain = chain_fixture();
        assert_eq!(chain.id(), ChainId(0));
        assert_eq!(chain.name(), "apricot");
        assert_eq!(chain.native_asset(), AssetId(100));
        assert!(format!("{chain:?}").contains("Blockchain"));
    }

    #[test]
    fn trace_off_records_no_events() {
        let mut chain = Blockchain::new(ChainId(0), "quiet", AssetId(0), TraceMode::Off);
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        let _ = chain
            .call(PartyId(0), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert!(chain.events().is_empty());
        // State changes are identical to a traced run.
        assert_eq!(chain.balance(AccountRef::Contract(id), AssetId(0)), Amount::new(6));
        assert_eq!(chain.contract_as::<Counter>(id).unwrap().deposited, Amount::new(6));
    }

    #[test]
    fn recycle_resets_state_and_keeps_nothing_visible() {
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        chain.advance_blocks(7);

        chain.recycle(ChainId(3), "banana", AssetId(9), TraceMode::Full);
        assert_eq!(chain.id(), ChainId(3));
        assert_eq!(chain.name(), "banana");
        assert_eq!(chain.native_asset(), AssetId(9));
        assert_eq!(chain.height(), Time::ZERO);
        assert_eq!(chain.contract_count(), 0);
        assert!(chain.events().is_empty());
        assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), Amount::ZERO);
        // Fresh publishes start over at contract id 0.
        let id = chain.publish(PartyId(1), Box::new(Counter::default()));
        assert_eq!(id, ContractId(0));
    }

    #[test]
    fn gas_is_metered_per_call_and_burned_on_failure() {
        let schedule = GasSchedule::DEFAULT;
        let mut chain = chain_fixture();
        chain.mint(PartyId(0), AssetId(0), Amount::new(10));
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert_eq!(chain.gas_meter().total(), schedule.publish);

        chain.call(PartyId(1), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base);
        chain
            .call(
                PartyId(0),
                id,
                &CounterMsg::Deposit(Amount::new(6)),
                "Deposit",
                &dir(),
                &mut caches(),
            )
            .unwrap();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base + schedule.ledger_op);
        // Failed calls still burn their base gas.
        let _ = chain
            .call(PartyId(1), id, &CounterMsg::Fail, "Fail", &dir(), &mut caches())
            .unwrap_err();
        assert_eq!(chain.gas_meter().last_call(), schedule.call_base);
        assert_eq!(chain.gas_meter().spent_by(PartyId(1)), 2 * schedule.call_base);
        assert_eq!(
            chain.gas_meter().total(),
            schedule.publish + 3 * schedule.call_base + schedule.ledger_op
        );
    }

    #[test]
    fn gas_meter_is_cleared_by_recycle() {
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        chain.call(PartyId(0), id, &CounterMsg::Bump, "Bump", &dir(), &mut caches()).unwrap();
        assert!(chain.gas_meter().total() > 0);
        chain.recycle(ChainId(1), "fresh", AssetId(0), TraceMode::Off);
        assert_eq!(chain.gas_meter().total(), 0);
        assert_eq!(chain.gas_meter().last_call(), 0);
    }

    #[test]
    fn contract_as_with_wrong_type_returns_none() {
        #[derive(Clone, Debug)]
        struct Other;
        impl Contract for Other {
            fn type_name(&self) -> &'static str {
                "Other"
            }
            fn clone_box(&self) -> Box<dyn Contract> {
                Box::new(self.clone())
            }
            fn handle(&mut self, _: &mut CallEnv<'_>, _: &dyn Any) -> Result<(), ContractError> {
                Ok(())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut chain = chain_fixture();
        let id = chain.publish(PartyId(0), Box::new(Counter::default()));
        assert!(chain.contract_as::<Other>(id).is_none());
        assert!(chain.contract_as::<Counter>(ContractId(99)).is_none());
    }
}
