//! Chain event log.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::amount::Amount;
use crate::ids::{AssetId, ContractId, PartyId};
use crate::ledger::AccountRef;
use crate::time::Time;

/// A single entry in a chain's public event log.
///
/// Every ledger mutation and contract interaction is recorded, which is what
/// lets the protocol layer reconstruct lock-up intervals and payoff
/// attributions after a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainEvent {
    /// The block height at which the event was recorded.
    pub height: Time,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events recorded on a chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A new contract was published.
    ContractPublished {
        /// The new contract's id.
        contract: ContractId,
        /// The publishing party.
        publisher: PartyId,
        /// The contract's type name (for diagnostics).
        type_name: String,
    },
    /// A contract call succeeded.
    CallSucceeded {
        /// The contract that was called.
        contract: ContractId,
        /// The calling party.
        caller: PartyId,
        /// A short description of the call.
        call: String,
    },
    /// A contract call was rejected.
    CallFailed {
        /// The contract that was called.
        contract: ContractId,
        /// The calling party.
        caller: PartyId,
        /// A short description of the call.
        call: String,
        /// The error message.
        error: String,
    },
    /// Value moved between two accounts.
    Transfer {
        /// The debited account.
        from: AccountRef,
        /// The credited account.
        to: AccountRef,
        /// The asset transferred.
        asset: AssetId,
        /// The amount transferred.
        amount: Amount,
    },
    /// Value was minted during setup.
    Mint {
        /// The credited account.
        account: AccountRef,
        /// The asset minted.
        asset: AssetId,
        /// The amount minted.
        amount: Amount,
    },
    /// A free-form note emitted by a contract (for traces and debugging).
    Note {
        /// The contract that emitted the note.
        contract: ContractId,
        /// The note text.
        text: String,
    },
}

impl fmt::Display for ChainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::ContractPublished { contract, publisher, type_name } => {
                write!(f, "[{}] {publisher} published {contract} ({type_name})", self.height)
            }
            EventKind::CallSucceeded { contract, caller, call } => {
                write!(f, "[{}] {caller} -> {contract}: {call} ok", self.height)
            }
            EventKind::CallFailed { contract, caller, call, error } => {
                write!(f, "[{}] {caller} -> {contract}: {call} FAILED ({error})", self.height)
            }
            EventKind::Transfer { from, to, asset, amount } => {
                write!(f, "[{}] transfer {amount} of {asset}: {from} -> {to}", self.height)
            }
            EventKind::Mint { account, asset, amount } => {
                write!(f, "[{}] mint {amount} of {asset} to {account}", self.height)
            }
            EventKind::Note { contract, text } => {
                write!(f, "[{}] {contract}: {text}", self.height)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_display() {
        let e = ChainEvent {
            height: Time(3),
            kind: EventKind::Transfer {
                from: AccountRef::Party(PartyId(0)),
                to: AccountRef::Contract(ContractId(1)),
                asset: AssetId(0),
                amount: Amount::new(10),
            },
        };
        assert_eq!(e.to_string(), "[t=3] transfer 10 of asset#0: P0 -> contract#1");

        let e = ChainEvent {
            height: Time(0),
            kind: EventKind::ContractPublished {
                contract: ContractId(0),
                publisher: PartyId(1),
                type_name: "Htlc".into(),
            },
        };
        assert!(e.to_string().contains("published"));

        let e = ChainEvent {
            height: Time(1),
            kind: EventKind::CallFailed {
                contract: ContractId(0),
                caller: PartyId(1),
                call: "Redeem".into(),
                error: "too late".into(),
            },
        };
        assert!(e.to_string().contains("FAILED"));
    }
}
