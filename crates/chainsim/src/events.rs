//! Chain event log.
//!
//! Events are stored as *structured data* — small `Copy`-friendly enums over
//! ids and amounts — and rendered to text only when a [`ChainEvent`] is
//! `Display`ed. The hot path (a model-checking sweep running thousands of
//! scenarios) therefore never formats a string; and with
//! [`TraceMode::Off`] a world skips recording events entirely while leaving
//! every balance-visible outcome identical.

use std::fmt;

use crate::amount::Amount;
use crate::error::ContractError;
use crate::ids::{AssetId, ContractId, Label, PartyId};
use crate::time::Time;

/// Whether a [`crate::World`] records event traces.
///
/// The mode changes *observability only*: ledger balances, contract state
/// and action outcomes are bit-for-bit identical under both modes. Sweeps
/// run with [`TraceMode::Off`]; interactive runs and conformance tests keep
/// the default [`TraceMode::Full`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Skip event construction entirely (for bulk scenario sweeps).
    Off,
    /// Record every ledger mutation and contract interaction.
    #[default]
    Full,
}

impl TraceMode {
    /// Returns `true` if events should be recorded.
    pub fn is_full(self) -> bool {
        matches!(self, TraceMode::Full)
    }
}

/// A structured, allocation-free description of a contract call.
///
/// Protocol scripts used to build `format!`ed strings for every action they
/// emitted — on every round of every scenario. A `CallDesc` instead captures
/// the parts (all `Copy`) and renders the same text lazily on `Display`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallDesc {
    /// A fixed description.
    Static(&'static str),
    /// `"{prefix}{party}{suffix}"`.
    Party {
        /// Text before the party.
        prefix: &'static str,
        /// The party named in the description.
        party: PartyId,
        /// Text after the party.
        suffix: &'static str,
    },
    /// `"{party} {verb} ({from}, {to})"` — deal-engine arc operations.
    Arc {
        /// The acting party.
        party: PartyId,
        /// The verb phrase, e.g. `"deposits escrow premium on"`.
        verb: &'static str,
        /// The arc's sender.
        from: PartyId,
        /// The arc's receiver.
        to: PartyId,
    },
    /// `"{party} {verb} {subject} {link} ({from}, {to})"` — arc operations
    /// naming a second party (a leader whose premium or hashkey moves).
    SubjectArc {
        /// The acting party.
        party: PartyId,
        /// The verb phrase, e.g. `"passes redemption premium for"`.
        verb: &'static str,
        /// The party the operation concerns.
        subject: PartyId,
        /// The connective before the arc, e.g. `"to"` or `"on"`.
        link: &'static str,
        /// The arc's sender.
        from: PartyId,
        /// The arc's receiver.
        to: PartyId,
    },
    /// `"{party} {verb} {amount}"`.
    Amount {
        /// The acting party.
        party: PartyId,
        /// The verb phrase, e.g. `"bids"`.
        verb: &'static str,
        /// The amount named in the description.
        amount: Amount,
    },
    /// `"{party}{mid}{other}{suffix}"` — descriptions naming two parties.
    Parties {
        /// The acting party.
        party: PartyId,
        /// Text between the two parties.
        mid: &'static str,
        /// The second party.
        other: PartyId,
        /// Text after the second party.
        suffix: &'static str,
    },
    /// `"publish {type_name} as \"{label}\""` — synthesized for publish
    /// actions.
    Publish {
        /// The published contract's type name.
        type_name: &'static str,
        /// The discovery label it was registered under.
        label: Label,
    },
}

impl fmt::Display for CallDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallDesc::Static(text) => f.write_str(text),
            CallDesc::Party { prefix, party, suffix } => write!(f, "{prefix}{party}{suffix}"),
            CallDesc::Arc { party, verb, from, to } => {
                write!(f, "{party} {verb} ({from}, {to})")
            }
            CallDesc::SubjectArc { party, verb, subject, link, from, to } => {
                write!(f, "{party} {verb} {subject} {link} ({from}, {to})")
            }
            CallDesc::Amount { party, verb, amount } => write!(f, "{party} {verb} {amount}"),
            CallDesc::Parties { party, mid, other, suffix } => {
                write!(f, "{party}{mid}{other}{suffix}")
            }
            CallDesc::Publish { type_name, label } => {
                write!(f, "publish {type_name} as \"{label}\"")
            }
        }
    }
}

impl From<&'static str> for CallDesc {
    fn from(text: &'static str) -> Self {
        CallDesc::Static(text)
    }
}

/// A structured note emitted by a contract (see [`crate::CallEnv::emit_note`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoteText {
    /// A fixed note.
    Static(&'static str),
    /// `"{prefix}{party}{suffix}"`.
    Party {
        /// Text before the party.
        prefix: &'static str,
        /// The party the note concerns.
        party: PartyId,
        /// Text after the party.
        suffix: &'static str,
    },
}

impl fmt::Display for NoteText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoteText::Static(text) => f.write_str(text),
            NoteText::Party { prefix, party, suffix } => write!(f, "{prefix}{party}{suffix}"),
        }
    }
}

impl From<&'static str> for NoteText {
    fn from(text: &'static str) -> Self {
        NoteText::Static(text)
    }
}

/// A single entry in a chain's public event log.
///
/// Every ledger mutation and contract interaction is recorded (under
/// [`TraceMode::Full`]), which is what lets the protocol layer reconstruct
/// lock-up intervals and payoff attributions after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainEvent {
    /// The block height at which the event was recorded.
    pub height: Time,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events recorded on a chain.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A new contract was published.
    ContractPublished {
        /// The new contract's id.
        contract: ContractId,
        /// The publishing party.
        publisher: PartyId,
        /// The contract's type name (for diagnostics).
        type_name: &'static str,
    },
    /// A contract call succeeded.
    CallSucceeded {
        /// The contract that was called.
        contract: ContractId,
        /// The calling party.
        caller: PartyId,
        /// A short description of the call.
        call: CallDesc,
    },
    /// A contract call was rejected.
    CallFailed {
        /// The contract that was called.
        contract: ContractId,
        /// The calling party.
        caller: PartyId,
        /// A short description of the call.
        call: CallDesc,
        /// The rejection, kept structured and rendered only on display.
        error: ContractError,
    },
    /// Value moved between two accounts.
    Transfer {
        /// The debited account.
        from: crate::ledger::AccountRef,
        /// The credited account.
        to: crate::ledger::AccountRef,
        /// The asset transferred.
        asset: AssetId,
        /// The amount transferred.
        amount: Amount,
    },
    /// Value was minted during setup.
    Mint {
        /// The credited account.
        account: crate::ledger::AccountRef,
        /// The asset minted.
        asset: AssetId,
        /// The amount minted.
        amount: Amount,
    },
    /// A free-form note emitted by a contract (for traces and debugging).
    Note {
        /// The contract that emitted the note.
        contract: ContractId,
        /// The note text.
        text: NoteText,
    },
}

impl fmt::Display for ChainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::ContractPublished { contract, publisher, type_name } => {
                write!(f, "[{}] {publisher} published {contract} ({type_name})", self.height)
            }
            EventKind::CallSucceeded { contract, caller, call } => {
                write!(f, "[{}] {caller} -> {contract}: {call} ok", self.height)
            }
            EventKind::CallFailed { contract, caller, call, error } => {
                write!(f, "[{}] {caller} -> {contract}: {call} FAILED ({error})", self.height)
            }
            EventKind::Transfer { from, to, asset, amount } => {
                write!(f, "[{}] transfer {amount} of {asset}: {from} -> {to}", self.height)
            }
            EventKind::Mint { account, asset, amount } => {
                write!(f, "[{}] mint {amount} of {asset} to {account}", self.height)
            }
            EventKind::Note { contract, text } => {
                write!(f, "[{}] {contract}: {text}", self.height)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::AccountRef;

    #[test]
    fn events_display() {
        let e = ChainEvent {
            height: Time(3),
            kind: EventKind::Transfer {
                from: AccountRef::Party(PartyId(0)),
                to: AccountRef::Contract(ContractId(1)),
                asset: AssetId(0),
                amount: Amount::new(10),
            },
        };
        assert_eq!(e.to_string(), "[t=3] transfer 10 of asset#0: P0 -> contract#1");

        let e = ChainEvent {
            height: Time(0),
            kind: EventKind::ContractPublished {
                contract: ContractId(0),
                publisher: PartyId(1),
                type_name: "Htlc",
            },
        };
        assert!(e.to_string().contains("published"));

        let e = ChainEvent {
            height: Time(1),
            kind: EventKind::CallFailed {
                contract: ContractId(0),
                caller: PartyId(1),
                call: CallDesc::Static("Redeem"),
                error: ContractError::TooLate { deadline: Time(0), now: Time(1) },
            },
        };
        assert!(e.to_string().contains("FAILED"));
        assert!(e.to_string().contains("deadline t=0 has passed"));
    }

    #[test]
    fn call_desc_renders_every_shape() {
        let cases: Vec<(CallDesc, &str)> = vec![
            (CallDesc::Static("settle"), "settle"),
            (
                CallDesc::Party { prefix: "Alice declares ", party: PartyId(1), suffix: " here" },
                "Alice declares P1 here",
            ),
            (
                CallDesc::Arc {
                    party: PartyId(0),
                    verb: "deposits escrow premium on",
                    from: PartyId(0),
                    to: PartyId(1),
                },
                "P0 deposits escrow premium on (P0, P1)",
            ),
            (
                CallDesc::SubjectArc {
                    party: PartyId(2),
                    verb: "passes redemption premium for",
                    subject: PartyId(0),
                    link: "to",
                    from: PartyId(1),
                    to: PartyId(2),
                },
                "P2 passes redemption premium for P0 to (P1, P2)",
            ),
            (
                CallDesc::Amount { party: PartyId(1), verb: "bids", amount: Amount::new(60) },
                "P1 bids 60",
            ),
            (
                CallDesc::Parties {
                    party: PartyId(1),
                    mid: " forwards ",
                    other: PartyId(2),
                    suffix: "'s hashkey to the ticket chain",
                },
                "P1 forwards P2's hashkey to the ticket chain",
            ),
            (
                CallDesc::Publish { type_name: "Pot", label: Label::Static("pot") },
                "publish Pot as \"pot\"",
            ),
        ];
        for (desc, expected) in cases {
            assert_eq!(desc.to_string(), expected);
        }
    }

    #[test]
    fn note_text_renders() {
        let n = NoteText::Party { prefix: "hashkey for ", party: PartyId(3), suffix: " presented" };
        assert_eq!(n.to_string(), "hashkey for P3 presented");
        assert_eq!(NoteText::from("done").to_string(), "done");
    }

    #[test]
    fn trace_mode_default_is_full() {
        assert!(TraceMode::default().is_full());
        assert!(!TraceMode::Off.is_full());
    }
}
