//! Per-contract-call gas metering.
//!
//! Every contract call burns *gas*: a deterministic count of the work the
//! chain performed on the caller's behalf. The [`CallEnv`](crate::CallEnv)
//! charges a base cost when a contract's `handle` is dispatched and a fixed
//! cost per executed ledger operation (plus a small cost per emitted note),
//! so gas is a pure function of the call's semantics — it does **not**
//! depend on the world's [`TraceMode`](crate::TraceMode), on thread counts
//! or on wall-clock time. Failed calls still burn the gas they consumed
//! before failing, mirroring real chains.
//!
//! Gas is *metered*, never deducted from ledger balances: the simulator's
//! conservation invariants are untouched. Workload drivers fold metered gas
//! into party payoffs as fees at a configured gas price (see
//! `marketsim::market::metering`), which is how settled-deals/sec and
//! fee-adjusted payoff conservation are both measured at market scale.

use serde::{Deserialize, Serialize};

use crate::ids::PartyId;

/// The cost table for gas charges.
///
/// The defaults are deliberately round numbers on an arbitrary scale; what
/// matters is that they are fixed, so gas totals are comparable across runs
/// and machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Charged once per contract-call dispatch (the "contract step").
    pub call_base: u64,
    /// Charged per executed ledger transfer (debit, payout, contract-to-
    /// contract move). Zero-amount no-op transfers are free.
    pub ledger_op: u64,
    /// Charged per emitted contract note, whether or not the trace mode
    /// records it (gas must not depend on tracing).
    pub note: u64,
    /// Charged to the publisher when a contract is published on a chain.
    pub publish: u64,
}

impl GasSchedule {
    /// The default cost table.
    pub const DEFAULT: GasSchedule =
        GasSchedule { call_base: 100, ledger_op: 25, note: 5, publish: 200 };
}

impl Default for GasSchedule {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Per-chain gas accounting: total burned, per-party attribution and the
/// cost of the most recent call.
///
/// The meter is part of a chain's observable state: it is captured by
/// [`World::snapshot`](crate::World::snapshot), restored by
/// [`World::restore`](crate::World::restore) and cleared when a chain shell
/// is recycled, so deviation-tree sweeps that resume runs mid-way see
/// exactly the gas a full replay would have metered.
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct GasMeter {
    total: u64,
    /// `by_party[p]` is the gas burned by `PartyId(p)` on this chain. Dense,
    /// like the ledger: party ids are assigned sequentially.
    by_party: Vec<u64>,
    last_call: u64,
}

impl GasMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `gas` burned by `party` (one call or publish).
    pub(crate) fn charge(&mut self, party: PartyId, gas: u64) {
        self.total += gas;
        let idx = party.0 as usize;
        if idx >= self.by_party.len() {
            self.by_party.resize(idx + 1, 0);
        }
        self.by_party[idx] += gas;
        self.last_call = gas;
    }

    /// Total gas burned on this chain since creation (or the last recycle).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Gas burned by `party` on this chain.
    pub fn spent_by(&self, party: PartyId) -> u64 {
        self.by_party.get(party.0 as usize).copied().unwrap_or(0)
    }

    /// The gas burned by the most recent call or publish (0 before any).
    pub fn last_call(&self) -> u64 {
        self.last_call
    }

    /// Iterates over `(party, gas)` pairs with non-zero gas, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (PartyId, u64)> + '_ {
        self.by_party
            .iter()
            .enumerate()
            .filter(|(_, gas)| **gas > 0)
            .map(|(p, gas)| (PartyId(p as u32), *gas))
    }

    /// Forgets all accounting while retaining allocated storage.
    pub(crate) fn clear(&mut self) {
        self.total = 0;
        self.by_party.clear();
        self.last_call = 0;
    }

    /// Restores this meter to the captured state, reusing allocations.
    pub(crate) fn restore_from(&mut self, snap: &GasMeter) {
        self.total = snap.total;
        self.by_party.clone_from(&snap.by_party);
        self.last_call = snap.last_call;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_party() {
        let mut meter = GasMeter::new();
        meter.charge(PartyId(2), 100);
        meter.charge(PartyId(0), 30);
        meter.charge(PartyId(2), 20);
        assert_eq!(meter.total(), 150);
        assert_eq!(meter.spent_by(PartyId(2)), 120);
        assert_eq!(meter.spent_by(PartyId(0)), 30);
        assert_eq!(meter.spent_by(PartyId(7)), 0);
        assert_eq!(meter.last_call(), 20);
        assert_eq!(meter.iter().collect::<Vec<_>>(), vec![(PartyId(0), 30), (PartyId(2), 120)]);
    }

    #[test]
    fn clear_and_restore() {
        let mut meter = GasMeter::new();
        meter.charge(PartyId(1), 40);
        let snap = meter.clone();
        meter.charge(PartyId(1), 10);
        meter.restore_from(&snap);
        assert_eq!(meter.total(), 40);
        assert_eq!(meter.last_call(), 40);
        meter.clear();
        assert_eq!(meter.total(), 0);
        assert_eq!(meter.spent_by(PartyId(1)), 0);
    }

    #[test]
    fn default_schedule_is_fixed() {
        let schedule = GasSchedule::default();
        assert_eq!(schedule, GasSchedule::DEFAULT);
        assert!(schedule.call_base > 0 && schedule.ledger_op > 0);
    }
}
