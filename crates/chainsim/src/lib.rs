//! Deterministic multi-blockchain simulator with Δ-bounded synchrony.
//!
//! The hedged cross-chain protocols of Xue & Herlihy (PODC 2021) are defined
//! over a very small computational model (§3 of the paper):
//!
//! * several independent **blockchains**, each a tamper-proof ledger that
//!   tracks ownership of assets by parties and contracts;
//! * **smart contracts** that are passive, public, deterministic and can only
//!   read or write the ledger of the chain they reside on;
//! * a **synchronous execution model**: a change made to one chain is visible
//!   to every other party within a known bound Δ, measured in block heights.
//!
//! This crate implements that model. A [`World`] owns a set of
//! [`Blockchain`]s that advance in lock-step; contracts implement the
//! [`Contract`] trait and are invoked through typed messages; parties are
//! [`Actor`]s driven by the [`Scheduler`], which realises the synchronous
//! round structure: in each round every actor observes the world as of the
//! end of the previous round (propagation ≤ Δ), emits actions, and then all
//! chains advance by Δ blocks.
//!
//! # Examples
//!
//! ```
//! use chainsim::{AccountRef, Amount, AssetId, PartyId, World};
//!
//! let mut world = World::new(1);
//! let apricot = world.add_chain("apricot");
//! let tokens = AssetId(1);
//! let alice = PartyId(0);
//!
//! world
//!     .chain_mut(apricot)
//!     .ledger_mut()
//!     .mint(AccountRef::Party(alice), tokens, Amount::new(100));
//! assert_eq!(
//!     world.chain(apricot).ledger().balance(AccountRef::Party(alice), tokens),
//!     Amount::new(100)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod amount;
mod caches;
mod chain;
mod contract;
mod error;
mod events;
mod gas;
mod ids;
mod ledger;
mod sim;
mod spec;
mod time;
mod world;

pub use amount::{Amount, Payoff};
pub use caches::SimCaches;
pub use chain::{Blockchain, FinalityParams, ReorgEvent, ReorgPolicy, ReorgStats};
pub use contract::{CallEnv, Contract, ContractMessage};
pub use error::{ChainError, ContractError, LedgerError};
pub use events::{CallDesc, ChainEvent, EventKind, NoteText, TraceMode};
pub use gas::{GasMeter, GasSchedule};
pub use ids::{AssetId, ChainId, ContractAddr, ContractId, Label, PartyId};
#[cfg(any(test, feature = "map-ledger-oracle"))]
pub use ledger::oracle::MapLedger;
pub use ledger::{AccountRef, Ledger};
pub use sim::{
    run_round, run_round_with, Action, ActionOutcome, Actor, RoundBuffers, RunReport, Scheduler,
    StepTrace,
};
pub use spec::{Disposition, FundSpec, StateMachine, StateSpec, TimeWindow, TransitionSpec};
pub use time::{StepSchedule, Time};
pub use world::{World, WorldSnapshot};

// Thread-safety contract: simulated worlds, actions and run reports cross
// worker threads in the parallel model-checking engine, so these types must
// stay `Send`. `Contract` and `ContractMessage` carry `Send` as supertraits
// to make this hold for the boxed trait objects inside `World` and
// `Action`; this block turns an accidental regression (say, an `Rc` in a
// contract field) into a compile error here instead of a cryptic one in a
// downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
    assert_send::<Action>();
    assert_send::<RunReport>();
    assert_send::<ActionOutcome>();
    assert_send::<ChainError>();
    assert_send::<Box<dyn Contract>>();
    assert_send::<Box<dyn ContractMessage>>();
};
