//! Error types for ledgers, contracts and chains.

use thiserror::Error;

use crate::amount::Amount;
use crate::ids::{AssetId, ChainId, ContractId, PartyId};
use crate::ledger::AccountRef;
use crate::time::Time;

/// Errors raised by [`crate::Ledger`] operations.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum LedgerError {
    /// The source account does not hold enough of the asset.
    #[error("insufficient balance: {account:?} holds {held} of {asset}, needs {needed}")]
    InsufficientBalance {
        /// The account being debited.
        account: AccountRef,
        /// The asset being transferred.
        asset: AssetId,
        /// The balance currently held.
        held: Amount,
        /// The amount that was requested.
        needed: Amount,
    },

    /// A transfer of zero value was requested where it is not meaningful.
    #[error("zero-value transfer")]
    ZeroTransfer,
}

/// Errors raised by contract execution.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum ContractError {
    /// The message type was not understood by the contract.
    #[error("unsupported message for contract")]
    UnsupportedMessage,

    /// The caller is not authorised to perform this call.
    #[error("caller {caller} is not authorised for this call")]
    Unauthorised {
        /// The offending caller.
        caller: PartyId,
    },

    /// The call arrived after the relevant deadline.
    #[error("deadline {deadline} has passed (now {now})")]
    TooLate {
        /// The deadline that was missed.
        deadline: Time,
        /// The current time.
        now: Time,
    },

    /// The call arrived before it is allowed.
    #[error("call not allowed before {not_before} (now {now})")]
    TooEarly {
        /// The earliest allowed time.
        not_before: Time,
        /// The current time.
        now: Time,
    },

    /// The contract is not in a state that permits this call.
    #[error("invalid contract state: {reason}")]
    InvalidState {
        /// Human-readable explanation.
        reason: String,
    },

    /// A revealed secret did not match the contract's hashlock.
    #[error("secret does not match hashlock")]
    HashlockMismatch,

    /// A hashkey path or signature chain failed verification.
    #[error("hashkey rejected: {reason}")]
    HashkeyRejected {
        /// Human-readable explanation.
        reason: String,
    },

    /// An underlying ledger operation failed.
    #[error("ledger error: {0}")]
    Ledger(#[from] LedgerError),
}

impl ContractError {
    /// Convenience constructor for [`ContractError::InvalidState`].
    pub fn invalid_state(reason: impl Into<String>) -> Self {
        ContractError::InvalidState { reason: reason.into() }
    }

    /// Convenience constructor for [`ContractError::HashkeyRejected`].
    pub fn hashkey_rejected(reason: impl Into<String>) -> Self {
        ContractError::HashkeyRejected { reason: reason.into() }
    }
}

/// Errors raised by chain-level operations.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum ChainError {
    /// The referenced contract does not exist on this chain.
    #[error("no contract {contract} on {chain}")]
    NoSuchContract {
        /// The chain that was addressed.
        chain: ChainId,
        /// The missing contract id.
        contract: ContractId,
    },

    /// The referenced chain does not exist in the world.
    #[error("no chain {chain}")]
    NoSuchChain {
        /// The missing chain id.
        chain: ChainId,
    },

    /// Contract execution failed.
    #[error("contract {contract} rejected call: {source}")]
    ContractFailed {
        /// The contract that rejected the call.
        contract: ContractId,
        /// The underlying contract error.
        source: ContractError,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LedgerError::InsufficientBalance {
            account: AccountRef::Party(PartyId(1)),
            asset: AssetId(2),
            held: Amount::new(1),
            needed: Amount::new(5),
        };
        assert!(e.to_string().contains("insufficient balance"));
        let c = ContractError::TooLate { deadline: Time(4), now: Time(9) };
        assert!(c.to_string().contains("deadline t=4 has passed"));
        let ch = ChainError::NoSuchContract { chain: ChainId(0), contract: ContractId(3) };
        assert!(ch.to_string().contains("no contract"));
    }

    #[test]
    fn ledger_error_converts_to_contract_error() {
        let err: ContractError = LedgerError::ZeroTransfer.into();
        assert!(matches!(err, ContractError::Ledger(LedgerError::ZeroTransfer)));
    }

    #[test]
    fn constructors() {
        assert!(matches!(ContractError::invalid_state("nope"), ContractError::InvalidState { .. }));
        assert!(matches!(
            ContractError::hashkey_rejected("bad path"),
            ContractError::HashkeyRejected { .. }
        ));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LedgerError>();
        assert_send_sync::<ContractError>();
        assert_send_sync::<ChainError>();
    }
}
