//! The multi-chain world: chains, assets, labels and the global clock.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use cryptosim::KeyDirectory;

use crate::amount::Amount;
use crate::caches::SimCaches;
use crate::chain::{Blockchain, ChainSnapshot, FinalityParams, ReorgEvent};
use crate::contract::ContractMessage;
use crate::error::ChainError;
use crate::events::{CallDesc, TraceMode};
#[cfg(test)]
use crate::ids::ContractId;
use crate::ids::{AssetId, ChainId, ContractAddr, Label, PartyId};
use crate::time::{StepSchedule, Time};

/// A collection of blockchains that advance in lock-step.
///
/// The world also carries cross-cutting directories that model standard
/// assumptions of the paper:
///
/// * the [`KeyDirectory`] (every party's public key is known to all);
/// * an asset registry (named token classes);
/// * a contract label registry. When a party publishes a contract as a
///   protocol step, it registers the contract under an agreed [`Label`] (for
///   example `"swap/apricot-escrow"`); counterparties discover the contract
///   by looking the label up, which models "within Δ, Bob sees Alice's
///   escrow contract on the apricot blockchain".
///
/// Chains are stored densely, indexed by their sequentially assigned
/// [`ChainId`]s, and a world can be [`reset`](World::reset) between runs:
/// retired chains are kept as spare shells whose ledgers, contract stores
/// and event logs retain their allocations, which is what makes per-worker
/// world pooling in sweep engines nearly allocation-free.
///
/// # Examples
///
/// ```
/// use chainsim::{Amount, PartyId, World};
///
/// let mut world = World::new(1);
/// let apricot = world.add_chain("apricot");
/// let banana = world.add_chain("banana");
/// let apricot_token = world.register_asset("apricot-token");
/// world.chain_mut(apricot).mint(PartyId(0), apricot_token, Amount::new(100));
/// assert_ne!(apricot, banana);
/// assert_eq!(world.now().height(), 0);
/// ```
pub struct World {
    /// `chains[i]` is the chain with `ChainId(i)`.
    chains: Vec<Blockchain>,
    /// Retired chain shells kept for reuse across [`World::reset`] cycles.
    spare: Vec<Blockchain>,
    directory: KeyDirectory,
    labels: BTreeMap<Label, ContractAddr>,
    /// `asset_names[i]` is the registered name of `AssetId(i)`.
    asset_names: Vec<String>,
    delta_blocks: u64,
    started_at: Time,
    trace: TraceMode,
    /// World rounds completed so far (one per [`World::advance_delta`]);
    /// the clock that [`ReorgEvent::at_round`] schedules against.
    rounds_elapsed: u64,
    /// Pending scheduled reorgs, fired (and removed) by
    /// [`World::advance_delta`] at the end of their round.
    pending_reorgs: Vec<ReorgEvent>,
    /// Per-world memo store (see [`SimCaches`]): survives [`World::reset`]
    /// and [`World::restore`], and is deliberately excluded from snapshots.
    caches: SimCaches,
    /// Version of the three registries (labels, assets, key directory),
    /// drawn from a process-global counter on every mutation. Two equal
    /// versions imply identical registry contents, which lets
    /// [`World::restore`] skip re-cloning registries when a world restores
    /// a snapshot of its own current registry state — the common case in
    /// deviation-tree sweeps, where every checkpoint of a run shares the
    /// registries built at setup.
    registry_version: u64,
}

/// Process-global source of registry versions; see
/// [`World::registry_version`]. Starts at 1 so version 0 never aliases.
static REGISTRY_VERSIONS: AtomicU64 = AtomicU64::new(1);

fn next_registry_version() -> u64 {
    REGISTRY_VERSIONS.fetch_add(1, Ordering::Relaxed)
}

impl World {
    /// Creates an empty world whose synchrony bound Δ is `delta_blocks`,
    /// with full event tracing.
    ///
    /// # Panics
    ///
    /// Panics if `delta_blocks` is zero.
    pub fn new(delta_blocks: u64) -> Self {
        Self::with_trace(delta_blocks, TraceMode::Full)
    }

    /// Creates an empty world with an explicit [`TraceMode`].
    ///
    /// # Panics
    ///
    /// Panics if `delta_blocks` is zero.
    pub fn with_trace(delta_blocks: u64, trace: TraceMode) -> Self {
        assert!(delta_blocks > 0, "Δ must be at least one block");
        World {
            chains: Vec::new(),
            spare: Vec::new(),
            directory: KeyDirectory::new(),
            labels: BTreeMap::new(),
            asset_names: Vec::new(),
            delta_blocks,
            started_at: Time::ZERO,
            trace,
            rounds_elapsed: 0,
            pending_reorgs: Vec::new(),
            caches: SimCaches::new(),
            registry_version: next_registry_version(),
        }
    }

    /// Clears every chain, label, asset and key registration while keeping
    /// allocated storage, so the world can host a fresh run.
    ///
    /// Retired chains become spare shells that the next
    /// [`add_chain`](World::add_chain) calls recycle — their ledgers,
    /// contract stores and event logs keep their capacity. The trace mode is
    /// preserved.
    ///
    /// # Panics
    ///
    /// Panics if `delta_blocks` is zero.
    pub fn reset(&mut self, delta_blocks: u64) {
        assert!(delta_blocks > 0, "Δ must be at least one block");
        self.spare.append(&mut self.chains);
        self.directory.clear();
        self.labels.clear();
        self.asset_names.clear();
        self.registry_version = next_registry_version();
        self.delta_blocks = delta_blocks;
        self.started_at = Time::ZERO;
        self.rounds_elapsed = 0;
        self.pending_reorgs.clear();
    }

    /// The trace mode of this world.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace
    }

    /// The synchrony bound Δ in blocks.
    pub fn delta_blocks(&self) -> u64 {
        self.delta_blocks
    }

    /// Adds a new chain with the given name and a fresh native currency.
    pub fn add_chain(&mut self, name: impl AsRef<str>) -> ChainId {
        let name = name.as_ref();
        let id = ChainId(self.chains.len() as u32);
        let native = {
            let mut native_name = String::with_capacity(name.len() + 7);
            native_name.push_str(name);
            native_name.push_str("-native");
            self.register_asset(native_name)
        };
        let mut chain = match self.spare.pop() {
            Some(mut shell) => {
                shell.recycle(id, name, native, self.trace);
                shell
            }
            None => Blockchain::new(id, name, native, self.trace),
        };
        // Keep new chains height-aligned with existing ones.
        chain.advance_blocks(self.now().height());
        self.chains.push(chain);
        id
    }

    /// Registers a new named asset class and returns its id.
    pub fn register_asset(&mut self, name: impl Into<String>) -> AssetId {
        let id = AssetId(self.asset_names.len() as u32);
        self.asset_names.push(name.into());
        self.registry_version = next_registry_version();
        id
    }

    /// Returns the registered name of an asset, if any.
    pub fn asset_name(&self, asset: AssetId) -> Option<&str> {
        self.asset_names.get(asset.0 as usize).map(String::as_str)
    }

    /// Returns the chain with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if the chain does not exist; chains are created by the test or
    /// protocol setup code that also holds their ids.
    pub fn chain(&self, id: ChainId) -> &Blockchain {
        self.chains.get(id.0 as usize).unwrap_or_else(|| panic!("no such chain {id}"))
    }

    /// Mutable access to the chain with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if the chain does not exist.
    pub fn chain_mut(&mut self, id: ChainId) -> &mut Blockchain {
        self.chains.get_mut(id.0 as usize).unwrap_or_else(|| panic!("no such chain {id}"))
    }

    /// Fallible chain lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchChain`] if the chain does not exist.
    pub fn try_chain(&self, id: ChainId) -> Result<&Blockchain, ChainError> {
        self.chains.get(id.0 as usize).ok_or(ChainError::NoSuchChain { chain: id })
    }

    /// Iterates over all chains.
    pub fn chains(&self) -> impl Iterator<Item = &Blockchain> {
        self.chains.iter()
    }

    /// The number of chains in the world.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Read access to the public-key directory.
    pub fn directory(&self) -> &KeyDirectory {
        &self.directory
    }

    /// Mutable access to the public-key directory (used during setup).
    pub fn directory_mut(&mut self) -> &mut KeyDirectory {
        self.registry_version = next_registry_version();
        &mut self.directory
    }

    /// The current global time (all chains share the same height).
    pub fn now(&self) -> Time {
        self.chains.first().map(Blockchain::height).unwrap_or(Time::ZERO)
    }

    /// A [`StepSchedule`] anchored at the protocol start time.
    pub fn schedule(&self) -> StepSchedule {
        StepSchedule::new(self.started_at, self.delta_blocks)
    }

    /// Marks the current time as the protocol start for timeout computation.
    pub fn mark_protocol_start(&mut self) {
        self.started_at = self.now();
    }

    /// Ends the current round: fires any reorg scheduled for it, then
    /// advances every chain by its per-round block count — the world Δ, or
    /// the chain's own [`FinalityParams::delta`] when one is set (the
    /// heterogeneous-Δ case, where a fast chain mines more blocks per round
    /// than a slow one).
    pub fn advance_delta(&mut self) {
        let round = self.rounds_elapsed;
        if !self.pending_reorgs.is_empty() {
            let mut i = 0;
            while i < self.pending_reorgs.len() {
                if self.pending_reorgs[i].at_round == round {
                    // `remove` keeps the schedule in insertion order, so
                    // same-round events always fire in the order scheduled.
                    let event = self.pending_reorgs.remove(i);
                    let World { chains, directory, caches, .. } = self;
                    if let Some(chain) = chains.get_mut(event.chain.0 as usize) {
                        chain.reorg(event.depth, event.policy, directory, caches);
                    }
                } else {
                    i += 1;
                }
            }
        }
        for chain in &mut self.chains {
            let per_chain = chain.finality().delta;
            let blocks = if per_chain == 0 { self.delta_blocks } else { per_chain };
            chain.end_round(blocks);
        }
        self.rounds_elapsed += 1;
    }

    /// Advances every chain by an arbitrary number of blocks.
    ///
    /// This is a raw clock jump used by tests and deadline-alignment code:
    /// it does not close a round, so scheduled reorgs do not fire and
    /// speculative windows do not roll forward.
    pub fn advance_blocks(&mut self, blocks: u64) {
        for chain in &mut self.chains {
            chain.advance_blocks(blocks);
        }
    }

    /// World rounds completed so far (one per [`World::advance_delta`]).
    pub fn rounds_elapsed(&self) -> u64 {
        self.rounds_elapsed
    }

    /// Sets a chain's finality/synchrony parameters; see [`FinalityParams`].
    ///
    /// # Panics
    ///
    /// Panics if the chain does not exist.
    pub fn set_finality(&mut self, chain: ChainId, params: FinalityParams) {
        self.chain_mut(chain).set_finality(params);
    }

    /// Schedules a deterministic reorg; see [`ReorgEvent`]. Events whose
    /// round already passed, or whose chain has no speculative window, are
    /// silently inert.
    pub fn schedule_reorg(&mut self, event: ReorgEvent) {
        self.pending_reorgs.push(event);
    }

    /// Publishes `contract` on `chain` under `label` and returns its address.
    ///
    /// # Panics
    ///
    /// Panics if the chain does not exist or the label is already taken
    /// (labels are agreed protocol constants, so a collision is a bug).
    pub fn publish_labeled(
        &mut self,
        chain: ChainId,
        publisher: PartyId,
        label: impl Into<Label>,
        contract: Box<dyn crate::Contract>,
    ) -> ContractAddr {
        let label = label.into();
        assert!(!self.labels.contains_key(&label), "contract label \"{label}\" already registered");
        let id = self.chain_mut(chain).publish(publisher, contract);
        let addr = ContractAddr::new(chain, id);
        self.labels.insert(label, addr);
        self.registry_version = next_registry_version();
        addr
    }

    /// Looks up a contract address by its agreed label.
    pub fn lookup(&self, label: impl Into<Label>) -> Option<ContractAddr> {
        self.labels.get(&label.into()).copied()
    }

    /// Calls the contract at `addr` with a typed message.
    ///
    /// # Errors
    ///
    /// Returns chain and contract errors; see [`Blockchain::call`].
    pub fn call(
        &mut self,
        caller: PartyId,
        addr: ContractAddr,
        msg: &dyn ContractMessage,
        call_description: impl Into<CallDesc>,
    ) -> Result<(), ChainError> {
        let World { chains, directory, caches, .. } = self;
        let chain = chains
            .get_mut(addr.chain.0 as usize)
            .ok_or(ChainError::NoSuchChain { chain: addr.chain })?;
        chain.call(caller, addr.contract, msg, call_description, directory, caches)
    }

    /// The world's memoisation store (see [`SimCaches`]).
    pub fn caches(&mut self) -> &mut SimCaches {
        &mut self.caches
    }

    /// Captures the complete observable state of the world — every live
    /// chain's ledger, contract store, event log and clock, plus the label,
    /// asset and key registries — as a [`WorldSnapshot`].
    ///
    /// Retired spare shells (chains recycled by [`World::reset`]) hold no
    /// balances and are **not** captured: a snapshot's size is proportional
    /// to the live state only, no matter how many runs the world has pooled.
    /// The [`SimCaches`] memo store is also excluded — it memoises pure
    /// computations and is shared across runs by design.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a contract call (a contract slot is
    /// transiently empty while its contract executes).
    pub fn snapshot(&self) -> WorldSnapshot {
        WorldSnapshot {
            chains: self.chains.iter().map(Blockchain::capture).collect(),
            directory: self.directory.clone(),
            labels: self.labels.clone(),
            asset_names: self.asset_names.clone(),
            delta_blocks: self.delta_blocks,
            started_at: self.started_at,
            trace: self.trace,
            rounds_elapsed: self.rounds_elapsed,
            pending_reorgs: self.pending_reorgs.clone(),
            registry_version: self.registry_version,
        }
    }

    /// Restores the world to a previously captured [`WorldSnapshot`].
    ///
    /// After the call the world's observable state (chains, ledgers,
    /// contracts, events, registries, clock, trace mode) is identical to the
    /// state at [`World::snapshot`] time; a run resumed from the restored
    /// world is indistinguishable from one that replayed every step since.
    /// Restoring reuses the world's existing chain shells and buffer
    /// allocations where possible (surplus live chains are retired to the
    /// spare pool, missing ones are recycled from it), so restoring in a
    /// loop — the sweep engines' deviation-tree pattern — allocates little
    /// beyond fresh contract boxes. The same snapshot can be restored any
    /// number of times, into any world.
    pub fn restore(&mut self, snap: &WorldSnapshot) {
        // Shrink or grow the live chain vector to match, recycling shells.
        while self.chains.len() > snap.chains.len() {
            let retired = self.chains.pop().expect("len checked");
            self.spare.push(retired);
        }
        while self.chains.len() < snap.chains.len() {
            let shell = self
                .spare
                .pop()
                .unwrap_or_else(|| Blockchain::new(ChainId(0), "", AssetId(0), snap.trace));
            self.chains.push(shell);
        }
        for (chain, captured) in self.chains.iter_mut().zip(&snap.chains) {
            chain.restore_from(captured, snap.trace);
        }
        // Registries only need re-cloning when the world's current ones
        // differ from the snapshot's (equal versions imply equal contents;
        // versions are process-globally unique per mutation).
        if self.registry_version != snap.registry_version {
            self.directory.clone_from(&snap.directory);
            self.labels.clone_from(&snap.labels);
            self.asset_names.clone_from(&snap.asset_names);
            self.registry_version = snap.registry_version;
        }
        self.delta_blocks = snap.delta_blocks;
        self.started_at = snap.started_at;
        self.trace = snap.trace;
        self.rounds_elapsed = snap.rounds_elapsed;
        self.pending_reorgs.clone_from(&snap.pending_reorgs);
    }

    /// Total balance of `party` in `asset` summed over every chain.
    pub fn party_balance(&self, party: PartyId, asset: AssetId) -> Amount {
        self.chains.iter().map(|chain| chain.balance(crate::AccountRef::Party(party), asset)).sum()
    }
}

/// A captured [`World`] state; see [`World::snapshot`].
///
/// Snapshots are plain values: they borrow nothing from the world they came
/// from, can be kept in per-worker caches, and can be restored repeatedly
/// (each [`World::restore`] produces the identical state). Sweep engines use
/// them to execute a shared compliant prefix once and fan many deviation
/// scenarios out from the same mid-run state.
pub struct WorldSnapshot {
    chains: Vec<ChainSnapshot>,
    directory: KeyDirectory,
    labels: BTreeMap<Label, ContractAddr>,
    asset_names: Vec<String>,
    delta_blocks: u64,
    started_at: Time,
    trace: TraceMode,
    rounds_elapsed: u64,
    pending_reorgs: Vec<ReorgEvent>,
    registry_version: u64,
}

impl WorldSnapshot {
    /// The number of live chains captured in this snapshot.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }
}

impl fmt::Debug for WorldSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("chains", &self.chains.len())
            .field("labels", &self.labels.len())
            .field("delta_blocks", &self.delta_blocks)
            .field("trace", &self.trace)
            .finish()
    }
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("chains", &self.chains.len())
            .field("now", &self.now())
            .field("delta_blocks", &self.delta_blocks)
            .field("labels", &self.labels.len())
            .field("trace", &self.trace)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{CallEnv, Contract};
    use crate::error::ContractError;
    use std::any::Any;

    #[derive(Clone, Debug, Default)]
    struct Noop;

    impl Contract for Noop {
        fn type_name(&self) -> &'static str {
            "Noop"
        }
        fn clone_box(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }
        fn handle(&mut self, _: &mut CallEnv<'_>, _: &dyn Any) -> Result<(), ContractError> {
            Ok(())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn chains_advance_in_lockstep() {
        let mut world = World::new(3);
        let a = world.add_chain("a");
        let b = world.add_chain("b");
        world.advance_delta();
        world.advance_delta();
        assert_eq!(world.chain(a).height(), Time(6));
        assert_eq!(world.chain(b).height(), Time(6));
        assert_eq!(world.now(), Time(6));
    }

    #[test]
    fn late_added_chain_is_height_aligned() {
        let mut world = World::new(2);
        let _a = world.add_chain("a");
        world.advance_delta();
        let b = world.add_chain("b");
        assert_eq!(world.chain(b).height(), Time(2));
    }

    #[test]
    fn asset_registry() {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        let token = world.register_asset("apricot-token");
        assert_eq!(world.asset_name(token), Some("apricot-token"));
        assert_eq!(world.asset_name(world.chain(chain).native_asset()), Some("apricot-native"));
        assert_eq!(world.asset_name(AssetId(999)), None);
    }

    #[test]
    fn labels_resolve_to_published_contracts() {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        let addr = world.publish_labeled(chain, PartyId(0), "swap/escrow", Box::new(Noop));
        assert_eq!(world.lookup("swap/escrow"), Some(addr));
        assert_eq!(world.lookup("missing"), None);
        world.call(PartyId(1), addr, &(), "noop").unwrap();
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_labels_panic() {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        world.publish_labeled(chain, PartyId(0), "dup", Box::new(Noop));
        world.publish_labeled(chain, PartyId(0), "dup", Box::new(Noop));
    }

    #[test]
    fn call_on_missing_chain_errors() {
        let mut world = World::new(1);
        let err = world
            .call(PartyId(0), ContractAddr::new(ChainId(7), ContractId(0)), &(), "noop")
            .unwrap_err();
        assert!(matches!(err, ChainError::NoSuchChain { .. }));
        assert!(world.try_chain(ChainId(7)).is_err());
    }

    #[test]
    fn party_balance_sums_across_chains() {
        let mut world = World::new(1);
        let a = world.add_chain("a");
        let b = world.add_chain("b");
        let coin = world.register_asset("coin");
        world.chain_mut(a).mint(PartyId(0), coin, Amount::new(3));
        world.chain_mut(b).mint(PartyId(0), coin, Amount::new(4));
        assert_eq!(world.party_balance(PartyId(0), coin), Amount::new(7));
    }

    #[test]
    fn schedule_tracks_protocol_start() {
        let mut world = World::new(5);
        let _ = world.add_chain("a");
        world.advance_delta();
        world.mark_protocol_start();
        assert_eq!(world.schedule().start(), Time(5));
        assert_eq!(world.schedule().deadline(2), Time(15));
    }

    #[test]
    #[should_panic(expected = "no such chain")]
    fn chain_accessor_panics_on_missing() {
        let world = World::new(1);
        let _ = world.chain(ChainId(0));
    }

    #[test]
    fn debug_and_counts() {
        let mut world = World::new(1);
        world.add_chain("a");
        assert_eq!(world.chain_count(), 1);
        assert_eq!(world.chains().count(), 1);
        assert!(format!("{world:?}").contains("World"));
        assert!(world.directory().is_empty());
    }

    #[test]
    fn reset_recycles_chains_and_clears_registries() {
        let mut world = World::new(2);
        let a = world.add_chain("a");
        let coin = world.register_asset("coin");
        world.chain_mut(a).mint(PartyId(0), coin, Amount::new(5));
        world.publish_labeled(a, PartyId(0), "escrow", Box::new(Noop));
        world.advance_delta();
        world.mark_protocol_start();

        world.reset(3);
        assert_eq!(world.chain_count(), 0);
        assert_eq!(world.now(), Time::ZERO);
        assert_eq!(world.delta_blocks(), 3);
        assert_eq!(world.lookup("escrow"), None);
        assert_eq!(world.schedule().start(), Time::ZERO);
        assert!(world.directory().is_empty());

        // Replaying the same setup yields the same ids and a clean slate.
        let a2 = world.add_chain("a");
        assert_eq!(a2, a);
        let coin2 = world.register_asset("coin");
        assert_eq!(coin2, coin);
        assert_eq!(world.party_balance(PartyId(0), coin2), Amount::ZERO);
        assert_eq!(world.asset_name(coin2), Some("coin"));
        // The recycled chain starts its contract ids over.
        let addr = world.publish_labeled(a2, PartyId(0), "escrow", Box::new(Noop));
        assert_eq!(addr.contract, ContractId(0));
    }

    #[test]
    fn scheduled_reorg_fires_at_its_round_and_drops_calls() {
        use crate::chain::ReorgPolicy;

        #[derive(Clone, Debug, Default)]
        struct Sink;
        impl Contract for Sink {
            fn type_name(&self) -> &'static str {
                "Sink"
            }
            fn clone_box(&self) -> Box<dyn Contract> {
                Box::new(self.clone())
            }
            fn handle(&mut self, env: &mut CallEnv<'_>, _: &dyn Any) -> Result<(), ContractError> {
                env.debit_caller(AssetId(0), Amount::new(1))?;
                Ok(())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }

        let mut world = World::new(1);
        let a = world.add_chain("a");
        world.chain_mut(a).mint(PartyId(0), AssetId(0), Amount::new(5));
        world.set_finality(a, FinalityParams { depth: 2, delta: 0 });
        let addr = world.publish_labeled(a, PartyId(0), "sink", Box::new(Sink));
        world.schedule_reorg(ReorgEvent {
            chain: a,
            at_round: 1,
            depth: 1,
            policy: ReorgPolicy::DropCalls,
        });

        world.advance_delta(); // round 0: nothing fires
        world.call(PartyId(0), addr, &(), "drip").unwrap();
        world.advance_delta(); // round 1: the round's deposit is dropped
        assert_eq!(world.rounds_elapsed(), 2);
        assert_eq!(world.party_balance(PartyId(0), AssetId(0)), Amount::new(5));
        assert_eq!(world.chain(a).reorg_stats().dropped_calls, 1);

        // The event fired exactly once; later rounds are unaffected.
        world.call(PartyId(0), addr, &(), "drip").unwrap();
        world.advance_delta();
        assert_eq!(world.party_balance(PartyId(0), AssetId(0)), Amount::new(4));
    }

    #[test]
    fn heterogeneous_delta_chains_advance_at_their_own_cadence() {
        let mut world = World::new(2);
        let fast = world.add_chain("fast");
        let slow = world.add_chain("slow");
        world.set_finality(fast, FinalityParams { depth: 0, delta: 5 });
        world.advance_delta();
        world.advance_delta();
        assert_eq!(world.chain(fast).height(), Time(10));
        assert_eq!(world.chain(slow).height(), Time(4));
    }

    #[test]
    fn snapshot_restores_the_speculative_split_and_schedule() {
        use crate::chain::ReorgPolicy;
        let mut world = World::new(1);
        let a = world.add_chain("a");
        world.set_finality(a, FinalityParams { depth: 2, delta: 0 });
        let addr = world.publish_labeled(a, PartyId(0), "noop", Box::new(Noop));
        world.schedule_reorg(ReorgEvent {
            chain: a,
            at_round: 3,
            depth: 2,
            policy: ReorgPolicy::Redeliver,
        });
        world.advance_delta();
        world.call(PartyId(0), addr, &(), "noop").unwrap();

        let snap = world.snapshot();
        world.call(PartyId(0), addr, &(), "noop").unwrap();
        world.advance_delta();
        world.advance_delta();
        world.advance_delta(); // fires the scheduled reorg
        assert!(world.chain(a).reorg_stats().reorgs > 0);

        world.restore(&snap);
        // The restored world is back before the reorg, with the schedule and
        // round clock intact: replaying the rounds fires it again.
        assert_eq!(world.rounds_elapsed(), 1);
        assert_eq!(world.chain(a).reorg_stats().reorgs, 0);
        world.advance_delta();
        world.advance_delta();
        world.advance_delta();
        assert_eq!(world.chain(a).reorg_stats().reorgs, 1);
    }

    #[test]
    fn reset_preserves_trace_mode() {
        let mut world = World::with_trace(1, TraceMode::Off);
        world.add_chain("a");
        world.reset(1);
        assert_eq!(world.trace_mode(), TraceMode::Off);
        let a = world.add_chain("a");
        world.chain_mut(a).mint(PartyId(0), AssetId(0), Amount::new(1));
        assert!(world.chain(a).events().is_empty());
    }
}
