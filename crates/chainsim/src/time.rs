//! Simulated time measured in block heights.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, expressed as a block height.
///
/// All chains in a [`crate::World`] advance their heights in lock-step, so a
/// single `Time` value describes the global state of the clock. The paper's
/// synchrony bound Δ is a number of blocks; timeouts such as `3Δ` are
/// computed with [`StepSchedule`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// The protocol start time (height zero).
    pub const ZERO: Time = Time(0);

    /// The far future: later than every deadline a protocol can schedule.
    /// Used as the wake hint of steps that can never again be triggered by
    /// the clock alone.
    pub const MAX: Time = Time(u64::MAX);

    /// Returns the raw block height.
    pub const fn height(self) -> u64 {
        self.0
    }

    /// Returns the time advanced by `blocks`.
    #[must_use]
    pub fn plus(self, blocks: u64) -> Time {
        Time(self.0 + blocks)
    }

    /// Returns whether this time is strictly before `deadline`.
    pub fn is_before(self, deadline: Time) -> bool {
        self < deadline
    }

    /// Returns whether `deadline` has elapsed (this time is ≥ the deadline).
    pub fn has_reached(self, deadline: Time) -> bool {
        self >= deadline
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;

    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl Sub<Time> for Time {
    type Output = u64;

    fn sub(self, rhs: Time) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

/// Converts protocol steps (multiples of Δ) into absolute [`Time`] values.
///
/// The paper expresses every timeout as `k·Δ` after the protocol start; a
/// `StepSchedule` fixes the start time and the value of Δ so those timeouts
/// can be computed uniformly.
///
/// # Examples
///
/// ```
/// use chainsim::{StepSchedule, Time};
///
/// let schedule = StepSchedule::new(Time::ZERO, 12);
/// assert_eq!(schedule.deadline(3), Time(36)); // 3Δ with Δ = 12 blocks
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StepSchedule {
    start: Time,
    delta_blocks: u64,
}

impl StepSchedule {
    /// Creates a schedule starting at `start` with Δ equal to `delta_blocks`.
    ///
    /// # Panics
    ///
    /// Panics if `delta_blocks` is zero.
    pub fn new(start: Time, delta_blocks: u64) -> Self {
        assert!(delta_blocks > 0, "Δ must be at least one block");
        StepSchedule { start, delta_blocks }
    }

    /// The protocol start time.
    pub fn start(&self) -> Time {
        self.start
    }

    /// The synchrony bound Δ in blocks.
    pub fn delta_blocks(&self) -> u64 {
        self.delta_blocks
    }

    /// Returns the absolute deadline `steps · Δ` after the start.
    pub fn deadline(&self, steps: u64) -> Time {
        self.start.plus(steps * self.delta_blocks)
    }

    /// Returns how many whole Δ-steps have elapsed at time `now`.
    pub fn steps_elapsed(&self, now: Time) -> u64 {
        (now - self.start) / self.delta_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_comparisons() {
        let t = Time(5);
        assert!(t.is_before(Time(6)));
        assert!(!t.is_before(Time(5)));
        assert!(t.has_reached(Time(5)));
        assert!(!t.has_reached(Time(6)));
        assert_eq!(t.plus(3), Time(8));
        assert_eq!(t + 2, Time(7));
        assert_eq!(Time(9) - Time(4), 5);
        assert_eq!(Time(4) - Time(9), 0);
        assert_eq!(t.to_string(), "t=5");
    }

    #[test]
    fn schedule_deadlines() {
        let s = StepSchedule::new(Time(10), 4);
        assert_eq!(s.deadline(0), Time(10));
        assert_eq!(s.deadline(3), Time(22));
        assert_eq!(s.steps_elapsed(Time(10)), 0);
        assert_eq!(s.steps_elapsed(Time(21)), 2);
        assert_eq!(s.steps_elapsed(Time(22)), 3);
        assert_eq!(s.start(), Time(10));
        assert_eq!(s.delta_blocks(), 4);
    }

    #[test]
    #[should_panic(expected = "Δ must be at least one block")]
    fn schedule_rejects_zero_delta() {
        let _ = StepSchedule::new(Time::ZERO, 0);
    }
}
