//! Machine-readable contract state specifications for static analysis.
//!
//! A [`StateSpec`] is a contract author's declaration of the contract's
//! custody behaviour as one or more finite [`StateMachine`]s: which states
//! exist, which transitions deposit funds into contract custody, and which
//! transitions *dispose* of them (redeem, refund or forfeit) inside which
//! time windows. Static analyzers (the `staticcheck` crate) consume these
//! specs to prove disposition-completeness — every depositable fund in
//! every reachable state has at least one feasible exit path — without
//! executing a single call.
//!
//! # Contract-author obligations
//!
//! A spec is a *claim about the implementation*, so authors owe the
//! analyzer three things:
//!
//! 1. **Custody fidelity.** Every `debit_caller`/`pay_into_contract` site
//!    in the contract must correspond to a transition that lists the fund
//!    in [`TransitionSpec::deposits`], and every `pay_out` site to a
//!    transition listing it in [`TransitionSpec::releases`]. A guard that
//!    rejects a deposit in some state is modelled by *omitting* the
//!    deposit transition from that state — and conversely, relaxing a
//!    runtime guard without adding the matching spec transition silently
//!    hides a stranding hazard from the analyzer. Keep the spec edit
//!    adjacent to the guard edit (the `canary-bugs` gates in
//!    `contracts::arc_escrow` are the worked example).
//! 2. **Window fidelity.** A transition's [`TimeWindow`] must use the same
//!    bounds the implementation enforces via [`CallEnv::ensure_before`]
//!    (exclusive upper bound) and [`CallEnv::ensure_reached`] (inclusive
//!    lower bound). Data guards (hashlock matches, signature checks,
//!    caller identity) are intentionally *not* modelled: the analyzer
//!    over-approximates reachability, which is sound for stranding
//!    detection.
//! 3. **Completeness of states.** Composite custody situations (two funds
//!    held at once) need composite states; a spec that collapses them can
//!    mask a stranding that only occurs in the combined state.
//!
//! [`CallEnv::ensure_before`]: crate::CallEnv::ensure_before
//! [`CallEnv::ensure_reached`]: crate::CallEnv::ensure_reached

use crate::time::Time;

/// How a disposition transition releases a fund from contract custody.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Disposition {
    /// The fund reaches the counterparty the protocol intends (principal
    /// redeemed by the receiver, winning bid collected, …).
    Redeem,
    /// The fund returns to its depositor.
    Refund,
    /// The fund is paid to the counterparty as compensation (the sore-loser
    /// premium payouts).
    Forfeit,
}

impl Disposition {
    /// Stable lower-case label used in analyzer output.
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Redeem => "redeem",
            Disposition::Refund => "refund",
            Disposition::Forfeit => "forfeit",
        }
    }
}

/// The legal time window of a transition, mirroring the [`CallEnv`] guard
/// semantics: `not_before` is inclusive ([`CallEnv::ensure_reached`]) and
/// `before` is exclusive ([`CallEnv::ensure_before`]).
///
/// [`CallEnv`]: crate::CallEnv
/// [`CallEnv::ensure_reached`]: crate::CallEnv::ensure_reached
/// [`CallEnv::ensure_before`]: crate::CallEnv::ensure_before
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeWindow {
    /// Inclusive lower bound: the transition is rejected strictly before
    /// this height. `None` means "from the beginning of time".
    pub not_before: Option<Time>,
    /// Exclusive upper bound: the transition is rejected from this height
    /// on. `None` means "never expires".
    pub before: Option<Time>,
}

impl TimeWindow {
    /// A window with no bounds: legal at any height.
    pub const ALWAYS: TimeWindow = TimeWindow { not_before: None, before: None };

    /// Legal strictly before `deadline` (an `ensure_before` guard).
    pub fn before(deadline: Time) -> Self {
        TimeWindow { not_before: None, before: Some(deadline) }
    }

    /// Legal from `start` on (an `ensure_reached` guard).
    pub fn from(start: Time) -> Self {
        TimeWindow { not_before: Some(start), before: None }
    }

    /// Legal in `[start, deadline)`.
    pub fn between(start: Time, deadline: Time) -> Self {
        TimeWindow { not_before: Some(start), before: Some(deadline) }
    }

    /// Whether any height satisfies the window at all.
    pub fn is_satisfiable(&self) -> bool {
        match (self.not_before, self.before) {
            (Some(start), Some(deadline)) => start.is_before(deadline),
            _ => true,
        }
    }

    /// The earliest height at which the window is open when entered at
    /// `entry`, or `None` if no such height exists (the window closed
    /// before `entry`, or is unsatisfiable outright).
    pub fn earliest_from(&self, entry: Time) -> Option<Time> {
        let at = match self.not_before {
            Some(start) if entry.is_before(start) => start,
            _ => entry,
        };
        match self.before {
            Some(deadline) if !at.is_before(deadline) => None,
            _ => Some(at),
        }
    }
}

/// A fund (asset or premium) a [`StateMachine`] may take into custody.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FundSpec {
    /// Stable fund name, referenced by [`TransitionSpec::deposits`] and
    /// [`TransitionSpec::releases`] and surfaced in analyzer findings.
    pub name: String,
}

impl FundSpec {
    /// Declares a fund by name.
    pub fn new(name: impl Into<String>) -> Self {
        FundSpec { name: name.into() }
    }
}

/// One transition of a [`StateMachine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionSpec {
    /// Human-readable name (typically the message or guard it models).
    pub name: String,
    /// Source state.
    pub from: String,
    /// Destination state.
    pub to: String,
    /// The window in which the implementation accepts the transition.
    pub window: TimeWindow,
    /// Funds this transition takes into custody.
    pub deposits: Vec<String>,
    /// Funds this transition releases from custody, with how.
    pub releases: Vec<(String, Disposition)>,
}

impl TransitionSpec {
    /// A bare transition with no deposits or releases.
    pub fn new(
        name: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        window: TimeWindow,
    ) -> Self {
        TransitionSpec {
            name: name.into(),
            from: from.into(),
            to: to.into(),
            window,
            deposits: Vec::new(),
            releases: Vec::new(),
        }
    }

    /// Adds a fund this transition deposits into custody.
    #[must_use]
    pub fn deposits(mut self, fund: impl Into<String>) -> Self {
        self.deposits.push(fund.into());
        self
    }

    /// Adds a fund this transition releases from custody.
    #[must_use]
    pub fn releases(mut self, fund: impl Into<String>, how: Disposition) -> Self {
        self.releases.push((fund.into(), how));
        self
    }
}

/// One finite custody machine of a contract.
///
/// Contracts with independent custody concerns (e.g. the per-leader
/// redemption-premium slots of an arc escrow) declare one machine per
/// concern; the analyzer checks each in isolation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateMachine {
    /// Machine name, unique within the contract's spec.
    pub name: String,
    /// All states, in declaration order. Must contain `initial`.
    pub states: Vec<String>,
    /// The state the machine starts in.
    pub initial: String,
    /// Funds the machine may hold.
    pub funds: Vec<FundSpec>,
    /// The transition relation.
    pub transitions: Vec<TransitionSpec>,
}

impl StateMachine {
    /// Creates an empty machine with the given initial state.
    pub fn new(name: impl Into<String>, initial: impl Into<String>) -> Self {
        let initial = initial.into();
        StateMachine {
            name: name.into(),
            states: vec![initial.clone()],
            initial,
            funds: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Declares a state (idempotent).
    #[must_use]
    pub fn state(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.states.contains(&name) {
            self.states.push(name);
        }
        self
    }

    /// Declares a fund.
    #[must_use]
    pub fn fund(mut self, name: impl Into<String>) -> Self {
        self.funds.push(FundSpec::new(name));
        self
    }

    /// Adds a transition, auto-declaring its endpoint states.
    #[must_use]
    pub fn transition(mut self, t: TransitionSpec) -> Self {
        if !self.states.contains(&t.from) {
            self.states.push(t.from.clone());
        }
        if !self.states.contains(&t.to) {
            self.states.push(t.to.clone());
        }
        self.transitions.push(t);
        self
    }
}

/// A contract's full static specification: its custody machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSpec {
    /// The contract type the spec describes (normally
    /// [`Contract::type_name`]).
    ///
    /// [`Contract::type_name`]: crate::Contract::type_name
    pub contract: String,
    /// The custody machines, in a stable order.
    pub machines: Vec<StateMachine>,
}

impl StateSpec {
    /// Creates an empty spec for the named contract.
    pub fn new(contract: impl Into<String>) -> Self {
        StateSpec { contract: contract.into(), machines: Vec::new() }
    }

    /// Adds a machine.
    #[must_use]
    pub fn machine(mut self, machine: StateMachine) -> Self {
        self.machines.push(machine);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_satisfiability_matches_guard_semantics() {
        assert!(TimeWindow::ALWAYS.is_satisfiable());
        assert!(TimeWindow::between(Time(1), Time(2)).is_satisfiable());
        // `not_before` is inclusive and `before` exclusive, so an equal
        // pair admits no height at all.
        assert!(!TimeWindow::between(Time(2), Time(2)).is_satisfiable());
        assert!(!TimeWindow::between(Time(3), Time(2)).is_satisfiable());
    }

    #[test]
    fn earliest_from_respects_both_bounds() {
        let w = TimeWindow::between(Time(5), Time(8));
        assert_eq!(w.earliest_from(Time(0)), Some(Time(5)));
        assert_eq!(w.earliest_from(Time(6)), Some(Time(6)));
        assert_eq!(w.earliest_from(Time(8)), None);
        assert_eq!(TimeWindow::before(Time(3)).earliest_from(Time(3)), None);
        assert_eq!(TimeWindow::from(Time(3)).earliest_from(Time(9)), Some(Time(9)));
    }

    #[test]
    fn builders_auto_declare_states() {
        let m = StateMachine::new("m", "Init").fund("f").transition(
            TransitionSpec::new("Deposit", "Init", "Held", TimeWindow::before(Time(4)))
                .deposits("f"),
        );
        assert_eq!(m.states, vec!["Init".to_string(), "Held".to_string()]);
        assert_eq!(m.transitions[0].deposits, vec!["f".to_string()]);
    }
}
