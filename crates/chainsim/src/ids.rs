//! Identifier newtypes for chains, parties, contracts and assets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a blockchain within a [`crate::World`].
///
/// Chains are created through [`crate::World::add_chain`], which assigns
/// identifiers sequentially.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChainId(pub u32);

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain#{}", self.0)
    }
}

/// Identifies a party (a person, organisation or external program).
///
/// Parties are *active* and *autonomous*: they own assets, publish and call
/// contracts, and may deviate from agreed protocols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PartyId(pub u32);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a contract on a particular chain.
///
/// Contract identifiers are unique *per chain*; a globally unique address is
/// the pair ([`ChainId`], [`ContractId`]) captured by [`ContractAddr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContractId(pub u64);

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract#{}", self.0)
    }
}

/// A globally unique contract address: chain plus per-chain contract id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContractAddr {
    /// The chain the contract resides on.
    pub chain: ChainId,
    /// The contract's identifier on that chain.
    pub contract: ContractId,
}

impl ContractAddr {
    /// Creates a contract address from its parts.
    pub const fn new(chain: ChainId, contract: ContractId) -> Self {
        ContractAddr { chain, contract }
    }
}

impl fmt::Display for ContractAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.chain, self.contract)
    }
}

/// Identifies a fungible asset class (a token or native currency).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AssetId(pub u32);

impl fmt::Display for AssetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asset#{}", self.0)
    }
}

/// A contract discovery label: the agreed name under which a protocol step
/// publishes a contract so counterparties can find it.
///
/// Labels used to be `String`s, which meant every scenario of a sweep
/// re-`format!`ed the same per-arc and per-level names. A `Label` is a small
/// `Copy` value — a static name, optionally parameterised by an arc or an
/// index — rendered only on `Display`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Label {
    /// A fixed label, e.g. `"two-party/apricot-escrow"`.
    Static(&'static str),
    /// `"{ns}-{from}-{to}"` — per-arc labels, e.g. `"deal/arc-0-1"`.
    Arc {
        /// The namespace prefix (without the trailing separator).
        ns: &'static str,
        /// The arc's sender vertex.
        from: u32,
        /// The arc's receiver vertex.
        to: u32,
    },
    /// `"{ns}-{index}"` — per-level labels, e.g. `"bootstrap/banana-2"`.
    Indexed {
        /// The namespace prefix (without the trailing separator).
        ns: &'static str,
        /// The instance index.
        index: u64,
    },
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Static(name) => f.write_str(name),
            Label::Arc { ns, from, to } => write!(f, "{ns}-{from}-{to}"),
            Label::Indexed { ns, index } => write!(f, "{ns}-{index}"),
        }
    }
}

impl From<&'static str> for Label {
    fn from(name: &'static str) -> Self {
        Label::Static(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ChainId(3).to_string(), "chain#3");
        assert_eq!(PartyId(0).to_string(), "P0");
        assert_eq!(ContractId(7).to_string(), "contract#7");
        assert_eq!(AssetId(2).to_string(), "asset#2");
        assert_eq!(ContractAddr::new(ChainId(1), ContractId(4)).to_string(), "chain#1/contract#4");
    }

    #[test]
    fn ordering_is_lexicographic_for_addresses() {
        let a = ContractAddr::new(ChainId(0), ContractId(9));
        let b = ContractAddr::new(ChainId(1), ContractId(0));
        assert!(a < b);
    }

    #[test]
    fn label_display_matches_the_old_string_forms() {
        assert_eq!(
            Label::Static("two-party/apricot-escrow").to_string(),
            "two-party/apricot-escrow"
        );
        assert_eq!(Label::Arc { ns: "deal/arc", from: 0, to: 1 }.to_string(), "deal/arc-0-1");
        assert_eq!(
            Label::Indexed { ns: "bootstrap/banana", index: 2 }.to_string(),
            "bootstrap/banana-2"
        );
        assert_eq!(Label::from("pot"), Label::Static("pot"));
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        // The point of this test is that ids are hashable; the set is
        // local and its order is never observed.
        // staticcheck: allow(SC302)
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PartyId(1));
        set.insert(PartyId(1));
        assert_eq!(set.len(), 1);
    }
}
