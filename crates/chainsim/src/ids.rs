//! Identifier newtypes for chains, parties, contracts and assets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a blockchain within a [`crate::World`].
///
/// Chains are created through [`crate::World::add_chain`], which assigns
/// identifiers sequentially.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChainId(pub u32);

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain#{}", self.0)
    }
}

/// Identifies a party (a person, organisation or external program).
///
/// Parties are *active* and *autonomous*: they own assets, publish and call
/// contracts, and may deviate from agreed protocols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PartyId(pub u32);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a contract on a particular chain.
///
/// Contract identifiers are unique *per chain*; a globally unique address is
/// the pair ([`ChainId`], [`ContractId`]) captured by [`ContractAddr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContractId(pub u64);

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract#{}", self.0)
    }
}

/// A globally unique contract address: chain plus per-chain contract id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContractAddr {
    /// The chain the contract resides on.
    pub chain: ChainId,
    /// The contract's identifier on that chain.
    pub contract: ContractId,
}

impl ContractAddr {
    /// Creates a contract address from its parts.
    pub const fn new(chain: ChainId, contract: ContractId) -> Self {
        ContractAddr { chain, contract }
    }
}

impl fmt::Display for ContractAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.chain, self.contract)
    }
}

/// Identifies a fungible asset class (a token or native currency).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AssetId(pub u32);

impl fmt::Display for AssetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asset#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ChainId(3).to_string(), "chain#3");
        assert_eq!(PartyId(0).to_string(), "P0");
        assert_eq!(ContractId(7).to_string(), "contract#7");
        assert_eq!(AssetId(2).to_string(), "asset#2");
        assert_eq!(ContractAddr::new(ChainId(1), ContractId(4)).to_string(), "chain#1/contract#4");
    }

    #[test]
    fn ordering_is_lexicographic_for_addresses() {
        let a = ContractAddr::new(ChainId(0), ContractId(9));
        let b = ContractAddr::new(ChainId(1), ContractId(0));
        assert!(a < b);
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PartyId(1));
        set.insert(PartyId(1));
        assert_eq!(set.len(), 1);
    }
}
