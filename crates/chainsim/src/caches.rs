//! The per-world memoisation store.
//!
//! Model-checking sweeps give each worker thread one pooled [`crate::World`]
//! that runs thousands of scenarios back to back. Earlier revisions shared
//! memo tables across *all* workers behind `Arc<Mutex<..>>`, which put a
//! contended lock on the hottest verification path and capped thread
//! scaling. A [`SimCaches`] replaces that: one type-erased store per world —
//! and therefore per worker — that contracts reach through
//! [`crate::CallEnv::caches`]. No locks, no sharing, no contention; each
//! worker warms its own tables as it sweeps.
//!
//! Entries deliberately survive [`crate::World::reset`] and snapshot
//! restores: they memoise *pure* computations (signature-chain verification,
//! derived tables) whose results are identical every time, so keeping them
//! across scenario runs changes performance only, never outcomes. Anything
//! whose value could differ between runs must not be stored here.

use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::fmt;

/// A type-erased store of memo tables, keyed by table type.
///
/// # Examples
///
/// ```
/// use chainsim::SimCaches;
///
/// #[derive(Default)]
/// struct Seen(std::collections::BTreeSet<u64>);
///
/// let mut caches = SimCaches::default();
/// caches.get_or_default::<Seen>().0.insert(7);
/// assert!(caches.get_or_default::<Seen>().0.contains(&7));
/// ```
#[derive(Default)]
pub struct SimCaches {
    slots: BTreeMap<TypeId, Box<dyn Any + Send>>,
}

impl SimCaches {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memo table of type `T`, creating it on first use.
    pub fn get_or_default<T: Any + Default + Send>(&mut self) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("slot type is keyed by TypeId")
    }

    /// The number of distinct memo tables currently allocated.
    pub fn tables(&self) -> usize {
        self.slots.len()
    }
}

impl fmt::Debug for SimCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCaches").field("tables", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CounterTable(u64);
    #[derive(Default)]
    struct OtherTable(Vec<u32>);

    #[test]
    fn tables_are_keyed_by_type_and_persist() {
        let mut caches = SimCaches::new();
        caches.get_or_default::<CounterTable>().0 += 3;
        caches.get_or_default::<OtherTable>().0.push(9);
        caches.get_or_default::<CounterTable>().0 += 1;
        assert_eq!(caches.get_or_default::<CounterTable>().0, 4);
        assert_eq!(caches.get_or_default::<OtherTable>().0, vec![9]);
        assert_eq!(caches.tables(), 2);
        assert!(format!("{caches:?}").contains("tables"));
    }
}
