//! Asset quantities and signed payoffs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An unsigned quantity of some asset.
///
/// Amounts use saturating-free checked arithmetic internally; the `+`/`-`
/// operators panic on overflow or underflow, which in this simulator always
/// indicates a programming error rather than a recoverable condition. Use
/// [`Amount::checked_add`] / [`Amount::checked_sub`] where a fallible result
/// is preferable.
///
/// # Examples
///
/// ```
/// use chainsim::Amount;
///
/// let a = Amount::new(100);
/// let b = Amount::new(1);
/// assert_eq!(a + b, Amount::new(101));
/// assert_eq!(a.checked_sub(Amount::new(200)), None);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Amount(u128);

impl Amount {
    /// The zero amount.
    pub const ZERO: Amount = Amount(0);

    /// Creates an amount from a raw integer value.
    pub const fn new(value: u128) -> Self {
        Amount(value)
    }

    /// Returns the raw integer value.
    pub const fn value(self) -> u128 {
        self.0
    }

    /// Returns `true` if the amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_add(rhs.0).map(Amount)
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the amount by an integer scale factor.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn scaled(self, factor: u128) -> Amount {
        Amount(self.0.checked_mul(factor).expect("amount overflow in scaled"))
    }

    /// Integer division (floor), used when splitting premiums across rounds.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divided_by(self, divisor: u128) -> Amount {
        assert!(divisor != 0, "division of Amount by zero");
        Amount(self.0 / divisor)
    }

    /// Converts to a signed [`Payoff`].
    pub fn as_payoff(self) -> Payoff {
        Payoff(self.0 as i128)
    }
}

impl Add for Amount {
    type Output = Amount;

    fn add(self, rhs: Amount) -> Amount {
        self.checked_add(rhs).expect("amount overflow in add")
    }
}

impl AddAssign for Amount {
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;

    fn sub(self, rhs: Amount) -> Amount {
        self.checked_sub(rhs).expect("amount underflow in sub")
    }
}

impl SubAssign for Amount {
    fn sub_assign(&mut self, rhs: Amount) {
        *self = *self - rhs;
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u128> for Amount {
    fn from(value: u128) -> Self {
        Amount(value)
    }
}

impl From<u64> for Amount {
    fn from(value: u64) -> Self {
        Amount(value as u128)
    }
}

/// A signed net payoff (gain or loss) for a party.
///
/// Payoff accounting sums credits and debits across a protocol run; a
/// compliant party's payoff must never be driven below its acceptable
/// compensation level by a deviating counterparty.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Payoff(pub i128);

impl Payoff {
    /// The zero payoff.
    pub const ZERO: Payoff = Payoff(0);

    /// Creates a payoff from a signed value.
    pub const fn new(value: i128) -> Self {
        Payoff(value)
    }

    /// Returns the raw signed value.
    pub const fn value(self) -> i128 {
        self.0
    }

    /// Returns `true` if the payoff is negative (a net loss).
    pub const fn is_loss(self) -> bool {
        self.0 < 0
    }

    /// Returns `true` if the payoff is non-negative.
    pub const fn is_non_negative(self) -> bool {
        self.0 >= 0
    }

    /// Adds a credited amount.
    #[must_use]
    pub fn credit(self, amount: Amount) -> Payoff {
        Payoff(self.0 + amount.value() as i128)
    }

    /// Subtracts a debited amount.
    #[must_use]
    pub fn debit(self, amount: Amount) -> Payoff {
        Payoff(self.0 - amount.value() as i128)
    }
}

impl Add for Payoff {
    type Output = Payoff;

    fn add(self, rhs: Payoff) -> Payoff {
        Payoff(self.0 + rhs.0)
    }
}

impl AddAssign for Payoff {
    fn add_assign(&mut self, rhs: Payoff) {
        self.0 += rhs.0;
    }
}

impl Sub for Payoff {
    type Output = Payoff;

    fn sub(self, rhs: Payoff) -> Payoff {
        Payoff(self.0 - rhs.0)
    }
}

impl Sum for Payoff {
    fn sum<I: Iterator<Item = Payoff>>(iter: I) -> Payoff {
        iter.fold(Payoff::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Payoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 0 {
            write!(f, "+{}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<Amount> for Payoff {
    fn from(amount: Amount) -> Self {
        amount.as_payoff()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amount_arithmetic() {
        let a = Amount::new(10);
        let b = Amount::new(3);
        assert_eq!(a + b, Amount::new(13));
        assert_eq!(a - b, Amount::new(7));
        assert_eq!(a.checked_sub(Amount::new(11)), None);
        assert_eq!(a.saturating_sub(Amount::new(11)), Amount::ZERO);
        assert_eq!(a.scaled(4), Amount::new(40));
        assert_eq!(a.divided_by(3), Amount::new(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn amount_sub_panics_on_underflow() {
        let _ = Amount::new(1) - Amount::new(2);
    }

    #[test]
    #[should_panic(expected = "division of Amount by zero")]
    fn amount_divide_by_zero_panics() {
        let _ = Amount::new(1).divided_by(0);
    }

    #[test]
    fn amount_sum_and_assign_ops() {
        let total: Amount = [1u128, 2, 3].into_iter().map(Amount::new).sum();
        assert_eq!(total, Amount::new(6));
        let mut a = Amount::new(5);
        a += Amount::new(2);
        a -= Amount::new(3);
        assert_eq!(a, Amount::new(4));
    }

    #[test]
    fn amount_conversions_and_display() {
        assert_eq!(Amount::from(7u64), Amount::new(7));
        assert_eq!(Amount::from(7u128), Amount::new(7));
        assert_eq!(Amount::new(7).to_string(), "7");
        assert!(Amount::ZERO.is_zero());
    }

    #[test]
    fn payoff_credit_debit() {
        let p = Payoff::ZERO.credit(Amount::new(5)).debit(Amount::new(8));
        assert_eq!(p, Payoff::new(-3));
        assert!(p.is_loss());
        assert!(!p.is_non_negative());
        assert_eq!(p.to_string(), "-3");
        assert_eq!(Payoff::new(3).to_string(), "+3");
    }

    #[test]
    fn payoff_sum_and_from_amount() {
        let total: Payoff = [Payoff::new(1), Payoff::new(-4), Payoff::new(2)].into_iter().sum();
        assert_eq!(total, Payoff::new(-1));
        assert_eq!(Payoff::from(Amount::new(9)), Payoff::new(9));
        assert_eq!(Payoff::new(5) - Payoff::new(2), Payoff::new(3));
    }
}
