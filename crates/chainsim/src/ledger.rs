//! The per-chain asset ledger.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::amount::Amount;
use crate::error::LedgerError;
use crate::ids::{AssetId, ContractId, PartyId};

/// The owner of a ledger balance: either a party or a contract.
///
/// Escrowing an asset is modelled exactly as in the paper: ownership is
/// temporarily transferred to a contract account, and the contract later
/// transfers it onward (redeem) or back (refund).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AccountRef {
    /// A party's account.
    Party(PartyId),
    /// A contract's account.
    Contract(ContractId),
}

impl AccountRef {
    /// Returns the party if this account belongs to one.
    pub fn as_party(&self) -> Option<PartyId> {
        match self {
            AccountRef::Party(p) => Some(*p),
            AccountRef::Contract(_) => None,
        }
    }

    /// Returns `true` if this account belongs to a contract.
    pub fn is_contract(&self) -> bool {
        matches!(self, AccountRef::Contract(_))
    }
}

impl fmt::Display for AccountRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountRef::Party(p) => write!(f, "{p}"),
            AccountRef::Contract(c) => write!(f, "{c}"),
        }
    }
}

impl From<PartyId> for AccountRef {
    fn from(party: PartyId) -> Self {
        AccountRef::Party(party)
    }
}

impl From<ContractId> for AccountRef {
    fn from(contract: ContractId) -> Self {
        AccountRef::Contract(contract)
    }
}

/// A chain-local ledger mapping `(account, asset)` to a balance.
///
/// The ledger enforces conservation: apart from explicit [`Ledger::mint`]
/// calls used to set up initial endowments, transfers never create or
/// destroy value.
///
/// # Examples
///
/// ```
/// use chainsim::{AccountRef, Amount, AssetId, Ledger, PartyId};
///
/// let mut ledger = Ledger::new();
/// let alice = AccountRef::Party(PartyId(0));
/// let bob = AccountRef::Party(PartyId(1));
/// let coin = AssetId(0);
/// ledger.mint(alice, coin, Amount::new(10));
/// ledger.transfer(alice, bob, coin, Amount::new(4))?;
/// assert_eq!(ledger.balance(bob, coin), Amount::new(4));
/// # Ok::<(), chainsim::LedgerError>(())
/// ```
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct Ledger {
    balances: BTreeMap<(AccountRef, AssetId), Amount>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the balance of `account` in `asset` (zero if absent).
    pub fn balance(&self, account: AccountRef, asset: AssetId) -> Amount {
        self.balances.get(&(account, asset)).copied().unwrap_or(Amount::ZERO)
    }

    /// Creates `amount` new units of `asset` in `account`.
    ///
    /// Minting is a setup-only operation used to endow parties with their
    /// initial principals and native-currency balances.
    pub fn mint(&mut self, account: AccountRef, asset: AssetId, amount: Amount) {
        if amount.is_zero() {
            return;
        }
        let entry = self.balances.entry((account, asset)).or_insert(Amount::ZERO);
        *entry += amount;
    }

    /// Moves `amount` of `asset` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientBalance`] if `from` does not hold
    /// `amount`, and [`LedgerError::ZeroTransfer`] if `amount` is zero.
    pub fn transfer(
        &mut self,
        from: AccountRef,
        to: AccountRef,
        asset: AssetId,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        if amount.is_zero() {
            return Err(LedgerError::ZeroTransfer);
        }
        let held = self.balance(from, asset);
        if held < amount {
            return Err(LedgerError::InsufficientBalance {
                account: from,
                asset,
                held,
                needed: amount,
            });
        }
        self.balances.insert((from, asset), held - amount);
        let to_held = self.balance(to, asset);
        self.balances.insert((to, asset), to_held + amount);
        Ok(())
    }

    /// Returns the total supply of `asset` across all accounts.
    pub fn total_supply(&self, asset: AssetId) -> Amount {
        self.balances.iter().filter(|((_, a), _)| *a == asset).map(|(_, amount)| *amount).sum()
    }

    /// Iterates over all `(account, asset, balance)` entries with non-zero balances.
    pub fn iter(&self) -> impl Iterator<Item = (AccountRef, AssetId, Amount)> + '_ {
        self.balances
            .iter()
            .filter(|(_, amount)| !amount.is_zero())
            .map(|((account, asset), amount)| (*account, *asset, *amount))
    }

    /// Returns all assets that appear in the ledger.
    pub fn assets(&self) -> Vec<AssetId> {
        let mut assets: Vec<AssetId> = self.balances.keys().map(|(_, a)| *a).collect();
        assets.sort_unstable();
        assets.dedup();
        assets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin() -> AssetId {
        AssetId(0)
    }

    #[test]
    fn mint_and_balance() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, coin(), Amount::new(5));
        ledger.mint(alice, coin(), Amount::new(2));
        assert_eq!(ledger.balance(alice, coin()), Amount::new(7));
        assert_eq!(ledger.balance(alice, AssetId(9)), Amount::ZERO);
    }

    #[test]
    fn mint_zero_is_noop() {
        let mut ledger = Ledger::new();
        ledger.mint(AccountRef::Party(PartyId(0)), coin(), Amount::ZERO);
        assert_eq!(ledger.iter().count(), 0);
    }

    #[test]
    fn transfer_moves_value() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let escrow = AccountRef::Contract(ContractId(1));
        ledger.mint(alice, coin(), Amount::new(10));
        ledger.transfer(alice, escrow, coin(), Amount::new(4)).unwrap();
        assert_eq!(ledger.balance(alice, coin()), Amount::new(6));
        assert_eq!(ledger.balance(escrow, coin()), Amount::new(4));
    }

    #[test]
    fn transfer_rejects_overdraft_and_zero() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let bob = AccountRef::Party(PartyId(1));
        ledger.mint(alice, coin(), Amount::new(3));
        assert!(matches!(
            ledger.transfer(alice, bob, coin(), Amount::new(4)),
            Err(LedgerError::InsufficientBalance { .. })
        ));
        assert!(matches!(
            ledger.transfer(alice, bob, coin(), Amount::ZERO),
            Err(LedgerError::ZeroTransfer)
        ));
        // Failed transfers leave balances untouched.
        assert_eq!(ledger.balance(alice, coin()), Amount::new(3));
        assert_eq!(ledger.balance(bob, coin()), Amount::ZERO);
    }

    #[test]
    fn total_supply_is_conserved_by_transfers() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let bob = AccountRef::Party(PartyId(1));
        ledger.mint(alice, coin(), Amount::new(100));
        ledger.transfer(alice, bob, coin(), Amount::new(30)).unwrap();
        ledger.transfer(bob, alice, coin(), Amount::new(10)).unwrap();
        assert_eq!(ledger.total_supply(coin()), Amount::new(100));
    }

    #[test]
    fn iter_and_assets() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, AssetId(2), Amount::new(1));
        ledger.mint(alice, AssetId(1), Amount::new(1));
        assert_eq!(ledger.assets(), vec![AssetId(1), AssetId(2)]);
        assert_eq!(ledger.iter().count(), 2);
    }

    #[test]
    fn account_ref_helpers() {
        let p = AccountRef::from(PartyId(3));
        let c = AccountRef::from(ContractId(4));
        assert_eq!(p.as_party(), Some(PartyId(3)));
        assert_eq!(c.as_party(), None);
        assert!(c.is_contract());
        assert!(!p.is_contract());
        assert_eq!(p.to_string(), "P3");
        assert_eq!(c.to_string(), "contract#4");
    }
}
