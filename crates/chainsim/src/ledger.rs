//! The per-chain asset ledger.
//!
//! The ledger is the single hottest data structure in the simulator: every
//! contract call in every model-checking scenario reads and writes it. It is
//! therefore stored *densely*: account and asset identifiers are assigned
//! sequentially by [`crate::World`], so balances live in `Vec`s indexed
//! directly by those small integers instead of in a `BTreeMap` keyed by
//! `(AccountRef, AssetId)`. The historical map-backed implementation is kept
//! as [`oracle::MapLedger`] (behind the default `map-ledger-oracle` feature)
//! and differential tests assert that both agree on arbitrary operation
//! sequences.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::amount::Amount;
use crate::error::LedgerError;
use crate::ids::{AssetId, ContractId, PartyId};

/// The owner of a ledger balance: either a party or a contract.
///
/// Escrowing an asset is modelled exactly as in the paper: ownership is
/// temporarily transferred to a contract account, and the contract later
/// transfers it onward (redeem) or back (refund).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AccountRef {
    /// A party's account.
    Party(PartyId),
    /// A contract's account.
    Contract(ContractId),
}

impl AccountRef {
    /// Returns the party if this account belongs to one.
    pub fn as_party(&self) -> Option<PartyId> {
        match self {
            AccountRef::Party(p) => Some(*p),
            AccountRef::Contract(_) => None,
        }
    }

    /// Returns `true` if this account belongs to a contract.
    pub fn is_contract(&self) -> bool {
        matches!(self, AccountRef::Contract(_))
    }
}

impl fmt::Display for AccountRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountRef::Party(p) => write!(f, "{p}"),
            AccountRef::Contract(c) => write!(f, "{c}"),
        }
    }
}

impl From<PartyId> for AccountRef {
    fn from(party: PartyId) -> Self {
        AccountRef::Party(party)
    }
}

impl From<ContractId> for AccountRef {
    fn from(contract: ContractId) -> Self {
        AccountRef::Contract(contract)
    }
}

/// A chain-local ledger mapping `(account, asset)` to a balance.
///
/// The ledger enforces conservation: apart from explicit [`Ledger::mint`]
/// calls used to set up initial endowments, transfers never create or
/// destroy value.
///
/// Balances are stored in dense per-account rows indexed by `AssetId`, with
/// one row table for party accounts and one for contract accounts (see the
/// module docs). Rows grow on first touch and [`Ledger::clear`] retains all
/// allocated capacity, which is what lets a pooled [`crate::World`] run
/// thousands of scenarios without re-allocating its ledgers.
///
/// # Examples
///
/// ```
/// use chainsim::{AccountRef, Amount, AssetId, Ledger, PartyId};
///
/// let mut ledger = Ledger::new();
/// let alice = AccountRef::Party(PartyId(0));
/// let bob = AccountRef::Party(PartyId(1));
/// let coin = AssetId(0);
/// ledger.mint(alice, coin, Amount::new(10));
/// ledger.transfer(alice, bob, coin, Amount::new(4))?;
/// assert_eq!(ledger.balance(bob, coin), Amount::new(4));
/// # Ok::<(), chainsim::LedgerError>(())
/// ```
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct Ledger {
    /// `parties[p][a]` is the balance of `Party(p)` in `AssetId(a)`.
    parties: Vec<Vec<Amount>>,
    /// `contracts[c][a]` is the balance of `Contract(c)` in `AssetId(a)`.
    contracts: Vec<Vec<Amount>>,
    /// `touched[a]` records that asset `a` has ever had an entry created
    /// (mint or transfer), mirroring key presence in the old map layout.
    touched: Vec<bool>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn row(&self, account: AccountRef) -> Option<&Vec<Amount>> {
        match account {
            AccountRef::Party(PartyId(p)) => self.parties.get(p as usize),
            AccountRef::Contract(ContractId(c)) => self.contracts.get(c as usize),
        }
    }

    /// Returns the balance slot for `(account, asset)`, growing the dense
    /// tables as needed. Ids are assigned sequentially by the world, so the
    /// tables stay as small as the live id ranges.
    fn slot_mut(&mut self, account: AccountRef, asset: AssetId) -> &mut Amount {
        let row = match account {
            AccountRef::Party(PartyId(p)) => {
                let idx = p as usize;
                if idx >= self.parties.len() {
                    self.parties.resize_with(idx + 1, Vec::new);
                }
                &mut self.parties[idx]
            }
            AccountRef::Contract(ContractId(c)) => {
                let idx = c as usize;
                if idx >= self.contracts.len() {
                    self.contracts.resize_with(idx + 1, Vec::new);
                }
                &mut self.contracts[idx]
            }
        };
        let a = asset.0 as usize;
        if a >= row.len() {
            row.resize(a + 1, Amount::ZERO);
        }
        if a >= self.touched.len() {
            self.touched.resize(a + 1, false);
        }
        self.touched[a] = true;
        &mut row[a]
    }

    /// Pre-allocates dense storage for `parties` party accounts, `contracts`
    /// contract accounts and `assets` assets, each with a fully materialised
    /// balance row.
    ///
    /// Market-scale workloads populate ledgers with 100k–1M+ accounts before
    /// running; reserving up front turns that population into straight-line
    /// writes instead of `slot_mut`'s repeated grow-on-first-touch resizing.
    /// Balances are untouched (new slots are zero), so this is safe to call
    /// on a live ledger.
    pub fn reserve(&mut self, parties: usize, contracts: usize, assets: usize) {
        if self.parties.len() < parties {
            self.parties.resize_with(parties, Vec::new);
        }
        if self.contracts.len() < contracts {
            self.contracts.resize_with(contracts, Vec::new);
        }
        for row in self.parties.iter_mut().chain(self.contracts.iter_mut()) {
            if row.len() < assets {
                row.resize(assets, Amount::ZERO);
            }
        }
        if self.touched.len() < assets {
            self.touched.resize(assets, false);
        }
    }

    /// Returns the balance of `account` in `asset` (zero if absent).
    pub fn balance(&self, account: AccountRef, asset: AssetId) -> Amount {
        self.row(account).and_then(|row| row.get(asset.0 as usize)).copied().unwrap_or(Amount::ZERO)
    }

    /// Creates `amount` new units of `asset` in `account`.
    ///
    /// Minting is a setup-only operation used to endow parties with their
    /// initial principals and native-currency balances.
    pub fn mint(&mut self, account: AccountRef, asset: AssetId, amount: Amount) {
        if amount.is_zero() {
            return;
        }
        *self.slot_mut(account, asset) += amount;
    }

    /// Moves `amount` of `asset` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientBalance`] if `from` does not hold
    /// `amount`, and [`LedgerError::ZeroTransfer`] if `amount` is zero.
    pub fn transfer(
        &mut self,
        from: AccountRef,
        to: AccountRef,
        asset: AssetId,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        if amount.is_zero() {
            return Err(LedgerError::ZeroTransfer);
        }
        let held = self.balance(from, asset);
        if held < amount {
            return Err(LedgerError::InsufficientBalance {
                account: from,
                asset,
                held,
                needed: amount,
            });
        }
        *self.slot_mut(from, asset) = held - amount;
        let to_slot = self.slot_mut(to, asset);
        *to_slot += amount;
        Ok(())
    }

    /// Returns the total supply of `asset` across all accounts.
    pub fn total_supply(&self, asset: AssetId) -> Amount {
        let a = asset.0 as usize;
        self.parties.iter().chain(self.contracts.iter()).filter_map(|row| row.get(a)).copied().sum()
    }

    /// Iterates over all `(account, asset, balance)` entries with non-zero
    /// balances, in `(account, asset)` order (parties before contracts, as
    /// in [`AccountRef`]'s derived ordering).
    pub fn iter(&self) -> impl Iterator<Item = (AccountRef, AssetId, Amount)> + '_ {
        let parties = self.parties.iter().enumerate().flat_map(|(p, row)| {
            let account = AccountRef::Party(PartyId(p as u32));
            row.iter().enumerate().map(move |(a, amount)| (account, AssetId(a as u32), *amount))
        });
        let contracts = self.contracts.iter().enumerate().flat_map(|(c, row)| {
            let account = AccountRef::Contract(ContractId(c as u64));
            row.iter().enumerate().map(move |(a, amount)| (account, AssetId(a as u32), *amount))
        });
        parties.chain(contracts).filter(|(_, _, amount)| !amount.is_zero())
    }

    /// Returns all assets that have ever appeared in the ledger, ascending.
    ///
    /// Derived from the dense asset dimension in `O(assets)` rather than by
    /// collecting, sorting and deduplicating every `(account, asset)` entry.
    pub fn assets(&self) -> Vec<AssetId> {
        self.touched
            .iter()
            .enumerate()
            .filter(|(_, touched)| **touched)
            .map(|(a, _)| AssetId(a as u32))
            .collect()
    }

    /// Forgets every balance while retaining allocated storage, so that a
    /// pooled world can replay a fresh scenario without re-allocating.
    pub fn clear(&mut self) {
        for row in &mut self.parties {
            row.clear();
        }
        for row in &mut self.contracts {
            row.clear();
        }
        self.touched.clear();
    }
}

#[cfg(any(test, feature = "map-ledger-oracle"))]
pub mod oracle {
    //! The historical `BTreeMap`-backed ledger, retained verbatim as a
    //! differential oracle for the dense [`Ledger`](super::Ledger).
    //!
    //! `MapLedger` is compiled under the default `map-ledger-oracle` feature
    //! (and in tests); production consumers can disable the feature. It must
    //! never be used on a hot path — its whole purpose is to be the slow,
    //! obviously-correct reference that property tests compare against.

    use super::*;
    use std::collections::BTreeMap;

    /// Map-backed reference implementation of the ledger operations.
    #[derive(Clone, Default, Debug)]
    pub struct MapLedger {
        balances: BTreeMap<(AccountRef, AssetId), Amount>,
    }

    impl MapLedger {
        /// Creates an empty ledger.
        pub fn new() -> Self {
            Self::default()
        }

        /// See [`Ledger::balance`].
        pub fn balance(&self, account: AccountRef, asset: AssetId) -> Amount {
            self.balances.get(&(account, asset)).copied().unwrap_or(Amount::ZERO)
        }

        /// See [`Ledger::mint`].
        pub fn mint(&mut self, account: AccountRef, asset: AssetId, amount: Amount) {
            if amount.is_zero() {
                return;
            }
            let entry = self.balances.entry((account, asset)).or_insert(Amount::ZERO);
            *entry += amount;
        }

        /// See [`Ledger::transfer`].
        ///
        /// # Errors
        ///
        /// Identical to [`Ledger::transfer`].
        pub fn transfer(
            &mut self,
            from: AccountRef,
            to: AccountRef,
            asset: AssetId,
            amount: Amount,
        ) -> Result<(), LedgerError> {
            if amount.is_zero() {
                return Err(LedgerError::ZeroTransfer);
            }
            let held = self.balance(from, asset);
            if held < amount {
                return Err(LedgerError::InsufficientBalance {
                    account: from,
                    asset,
                    held,
                    needed: amount,
                });
            }
            self.balances.insert((from, asset), held - amount);
            let to_held = self.balance(to, asset);
            self.balances.insert((to, asset), to_held + amount);
            Ok(())
        }

        /// See [`Ledger::total_supply`].
        pub fn total_supply(&self, asset: AssetId) -> Amount {
            self.balances.iter().filter(|((_, a), _)| *a == asset).map(|(_, amount)| *amount).sum()
        }

        /// See [`Ledger::iter`].
        pub fn iter(&self) -> impl Iterator<Item = (AccountRef, AssetId, Amount)> + '_ {
            self.balances
                .iter()
                .filter(|(_, amount)| !amount.is_zero())
                .map(|((account, asset), amount)| (*account, *asset, *amount))
        }

        /// See [`Ledger::assets`].
        pub fn assets(&self) -> Vec<AssetId> {
            let mut assets: Vec<AssetId> = self.balances.keys().map(|(_, a)| *a).collect();
            assets.sort_unstable();
            assets.dedup();
            assets
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin() -> AssetId {
        AssetId(0)
    }

    #[test]
    fn mint_and_balance() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, coin(), Amount::new(5));
        ledger.mint(alice, coin(), Amount::new(2));
        assert_eq!(ledger.balance(alice, coin()), Amount::new(7));
        assert_eq!(ledger.balance(alice, AssetId(9)), Amount::ZERO);
    }

    #[test]
    fn mint_zero_is_noop() {
        let mut ledger = Ledger::new();
        ledger.mint(AccountRef::Party(PartyId(0)), coin(), Amount::ZERO);
        assert_eq!(ledger.iter().count(), 0);
    }

    #[test]
    fn transfer_moves_value() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let escrow = AccountRef::Contract(ContractId(1));
        ledger.mint(alice, coin(), Amount::new(10));
        ledger.transfer(alice, escrow, coin(), Amount::new(4)).unwrap();
        assert_eq!(ledger.balance(alice, coin()), Amount::new(6));
        assert_eq!(ledger.balance(escrow, coin()), Amount::new(4));
    }

    #[test]
    fn transfer_rejects_overdraft_and_zero() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let bob = AccountRef::Party(PartyId(1));
        ledger.mint(alice, coin(), Amount::new(3));
        assert!(matches!(
            ledger.transfer(alice, bob, coin(), Amount::new(4)),
            Err(LedgerError::InsufficientBalance { .. })
        ));
        assert!(matches!(
            ledger.transfer(alice, bob, coin(), Amount::ZERO),
            Err(LedgerError::ZeroTransfer)
        ));
        // Failed transfers leave balances untouched.
        assert_eq!(ledger.balance(alice, coin()), Amount::new(3));
        assert_eq!(ledger.balance(bob, coin()), Amount::ZERO);
    }

    #[test]
    fn total_supply_is_conserved_by_transfers() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        let bob = AccountRef::Party(PartyId(1));
        ledger.mint(alice, coin(), Amount::new(100));
        ledger.transfer(alice, bob, coin(), Amount::new(30)).unwrap();
        ledger.transfer(bob, alice, coin(), Amount::new(10)).unwrap();
        assert_eq!(ledger.total_supply(coin()), Amount::new(100));
    }

    #[test]
    fn iter_and_assets() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, AssetId(2), Amount::new(1));
        ledger.mint(alice, AssetId(1), Amount::new(1));
        assert_eq!(ledger.assets(), vec![AssetId(1), AssetId(2)]);
        assert_eq!(ledger.iter().count(), 2);
    }

    #[test]
    fn iter_orders_parties_before_contracts() {
        let mut ledger = Ledger::new();
        ledger.mint(AccountRef::Contract(ContractId(0)), coin(), Amount::new(1));
        ledger.mint(AccountRef::Party(PartyId(1)), coin(), Amount::new(2));
        ledger.mint(AccountRef::Party(PartyId(0)), AssetId(1), Amount::new(3));
        let entries: Vec<_> = ledger.iter().collect();
        assert_eq!(
            entries,
            vec![
                (AccountRef::Party(PartyId(0)), AssetId(1), Amount::new(3)),
                (AccountRef::Party(PartyId(1)), AssetId(0), Amount::new(2)),
                (AccountRef::Contract(ContractId(0)), AssetId(0), Amount::new(1)),
            ]
        );
    }

    #[test]
    fn clear_retains_capacity_and_forgets_balances() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, coin(), Amount::new(5));
        ledger.clear();
        assert_eq!(ledger.balance(alice, coin()), Amount::ZERO);
        assert_eq!(ledger.iter().count(), 0);
        assert!(ledger.assets().is_empty());
        ledger.mint(alice, coin(), Amount::new(2));
        assert_eq!(ledger.balance(alice, coin()), Amount::new(2));
    }

    #[test]
    fn reserve_preallocates_without_changing_observable_state() {
        let mut ledger = Ledger::new();
        let alice = AccountRef::Party(PartyId(0));
        ledger.mint(alice, coin(), Amount::new(5));
        ledger.reserve(1000, 50, 3);
        // Reservation is invisible: no new balances, assets or entries.
        assert_eq!(ledger.balance(alice, coin()), Amount::new(5));
        assert_eq!(ledger.iter().count(), 1);
        assert_eq!(ledger.assets(), vec![coin()]);
        assert_eq!(ledger.total_supply(coin()), Amount::new(5));
        // Reserved accounts behave like any other.
        let far = AccountRef::Party(PartyId(999));
        assert_eq!(ledger.balance(far, AssetId(2)), Amount::ZERO);
        ledger.mint(far, AssetId(2), Amount::new(7));
        assert_eq!(ledger.balance(far, AssetId(2)), Amount::new(7));
        // A smaller reservation never shrinks.
        ledger.reserve(1, 1, 1);
        assert_eq!(ledger.balance(far, AssetId(2)), Amount::new(7));
    }

    #[test]
    fn account_ref_helpers() {
        let p = AccountRef::from(PartyId(3));
        let c = AccountRef::from(ContractId(4));
        assert_eq!(p.as_party(), Some(PartyId(3)));
        assert_eq!(c.as_party(), None);
        assert!(c.is_contract());
        assert!(!p.is_contract());
        assert_eq!(p.to_string(), "P3");
        assert_eq!(c.to_string(), "contract#4");
    }
}
