//! The synchronous scheduler that drives actors (parties) against the world.

use std::fmt;

use crate::contract::{Contract, ContractMessage};
use crate::error::ChainError;
use crate::events::CallDesc;
use crate::ids::{ChainId, ContractAddr, Label, PartyId};
use crate::time::Time;
use crate::world::World;

/// An action a party may take during one synchronous round.
///
/// Descriptions and labels are structured [`CallDesc`]/[`Label`] values
/// (rendered only on display) so that emitting an action allocates nothing
/// beyond the boxed message or contract itself.
pub enum Action {
    /// Publish a contract on `chain`, registering it under `label` so that
    /// counterparties can discover it.
    Publish {
        /// The chain to publish on.
        chain: ChainId,
        /// The agreed discovery label.
        label: Label,
        /// The contract to publish.
        contract: Box<dyn Contract>,
    },
    /// Call the contract at `addr` with a typed message.
    Call {
        /// The contract address.
        addr: ContractAddr,
        /// The message to deliver.
        msg: Box<dyn ContractMessage>,
        /// Short human-readable description for traces.
        description: CallDesc,
    },
}

impl Action {
    /// Convenience constructor for a call action.
    pub fn call(
        addr: ContractAddr,
        msg: impl ContractMessage,
        description: impl Into<CallDesc>,
    ) -> Self {
        Action::Call { addr, msg: Box::new(msg), description: description.into() }
    }

    /// Convenience constructor for a publish action.
    pub fn publish(chain: ChainId, label: impl Into<Label>, contract: Box<dyn Contract>) -> Self {
        Action::Publish { chain, label: label.into(), contract }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Publish { chain, label, contract } => f
                .debug_struct("Publish")
                .field("chain", chain)
                .field("label", label)
                .field("type", &contract.type_name())
                .finish(),
            Action::Call { addr, description, .. } => f
                .debug_struct("Call")
                .field("addr", addr)
                .field("description", description)
                .finish(),
        }
    }
}

/// A party participating in a protocol run.
///
/// In every synchronous round the scheduler calls [`Actor::step`] with a
/// read-only view of the world *as of the end of the previous round* — this
/// is exactly the paper's Δ-propagation assumption — and collects the
/// actions the party wants to take. Actions from all parties are then
/// applied in party-id order and the clock advances by Δ.
pub trait Actor {
    /// The party this actor controls.
    fn party(&self) -> PartyId;

    /// Observes the world and emits the actions for this round.
    fn step(&mut self, world: &World, actions: &mut Vec<Action>);

    /// Returns `true` once the actor has nothing further to do.
    ///
    /// The scheduler stops early when all actors are done.
    fn done(&self) -> bool {
        false
    }
}

impl<A: Actor + ?Sized> Actor for Box<A> {
    fn party(&self) -> PartyId {
        (**self).party()
    }
    fn step(&mut self, world: &World, actions: &mut Vec<Action>) {
        (**self).step(world, actions)
    }
    fn done(&self) -> bool {
        (**self).done()
    }
}

/// The result of applying a single action.
#[derive(Debug)]
pub struct ActionOutcome {
    /// The party that issued the action.
    pub party: PartyId,
    /// Short description of the action (structured; renders on display).
    pub description: CallDesc,
    /// The result of applying it.
    pub result: Result<(), ChainError>,
}

impl ActionOutcome {
    /// Returns `true` if the action was applied successfully.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// The actions applied during one synchronous round.
#[derive(Debug)]
pub struct StepTrace {
    /// The time at which the round's actions were applied.
    pub time: Time,
    /// The outcomes, in application order.
    pub outcomes: Vec<ActionOutcome>,
}

/// A record of a complete protocol run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// One trace per synchronous round, in order.
    pub steps: Vec<StepTrace>,
}

impl RunReport {
    /// The number of rounds executed.
    pub fn rounds(&self) -> usize {
        self.steps.len()
    }

    /// Iterates over all action outcomes across all rounds.
    pub fn outcomes(&self) -> impl Iterator<Item = &ActionOutcome> {
        self.steps.iter().flat_map(|s| s.outcomes.iter())
    }

    /// The number of successfully applied actions.
    pub fn successes(&self) -> usize {
        self.outcomes().filter(|o| o.is_ok()).count()
    }

    /// The failed actions (useful for asserting that compliant runs are clean).
    pub fn failures(&self) -> Vec<&ActionOutcome> {
        self.outcomes().filter(|o| !o.is_ok()).collect()
    }
}

/// Drives a set of [`Actor`]s against a [`World`] in synchronous rounds.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    max_rounds: u64,
}

impl Scheduler {
    /// Creates a scheduler that runs at most `max_rounds` rounds.
    pub fn new(max_rounds: u64) -> Self {
        Scheduler { max_rounds }
    }

    /// Runs the actors until they are all done or `max_rounds` is reached.
    ///
    /// Each round: every actor observes the same world snapshot, all emitted
    /// actions are applied in emission order (actors are visited in the
    /// order supplied, which protocol setup keeps sorted by party id), and
    /// the world advances by Δ.
    pub fn run(&self, world: &mut World, actors: &mut [Box<dyn Actor>]) -> RunReport {
        self.run_actors(world, actors)
    }

    /// [`Scheduler::run`] for any slice of concrete actors (avoiding the
    /// per-actor box). Semantics are identical: both drive [`run_round`].
    pub fn run_actors<A: Actor>(&self, world: &mut World, actors: &mut [A]) -> RunReport {
        let mut report = RunReport::default();
        let mut buffers = RoundBuffers::default();
        for _ in 0..self.max_rounds {
            if actors.iter().all(|a| a.done()) {
                break;
            }
            report.steps.push(run_round_with(world, actors, &mut buffers));
        }
        report
    }
}

/// Reusable staging buffers for [`run_round_with`]: most rounds emit no
/// actions, and the ones that do reuse one allocation across a whole run
/// instead of allocating per round.
#[derive(Debug, Default)]
pub struct RoundBuffers {
    staged: Vec<Action>,
    batch: Vec<(PartyId, Action)>,
}

/// Executes exactly one synchronous round: every actor observes the world
/// as of the end of the previous round, all emitted actions are applied in
/// emission order (actors visited in slice order), and the clock advances
/// by Δ.
///
/// This is the single round primitive behind [`Scheduler::run`] *and* the
/// protocol crates' checkpoint-and-resume runners; sharing it is what makes
/// a resumed run bit-for-bit identical to a replayed one.
pub fn run_round<A: Actor>(world: &mut World, actors: &mut [A]) -> StepTrace {
    run_round_with(world, actors, &mut RoundBuffers::default())
}

/// [`run_round`] with caller-owned staging buffers (see [`RoundBuffers`]).
pub fn run_round_with<A: Actor>(
    world: &mut World,
    actors: &mut [A],
    buffers: &mut RoundBuffers,
) -> StepTrace {
    let RoundBuffers { staged, batch } = buffers;
    for actor in actors.iter_mut() {
        staged.clear();
        actor.step(world, staged);
        let party = actor.party();
        batch.extend(staged.drain(..).map(|a| (party, a)));
    }
    let mut outcomes = Vec::with_capacity(batch.len());
    for (party, action) in batch.drain(..) {
        outcomes.push(apply_action(world, party, action));
    }
    let trace = StepTrace { time: world.now(), outcomes };
    world.advance_delta();
    trace
}

fn apply_action(world: &mut World, party: PartyId, action: Action) -> ActionOutcome {
    match action {
        Action::Publish { chain, label, contract } => {
            let description = CallDesc::Publish { type_name: contract.type_name(), label };
            world.publish_labeled(chain, party, label, contract);
            ActionOutcome { party, description, result: Ok(()) }
        }
        Action::Call { addr, msg, description } => {
            let result = world.call(party, addr, msg.as_ref(), description);
            ActionOutcome { party, description, result }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Amount;
    use crate::contract::CallEnv;
    use crate::error::ContractError;
    use crate::ids::AssetId;
    use crate::ledger::AccountRef;
    use std::any::Any;

    /// Contract that accepts deposits of the chain's asset 0.
    #[derive(Clone, Debug, Default)]
    struct Pot {
        total: Amount,
    }

    #[derive(Clone, Debug)]
    struct DepositMsg(Amount);

    impl Contract for Pot {
        fn type_name(&self) -> &'static str {
            "Pot"
        }
        fn clone_box(&self) -> Box<dyn Contract> {
            Box::new(self.clone())
        }
        fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
            let msg = msg.downcast_ref::<DepositMsg>().ok_or(ContractError::UnsupportedMessage)?;
            env.debit_caller(AssetId(0), msg.0)?;
            self.total += msg.0;
            Ok(())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Alice publishes a pot in round 0; Bob deposits into it once he sees it.
    struct Publisher {
        party: PartyId,
        chain: ChainId,
        published: bool,
    }

    impl Actor for Publisher {
        fn party(&self) -> PartyId {
            self.party
        }
        fn step(&mut self, _world: &World, actions: &mut Vec<Action>) {
            if !self.published {
                actions.push(Action::publish(self.chain, "pot", Box::new(Pot::default())));
                self.published = true;
            }
        }
        fn done(&self) -> bool {
            self.published
        }
    }

    struct Depositor {
        party: PartyId,
        deposited: bool,
    }

    impl Actor for Depositor {
        fn party(&self) -> PartyId {
            self.party
        }
        fn step(&mut self, world: &World, actions: &mut Vec<Action>) {
            if self.deposited {
                return;
            }
            if let Some(addr) = world.lookup("pot") {
                actions.push(Action::call(addr, DepositMsg(Amount::new(5)), "Deposit 5"));
                self.deposited = true;
            }
        }
        fn done(&self) -> bool {
            self.deposited
        }
    }

    #[test]
    fn scheduler_runs_publish_then_deposit() {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        world.chain_mut(chain).mint(PartyId(1), AssetId(0), Amount::new(10));

        let mut actors: Vec<Box<dyn Actor>> = vec![
            Box::new(Publisher { party: PartyId(0), chain, published: false }),
            Box::new(Depositor { party: PartyId(1), deposited: false }),
        ];
        let report = Scheduler::new(10).run(&mut world, &mut actors);

        // Publication and deposit happen in the same round here because the
        // publisher is visited first; what matters is that all actions
        // succeeded and the pot holds the deposit.
        assert!(report.failures().is_empty());
        assert!(report.rounds() <= 10);
        let addr = world.lookup("pot").unwrap();
        assert_eq!(
            world.chain(chain).balance(AccountRef::Contract(addr.contract), AssetId(0)),
            Amount::new(5)
        );
        assert_eq!(
            world.chain(chain).contract_as::<Pot>(addr.contract).unwrap().total,
            Amount::new(5)
        );
    }

    #[test]
    fn scheduler_stops_when_all_actors_done() {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        let mut actors: Vec<Box<dyn Actor>> =
            vec![Box::new(Publisher { party: PartyId(0), chain, published: false })];
        let report = Scheduler::new(100).run(&mut world, &mut actors);
        assert_eq!(report.rounds(), 1);
        assert_eq!(report.successes(), 1);
        // Time advanced once (one round was executed).
        assert_eq!(world.now(), Time(1));
    }

    #[test]
    fn scheduler_respects_max_rounds() {
        struct Forever;
        impl Actor for Forever {
            fn party(&self) -> PartyId {
                PartyId(0)
            }
            fn step(&mut self, _: &World, _: &mut Vec<Action>) {}
        }
        let mut world = World::new(1);
        world.add_chain("a");
        let mut actors: Vec<Box<dyn Actor>> = vec![Box::new(Forever)];
        let report = Scheduler::new(4).run(&mut world, &mut actors);
        assert_eq!(report.rounds(), 4);
        assert_eq!(world.now(), Time(4));
    }

    #[test]
    fn failed_calls_are_reported_not_fatal() {
        struct BadCaller {
            fired: bool,
        }
        impl Actor for BadCaller {
            fn party(&self) -> PartyId {
                PartyId(0)
            }
            fn step(&mut self, _world: &World, actions: &mut Vec<Action>) {
                if !self.fired {
                    actions.push(Action::call(
                        ContractAddr::new(ChainId(0), crate::ContractId(99)),
                        DepositMsg(Amount::new(1)),
                        "bad call",
                    ));
                    self.fired = true;
                }
            }
            fn done(&self) -> bool {
                self.fired
            }
        }
        let mut world = World::new(1);
        world.add_chain("a");
        let mut actors: Vec<Box<dyn Actor>> = vec![Box::new(BadCaller { fired: false })];
        let report = Scheduler::new(5).run(&mut world, &mut actors);
        assert_eq!(report.failures().len(), 1);
        assert!(!report.failures()[0].is_ok());
    }

    #[test]
    fn action_debug_formats() {
        let publish = Action::publish(ChainId(0), "x", Box::new(Pot::default()));
        let call = Action::call(
            ContractAddr::new(ChainId(0), crate::ContractId(1)),
            DepositMsg(Amount::new(1)),
            "deposit",
        );
        assert!(format!("{publish:?}").contains("Publish"));
        assert!(format!("{call:?}").contains("deposit"));
    }
}
