//! The smart-contract abstraction and its execution environment.

use std::any::Any;
use std::fmt;

use cryptosim::KeyDirectory;

use crate::amount::Amount;
use crate::caches::SimCaches;
use crate::error::ContractError;
use crate::events::{ChainEvent, EventKind, NoteText, TraceMode};
use crate::gas::GasSchedule;
use crate::ids::{AssetId, ChainId, ContractId, PartyId};
use crate::ledger::{AccountRef, Ledger};
use crate::spec::StateSpec;
use crate::time::Time;

/// Marker trait for typed contract messages.
///
/// Any `'static` type that is `Clone + Debug + Send` can be used as a
/// message; the blanket implementation below makes that automatic. Contracts
/// downcast the received `&dyn Any` to their own message type and reject
/// anything else with [`ContractError::UnsupportedMessage`].
///
/// Messages must be cloneable because chains with a non-zero finality depth
/// record the calls of every speculative round: a
/// [`ReorgEvent`](crate::ReorgEvent) rewinds those rounds and re-delivers
/// the recorded calls, which requires an owned copy of each message.
pub trait ContractMessage: Any + fmt::Debug + Send {
    /// Upcasts the message to [`Any`] for downcasting by contracts.
    fn as_any(&self) -> &dyn Any;

    /// Clones the message into a fresh box (used by the speculative-round
    /// call record that reorg injection replays).
    fn clone_message(&self) -> Box<dyn ContractMessage>;
}

impl<T: Any + Clone + fmt::Debug + Send> ContractMessage for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_message(&self) -> Box<dyn ContractMessage> {
        Box::new(self.clone())
    }
}

/// A blockchain-resident program.
///
/// Contracts are *passive, public, deterministic and trusted* (§3.1 of the
/// paper): they hold escrowed assets and premiums, and transfer them when
/// called with well-formed messages before the relevant deadlines. A
/// contract can only touch the ledger of the chain it resides on, which the
/// [`CallEnv`] enforces by construction.
pub trait Contract: fmt::Debug + Send {
    /// A short, stable name for the contract type (used in event logs).
    fn type_name(&self) -> &'static str;

    /// Clones the contract into a fresh box, preserving its full state.
    ///
    /// Snapshots ([`crate::World::snapshot`]) capture contract state by
    /// cloning every live contract, so every contract must be cloneable;
    /// concrete contracts derive [`Clone`] and implement this as
    /// `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn Contract>;

    /// Handles a call from `env.caller()` carrying the typed message `msg`.
    ///
    /// # Errors
    ///
    /// Implementations return a [`ContractError`] when the message is
    /// malformed, unauthorised, too early, too late, or inconsistent with
    /// the contract's current state. Calls are *transactional*: when
    /// `handle` returns an error, [`crate::Blockchain::call`] rolls back
    /// every ledger operation and note the implementation performed before
    /// failing and restores the contract's pre-call state, so a failed call
    /// can never half-apply. Gas consumed up to the failure stays charged,
    /// mirroring real chains.
    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError>;

    /// Upcasts to [`Any`] so observers can downcast to the concrete type and
    /// read its public state.
    fn as_any(&self) -> &dyn Any;

    /// The contract's static custody specification, if it declares one.
    ///
    /// Production contract families return a [`StateSpec`] describing their
    /// states, depositable funds and disposition edges so the `staticcheck`
    /// analyzer can prove disposition-completeness without executing calls;
    /// see the [`crate::spec`] module docs (exported via [`StateSpec`]) for
    /// the obligations a spec carries — custody fidelity, window fidelity
    /// and composite-state completeness. The default is `None`, which the
    /// analyzer treats as "opted out" (test doubles, fixtures).
    fn state_spec(&self) -> Option<StateSpec> {
        None
    }
}

/// The execution environment handed to a contract during a call.
///
/// The environment scopes every ledger mutation to the contract's own chain
/// and account: a contract can pull funds from the *caller* (who authorised
/// the movement by making the call), pay out of its own holdings, and move
/// funds it holds into another contract on the same chain (used by the
/// premium-bootstrapping protocol). It cannot touch arbitrary third-party
/// balances.
pub struct CallEnv<'a> {
    chain: ChainId,
    contract: ContractId,
    caller: PartyId,
    now: Time,
    ledger: &'a mut Ledger,
    events: &'a mut Vec<ChainEvent>,
    directory: &'a KeyDirectory,
    caches: &'a mut SimCaches,
    trace: TraceMode,
    gas_schedule: GasSchedule,
    gas_used: u64,
    /// Journal of applied ledger transfers, in execution order. The chain
    /// reverse-applies it when `handle` fails (and
    /// [`CallEnv::with_transaction`] reverse-applies its own suffix), so
    /// multi-op contract steps commit or roll back atomically. The backing
    /// `Vec` is pooled by the chain across calls.
    undo: Vec<UndoOp>,
    /// Event-log length at call entry; the rollback truncation floor.
    event_mark: usize,
}

/// One applied ledger transfer, with enough context to reverse it.
///
/// `from_before`/`to_before` record the touched balances before the
/// transfer; the rollback assertions (debug builds, or release with the
/// `strict-rollback` feature) verify each reversed operation restores them
/// exactly.
#[derive(Clone, Copy, Debug)]
pub(crate) struct UndoOp {
    from: AccountRef,
    to: AccountRef,
    asset: AssetId,
    amount: Amount,
    // Only read by the cfg-gated rollback audit below; a plain release
    // build (no debug assertions, no strict-rollback) never touches them.
    #[cfg_attr(not(any(debug_assertions, feature = "strict-rollback")), allow(dead_code))]
    from_before: Amount,
    #[cfg_attr(not(any(debug_assertions, feature = "strict-rollback")), allow(dead_code))]
    to_before: Amount,
}

impl<'a> CallEnv<'a> {
    /// Creates a call environment. Used by [`crate::Blockchain`]; protocol
    /// code never constructs one directly. The undo-journal allocation is
    /// pooled by the chain across calls (handed in here, reclaimed via
    /// [`CallEnv::into_undo_pool`] / [`CallEnv::rollback_all`] afterwards).
    ///
    /// The call's base gas cost ([`GasSchedule::call_base`]) is charged at
    /// construction: dispatching a contract step is work in itself.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_undo_pool(
        chain: ChainId,
        contract: ContractId,
        caller: PartyId,
        now: Time,
        ledger: &'a mut Ledger,
        events: &'a mut Vec<ChainEvent>,
        directory: &'a KeyDirectory,
        caches: &'a mut SimCaches,
        trace: TraceMode,
        gas_schedule: GasSchedule,
        mut undo: Vec<UndoOp>,
    ) -> Self {
        undo.clear();
        let event_mark = events.len();
        CallEnv {
            chain,
            contract,
            caller,
            now,
            ledger,
            events,
            directory,
            caches,
            trace,
            gas_schedule,
            gas_used: gas_schedule.call_base,
            undo,
            event_mark,
        }
    }

    /// Rolls back every ledger operation and note this call has applied so
    /// far, returning the journal's backing allocation to the caller. Used
    /// by [`crate::Blockchain::call`] when `handle` fails; gas already
    /// metered is deliberately left charged.
    pub(crate) fn rollback_all(mut self) -> Vec<UndoOp> {
        let event_mark = self.event_mark;
        self.rollback_to(0, event_mark);
        self.undo
    }

    /// Reclaims the pooled undo allocation after a successful call.
    pub(crate) fn into_undo_pool(self) -> Vec<UndoOp> {
        self.undo
    }

    /// Reverse-applies journal entries past `undo_mark` and truncates the
    /// event log to `event_mark` (never below the call-entry floor).
    fn rollback_to(&mut self, undo_mark: usize, event_mark: usize) {
        while self.undo.len() > undo_mark {
            let op = self.undo.pop().expect("length checked above");
            self.ledger
                .transfer(op.to, op.from, op.asset, op.amount)
                .expect("reversing an applied transfer cannot fail");
            #[cfg(any(debug_assertions, feature = "strict-rollback"))]
            {
                assert_eq!(
                    self.ledger.balance(op.from, op.asset),
                    op.from_before,
                    "rollback must restore the debited balance exactly"
                );
                assert_eq!(
                    self.ledger.balance(op.to, op.asset),
                    op.to_before,
                    "rollback must restore the credited balance exactly"
                );
            }
        }
        self.events.truncate(event_mark.max(self.event_mark));
    }

    /// Runs `f` inside an explicit commit/rollback frame.
    ///
    /// On `Ok` the frame commits: every ledger operation and note `f`
    /// performed stays applied. On `Err` the frame rolls back: transfers are
    /// reverse-applied in reverse order and notes emitted inside the frame
    /// are withdrawn, leaving the chain exactly as it was at frame entry —
    /// except gas, which stays charged for the work actually attempted.
    /// Frames nest: an inner rollback leaves the outer frame's effects
    /// intact.
    ///
    /// [`crate::Blockchain::call`] wraps every `handle` dispatch in an
    /// implicit outer frame, so plain contracts are transactional without
    /// opting in; `with_transaction` is for contracts that want to attempt a
    /// compound sub-step and fall back without failing the whole call.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after rolling the frame back.
    pub fn with_transaction<T>(
        &mut self,
        f: impl FnOnce(&mut CallEnv<'a>) -> Result<T, ContractError>,
    ) -> Result<T, ContractError> {
        let undo_mark = self.undo.len();
        let event_mark = self.events.len();
        match f(self) {
            Ok(value) => Ok(value),
            Err(err) => {
                self.rollback_to(undo_mark, event_mark);
                Err(err)
            }
        }
    }

    /// The public-key directory used to verify signatures on hashkey paths.
    pub fn directory(&self) -> &KeyDirectory {
        self.directory
    }

    /// The world's memoisation store (see [`SimCaches`]).
    ///
    /// Contracts may use it to skip recomputing work whose result is a pure
    /// function of already-validated inputs (e.g. signature-chain
    /// verification). Entries live for the lifetime of the [`crate::World`],
    /// across [`crate::World::reset`] and snapshot restores, so anything
    /// stored here must affect *performance only* — never outcomes.
    pub fn caches(&mut self) -> &mut SimCaches {
        self.caches
    }

    /// The chain this contract resides on.
    pub fn chain(&self) -> ChainId {
        self.chain
    }

    /// This contract's id.
    pub fn contract_id(&self) -> ContractId {
        self.contract
    }

    /// The party making the call.
    pub fn caller(&self) -> PartyId {
        self.caller
    }

    /// The current block height.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Returns an error if the deadline has already been reached.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::TooLate`] when `now >= deadline`.
    pub fn ensure_before(&self, deadline: Time) -> Result<(), ContractError> {
        if self.now.has_reached(deadline) {
            Err(ContractError::TooLate { deadline, now: self.now })
        } else {
            Ok(())
        }
    }

    /// Returns an error if `not_before` has not yet been reached.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::TooEarly`] when `now < not_before`.
    pub fn ensure_reached(&self, not_before: Time) -> Result<(), ContractError> {
        if self.now.has_reached(not_before) {
            Ok(())
        } else {
            Err(ContractError::TooEarly { not_before, now: self.now })
        }
    }

    /// The gas this call has burned so far (base dispatch cost included).
    ///
    /// Gas is a pure function of the call's semantics — ledger operations
    /// performed, notes emitted, explicit [`CallEnv::charge_gas`] charges —
    /// and is independent of [`TraceMode`], threading and wall-clock time.
    pub fn gas_used(&self) -> u64 {
        self.gas_used
    }

    /// The gas cost table this call is metered against.
    pub fn gas_schedule(&self) -> GasSchedule {
        self.gas_schedule
    }

    /// Charges `extra` gas for contract-specific work (signature-chain
    /// verification, bid comparisons, …) beyond the per-ledger-op charges
    /// the environment applies automatically.
    pub fn charge_gas(&mut self, extra: u64) {
        self.gas_used += extra;
    }

    /// Returns the balance this contract holds in `asset`.
    pub fn contract_balance(&self, asset: AssetId) -> Amount {
        self.ledger.balance(AccountRef::Contract(self.contract), asset)
    }

    /// Returns the caller's balance in `asset`.
    pub fn caller_balance(&self, asset: AssetId) -> Amount {
        self.ledger.balance(AccountRef::Party(self.caller), asset)
    }

    /// Moves `amount` of `asset` from the caller into this contract.
    ///
    /// The caller authorised the movement by making the call, mirroring how
    /// value is attached to a contract call on real chains.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors (insufficient balance, zero transfer).
    pub fn debit_caller(&mut self, asset: AssetId, amount: Amount) -> Result<(), ContractError> {
        self.transfer_internal(
            AccountRef::Party(self.caller),
            AccountRef::Contract(self.contract),
            asset,
            amount,
        )
    }

    /// Pays `amount` of `asset` from this contract's holdings to `to`.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors (insufficient contract balance).
    pub fn pay_out(
        &mut self,
        to: PartyId,
        asset: AssetId,
        amount: Amount,
    ) -> Result<(), ContractError> {
        self.transfer_internal(
            AccountRef::Contract(self.contract),
            AccountRef::Party(to),
            asset,
            amount,
        )
    }

    /// Moves `amount` of `asset` from this contract into another contract on
    /// the same chain.
    ///
    /// Used by the bootstrapping protocol, where a redeemed "principal" is in
    /// fact a premium destined for the next-round escrow contract.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors (insufficient contract balance).
    pub fn pay_into_contract(
        &mut self,
        to: ContractId,
        asset: AssetId,
        amount: Amount,
    ) -> Result<(), ContractError> {
        self.transfer_internal(
            AccountRef::Contract(self.contract),
            AccountRef::Contract(to),
            asset,
            amount,
        )
    }

    /// Emits a structured note into the chain event log (a no-op under
    /// [`TraceMode::Off`]). The note's gas cost is charged either way: gas
    /// must not depend on whether the world happens to be tracing.
    pub fn emit_note(&mut self, text: impl Into<NoteText>) {
        self.gas_used += self.gas_schedule.note;
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.now,
                kind: EventKind::Note { contract: self.contract, text: text.into() },
            });
        }
    }

    fn transfer_internal(
        &mut self,
        from: AccountRef,
        to: AccountRef,
        asset: AssetId,
        amount: Amount,
    ) -> Result<(), ContractError> {
        if amount.is_zero() {
            // Zero-value escrow slots are legal no-ops at the protocol layer
            // (and free: no ledger operation is executed).
            return Ok(());
        }
        let from_before = self.ledger.balance(from, asset);
        let to_before = self.ledger.balance(to, asset);
        self.ledger.transfer(from, to, asset, amount)?;
        self.undo.push(UndoOp { from, to, asset, amount, from_before, to_before });
        self.gas_used += self.gas_schedule.ledger_op;
        if self.trace.is_full() {
            self.events.push(ChainEvent {
                height: self.now,
                kind: EventKind::Transfer { from, to, asset, amount },
            });
        }
        Ok(())
    }
}

impl fmt::Debug for CallEnv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CallEnv")
            .field("chain", &self.chain)
            .field("contract", &self.contract)
            .field("caller", &self.caller)
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_directory() -> &'static KeyDirectory {
        use std::sync::OnceLock;
        static DIR: OnceLock<KeyDirectory> = OnceLock::new();
        DIR.get_or_init(KeyDirectory::new)
    }

    fn env_fixture<'a>(
        ledger: &'a mut Ledger,
        events: &'a mut Vec<ChainEvent>,
        caches: &'a mut SimCaches,
        now: Time,
    ) -> CallEnv<'a> {
        CallEnv::with_undo_pool(
            ChainId(0),
            ContractId(7),
            PartyId(1),
            now,
            ledger,
            events,
            empty_directory(),
            caches,
            TraceMode::Full,
            GasSchedule::DEFAULT,
            Vec::new(),
        )
    }

    #[test]
    fn trace_off_skips_events_but_moves_funds() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        ledger.mint(AccountRef::Party(PartyId(1)), AssetId(0), Amount::new(10));
        {
            let mut env = CallEnv::with_undo_pool(
                ChainId(0),
                ContractId(7),
                PartyId(1),
                Time(2),
                &mut ledger,
                &mut events,
                empty_directory(),
                &mut caches,
                TraceMode::Off,
                GasSchedule::DEFAULT,
                Vec::new(),
            );
            env.debit_caller(AssetId(0), Amount::new(4)).unwrap();
            env.emit_note("invisible");
            // Gas is metered identically with tracing off.
            let schedule = GasSchedule::DEFAULT;
            assert_eq!(env.gas_used(), schedule.call_base + schedule.ledger_op + schedule.note);
        }
        assert!(events.is_empty(), "TraceMode::Off must not record events");
        assert_eq!(ledger.balance(AccountRef::Contract(ContractId(7)), AssetId(0)), Amount::new(4));
    }

    #[test]
    fn debit_and_pay_out_move_funds_and_log_events() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        ledger.mint(AccountRef::Party(PartyId(1)), AssetId(0), Amount::new(10));
        {
            let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(2));
            env.debit_caller(AssetId(0), Amount::new(4)).unwrap();
            assert_eq!(env.contract_balance(AssetId(0)), Amount::new(4));
            assert_eq!(env.caller_balance(AssetId(0)), Amount::new(6));
            env.pay_out(PartyId(2), AssetId(0), Amount::new(1)).unwrap();
            env.emit_note("escrowed principal");
        }
        assert_eq!(ledger.balance(AccountRef::Party(PartyId(2)), AssetId(0)), Amount::new(1));
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0].kind, EventKind::Transfer { .. }));
        assert!(matches!(events[2].kind, EventKind::Note { .. }));
    }

    #[test]
    fn zero_transfers_are_noops() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(0));
        env.debit_caller(AssetId(0), Amount::ZERO).unwrap();
        env.pay_out(PartyId(2), AssetId(0), Amount::ZERO).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn deadline_helpers() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        let env = env_fixture(&mut ledger, &mut events, &mut caches, Time(5));
        assert!(env.ensure_before(Time(6)).is_ok());
        assert!(matches!(env.ensure_before(Time(5)), Err(ContractError::TooLate { .. })));
        assert!(env.ensure_reached(Time(5)).is_ok());
        assert!(matches!(env.ensure_reached(Time(6)), Err(ContractError::TooEarly { .. })));
    }

    #[test]
    fn pay_into_contract_moves_between_contracts() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        ledger.mint(AccountRef::Contract(ContractId(7)), AssetId(0), Amount::new(3));
        let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(0));
        env.pay_into_contract(ContractId(9), AssetId(0), Amount::new(3)).unwrap();
        assert_eq!(ledger.balance(AccountRef::Contract(ContractId(9)), AssetId(0)), Amount::new(3));
    }

    #[test]
    fn debit_fails_on_insufficient_funds() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(0));
        assert!(matches!(
            env.debit_caller(AssetId(0), Amount::new(1)),
            Err(ContractError::Ledger(_))
        ));
    }

    #[test]
    fn env_accessors_and_debug() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        let env = env_fixture(&mut ledger, &mut events, &mut caches, Time(3));
        assert_eq!(env.chain(), ChainId(0));
        assert_eq!(env.contract_id(), ContractId(7));
        assert_eq!(env.caller(), PartyId(1));
        assert_eq!(env.now(), Time(3));
        assert!(format!("{env:?}").contains("CallEnv"));
    }

    #[test]
    fn contract_message_blanket_impl() {
        #[derive(Clone, Debug)]
        struct Ping;
        let msg: Box<dyn ContractMessage> = Box::new(Ping);
        // Call through the trait object (not a `Box` blanket impl) so the
        // concrete type seen by `Any` is `Ping`.
        assert!(msg.as_ref().as_any().downcast_ref::<Ping>().is_some());
        // Cloning through the trait object preserves the concrete type.
        let cloned = msg.as_ref().clone_message();
        assert!(cloned.as_ref().as_any().downcast_ref::<Ping>().is_some());
    }

    #[test]
    fn with_transaction_commits_on_ok_and_rolls_back_on_err() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        ledger.mint(AccountRef::Party(PartyId(1)), AssetId(0), Amount::new(10));
        let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(2));

        // Committed frame: effects stay.
        env.with_transaction(|env| {
            env.debit_caller(AssetId(0), Amount::new(4))?;
            env.emit_note("kept");
            Ok(())
        })
        .unwrap();
        assert_eq!(env.contract_balance(AssetId(0)), Amount::new(4));

        // Rolled-back frame: the mid-frame transfer and note are withdrawn,
        // the committed frame above is untouched, gas stays charged.
        let gas_before = env.gas_used();
        let err = env
            .with_transaction(|env| {
                env.debit_caller(AssetId(0), Amount::new(5))?;
                env.emit_note("withdrawn");
                Err::<(), _>(ContractError::invalid_state("abort"))
            })
            .unwrap_err();
        assert!(matches!(err, ContractError::InvalidState { .. }));
        assert_eq!(env.contract_balance(AssetId(0)), Amount::new(4));
        assert_eq!(env.caller_balance(AssetId(0)), Amount::new(6));
        assert!(env.gas_used() > gas_before, "attempted work stays metered");
        drop(env);
        let notes: Vec<String> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Note { .. }))
            .map(|e| e.to_string())
            .collect();
        assert_eq!(notes.len(), 1, "the rolled-back note is withdrawn: {notes:?}");
        assert!(notes[0].contains("kept"));
    }

    #[test]
    fn nested_transactions_roll_back_only_the_inner_frame() {
        let mut ledger = Ledger::new();
        let mut events = Vec::new();
        let mut caches = SimCaches::new();
        ledger.mint(AccountRef::Party(PartyId(1)), AssetId(0), Amount::new(10));
        let mut env = env_fixture(&mut ledger, &mut events, &mut caches, Time(2));
        env.with_transaction(|env| {
            env.debit_caller(AssetId(0), Amount::new(2))?;
            let inner: Result<(), ContractError> = env.with_transaction(|env| {
                env.debit_caller(AssetId(0), Amount::new(3))?;
                Err(ContractError::invalid_state("inner abort"))
            });
            assert!(inner.is_err());
            // The outer frame's transfer survived the inner rollback.
            assert_eq!(env.contract_balance(AssetId(0)), Amount::new(2));
            Ok(())
        })
        .unwrap();
        assert_eq!(env.contract_balance(AssetId(0)), Amount::new(2));
        assert_eq!(env.caller_balance(AssetId(0)), Amount::new(8));
    }
}
