//! Property-based tests for `Amount` and `Payoff` arithmetic: checked
//! operations never wrap, saturation semantics hold, and the algebra
//! (commutativity, associativity, inverses, conversions) is consistent.

use chainsim::{Amount, Payoff};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `checked_add` agrees with u128 arithmetic and never wraps.
    #[test]
    fn checked_add_matches_u128(x in 0u128..=u128::MAX, y in 0u128..=u128::MAX) {
        let a = Amount::new(x);
        let b = Amount::new(y);
        match x.checked_add(y) {
            Some(sum) => {
                prop_assert_eq!(a.checked_add(b), Some(Amount::new(sum)));
                prop_assert_eq!(a + b, Amount::new(sum));
            }
            None => prop_assert_eq!(a.checked_add(b), None),
        }
    }

    /// Subtraction is the inverse of addition wherever the sum exists.
    #[test]
    fn sub_inverts_add(x in 0u128..1u128 << 100, y in 0u128..1u128 << 100) {
        let a = Amount::new(x);
        let b = Amount::new(y);
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!((a + b).checked_sub(a), Some(b));
    }

    /// `checked_sub` underflows to `None` exactly when the subtrahend is
    /// larger; `saturating_sub` clamps to zero in exactly those cases.
    #[test]
    fn saturation_semantics(x in 0u128..=u128::MAX, y in 0u128..=u128::MAX) {
        let a = Amount::new(x);
        let b = Amount::new(y);
        if y > x {
            prop_assert_eq!(a.checked_sub(b), None);
            prop_assert_eq!(a.saturating_sub(b), Amount::ZERO);
        } else {
            prop_assert_eq!(a.checked_sub(b), Some(Amount::new(x - y)));
            prop_assert_eq!(a.saturating_sub(b), Amount::new(x - y));
        }
    }

    /// Addition is commutative and associative (on a range with headroom).
    #[test]
    fn add_commutes_and_associates(
        x in 0u128..1u128 << 100,
        y in 0u128..1u128 << 100,
        z in 0u128..1u128 << 100,
    ) {
        let (a, b, c) = (Amount::new(x), Amount::new(y), Amount::new(z));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// `scaled` and `divided_by` agree with integer arithmetic and compose:
    /// scaling then dividing by the same factor is the identity.
    #[test]
    fn scale_divide_roundtrip(x in 0u128..1u128 << 64, factor in 1u128..1u128 << 32) {
        let a = Amount::new(x);
        prop_assert_eq!(a.scaled(factor), Amount::new(x * factor));
        prop_assert_eq!(a.scaled(factor).divided_by(factor), a);
        // Floor division loses at most the remainder.
        let floored = a.divided_by(factor);
        prop_assert!(floored.scaled(factor) <= a);
        prop_assert!(a - floored.scaled(factor) < Amount::new(factor));
    }

    /// Sums of amounts match the u128 sum (within overflow-safe bounds).
    #[test]
    fn sum_matches_scalar_sum(values in 0usize..12, seed in 0u64..1_000) {
        let raw: Vec<u128> = (0..values)
            .map(|i| u128::from(seed.wrapping_mul(i as u64 + 1)) % (1 << 90))
            .collect();
        let expected: u128 = raw.iter().sum();
        let total: Amount = raw.iter().copied().map(Amount::new).sum();
        prop_assert_eq!(total, Amount::new(expected));
    }

    /// Payoff credit/debit round-trips an amount, and `as_payoff` embeds
    /// amounts faithfully.
    #[test]
    fn payoff_credit_debit_roundtrip(x in 0u128..1u128 << 100, start in -(1i128 << 100)..1i128 << 100) {
        let p = Payoff::new(start);
        let a = Amount::new(x);
        prop_assert_eq!(p.credit(a).debit(a), p);
        prop_assert_eq!(Amount::new(x).as_payoff(), Payoff::new(x as i128));
        prop_assert_eq!(p.credit(a), p + a.as_payoff());
    }

    /// `is_loss` / `is_non_negative` partition the payoff space.
    #[test]
    fn payoff_sign_predicates(v in -(1i128 << 120)..1i128 << 120) {
        let p = Payoff::new(v);
        prop_assert_eq!(p.is_loss(), v < 0);
        prop_assert_ne!(p.is_loss(), p.is_non_negative());
    }
}
