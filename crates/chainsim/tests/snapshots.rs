//! Edge-case coverage for `World::snapshot` / `World::restore`: the
//! checkpoint primitive under the model checker's deviation-tree sweeps.
//!
//! The determinism contract: a restored world is indistinguishable from the
//! world at snapshot time — across trace modes, after failed contract
//! calls, and under repeated restores from the same snapshot.

use std::any::Any;

use chainsim::{
    AccountRef, Amount, AssetId, CallEnv, ChainError, Contract, ContractError, PartyId, Time,
    TraceMode, World,
};

/// A contract holding a deposit that can also be asked to fail.
#[derive(Clone, Debug, Default)]
struct Vault {
    total: Amount,
    calls: u64,
}

#[derive(Clone, Debug)]
enum VaultMsg {
    Deposit(Amount),
    /// Debits the caller, emits a note, and *then* fails: a multi-op call
    /// whose partial effects the transactional frame must roll back.
    DepositThenFail(Amount),
    Fail,
}

impl Contract for Vault {
    fn type_name(&self) -> &'static str {
        "Vault"
    }
    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg = msg.downcast_ref::<VaultMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            VaultMsg::Deposit(amount) => {
                env.debit_caller(AssetId(0), *amount)?;
                self.total += *amount;
                self.calls += 1;
                Ok(())
            }
            VaultMsg::DepositThenFail(amount) => {
                env.debit_caller(AssetId(0), *amount)?;
                self.total += *amount;
                self.calls += 1;
                env.emit_note("about to fail");
                Err(ContractError::invalid_state("asked to fail after depositing"))
            }
            VaultMsg::Fail => {
                self.calls += 1;
                Err(ContractError::invalid_state("asked to fail"))
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn build_world(trace: TraceMode) -> (World, chainsim::ContractAddr) {
    let mut world = World::with_trace(1, trace);
    let chain = world.add_chain("apricot");
    world.chain_mut(chain).mint(PartyId(0), AssetId(0), Amount::new(100));
    let addr = world.publish_labeled(chain, PartyId(0), "vault", Box::new(Vault::default()));
    world.call(PartyId(0), addr, &VaultMsg::Deposit(Amount::new(30)), "deposit").unwrap();
    world.advance_delta();
    (world, addr)
}

fn observable_state(
    world: &World,
    addr: chainsim::ContractAddr,
) -> (Amount, Amount, u64, Time, usize) {
    let chain = world.chain(addr.chain);
    let vault = chain.contract_as::<Vault>(addr.contract).unwrap();
    (
        chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)),
        chain.balance(AccountRef::Contract(addr.contract), AssetId(0)),
        vault.calls,
        world.now(),
        chain.events().len(),
    )
}

#[test]
fn restore_is_identical_across_trace_modes() {
    // The same protocol history replayed under Off and Full must restore to
    // worlds whose balance-visible state agrees; each world's own restore
    // must be exact, including the event log (empty under Off).
    let mut states = Vec::new();
    for trace in [TraceMode::Off, TraceMode::Full] {
        let (mut world, addr) = build_world(trace);
        let snap = world.snapshot();
        // Diverge, then restore.
        world.call(PartyId(0), addr, &VaultMsg::Deposit(Amount::new(10)), "later").unwrap();
        world.advance_delta();
        world.restore(&snap);
        let state = observable_state(&world, addr);
        assert_eq!(world.trace_mode(), trace, "restore preserves the snapshot's trace mode");
        match trace {
            TraceMode::Off => assert_eq!(state.4, 0, "Off worlds restore with no events"),
            TraceMode::Full => assert!(state.4 > 0, "Full worlds restore their event log"),
        }
        states.push((state.0, state.1, state.2, state.3));
    }
    assert_eq!(states[0], states[1], "balance-visible state agrees across trace modes");
}

#[test]
fn restore_after_a_failed_call_discards_its_side_effects() {
    let (mut world, addr) = build_world(TraceMode::Full);
    let snap = world.snapshot();

    // A failing call is rolled back transactionally, but it still appends a
    // CallFailed event (and burns gas) before erroring.
    let err = world.call(PartyId(0), addr, &VaultMsg::Fail, "fail").unwrap_err();
    assert!(matches!(err, ChainError::ContractFailed { .. }));
    assert_ne!(observable_state(&world, addr), observable_state_of_snapshot(&snap, addr));

    world.restore(&snap);
    assert_eq!(observable_state(&world, addr), observable_state_of_snapshot(&snap, addr));

    // The restored world is fully functional: the same call fails the same
    // way, and a valid call succeeds.
    let err = world.call(PartyId(0), addr, &VaultMsg::Fail, "fail again").unwrap_err();
    assert!(matches!(err, ChainError::ContractFailed { .. }));
    world.restore(&snap);
    world.call(PartyId(0), addr, &VaultMsg::Deposit(Amount::new(5)), "retry").unwrap();
    let chain = world.chain(addr.chain);
    assert_eq!(chain.balance(AccountRef::Contract(addr.contract), AssetId(0)), Amount::new(35));
}

/// Renders a snapshot's observable state by restoring it into a throwaway
/// world (snapshots are opaque by design).
fn observable_state_of_snapshot(
    snap: &chainsim::WorldSnapshot,
    addr: chainsim::ContractAddr,
) -> (Amount, Amount, u64, Time, usize) {
    let mut probe = World::new(1);
    probe.restore(snap);
    observable_state(&probe, addr)
}

#[test]
fn double_restore_from_the_same_snapshot_is_idempotent() {
    let (mut world, addr) = build_world(TraceMode::Full);
    let snap = world.snapshot();

    world.call(PartyId(0), addr, &VaultMsg::Deposit(Amount::new(7)), "a").unwrap();
    world.restore(&snap);
    let first = observable_state(&world, addr);

    world.call(PartyId(0), addr, &VaultMsg::Deposit(Amount::new(22)), "b").unwrap();
    world.advance_delta();
    world.advance_delta();
    world.restore(&snap);
    let second = observable_state(&world, addr);

    assert_eq!(first, second, "every restore reproduces the same state");
    assert_eq!(first, observable_state_of_snapshot(&snap, addr));
}

#[test]
fn snapshots_skip_retired_spare_shells() {
    // Run a two-chain scenario, reset (retiring both chains), then build a
    // one-chain scenario: the snapshot must capture the single live chain
    // only, not the recycled shells from earlier runs.
    let mut world = World::new(1);
    let a = world.add_chain("a");
    world.add_chain("b");
    world.chain_mut(a).mint(PartyId(0), AssetId(0), Amount::new(50));

    world.reset(1);
    let c = world.add_chain("c");
    world.chain_mut(c).mint(PartyId(1), AssetId(0), Amount::new(9));
    let snap = world.snapshot();
    assert_eq!(snap.chain_count(), 1, "spare shells hold no balances and are not captured");

    // Restoring into a world with *more* live chains retires the surplus.
    let mut other = World::new(1);
    other.add_chain("x");
    other.add_chain("y");
    other.add_chain("z");
    other.restore(&snap);
    assert_eq!(other.chain_count(), 1);
    assert_eq!(other.party_balance(PartyId(1), AssetId(0)), Amount::new(9));
    // The retired shells are recycled by later add_chain calls.
    let recycled = other.add_chain("w");
    assert_eq!(recycled.0, 1);
}

#[test]
fn failed_calls_charge_gas_but_leave_zero_residue() {
    // Pin of the transactional-call contract: a multi-op call that debits
    // the caller, emits a note and then fails must charge gas for the work
    // attempted while leaving ledger, notes and contract state untouched.
    let (mut world, addr) = build_world(TraceMode::Full);
    let chain = world.chain(addr.chain);
    let schedule = chain.gas_schedule();
    let gas_before = chain.gas_meter().total();
    let party_before = chain.balance(AccountRef::Party(PartyId(0)), AssetId(0));
    let vault_before = chain.balance(AccountRef::Contract(addr.contract), AssetId(0));
    let calls_before = chain.contract_as::<Vault>(addr.contract).unwrap().calls;
    let notes_before = chain
        .events()
        .iter()
        .filter(|e| matches!(e.kind, chainsim::EventKind::Note { .. }))
        .count();

    let err = world
        .call(PartyId(0), addr, &VaultMsg::DepositThenFail(Amount::new(40)), "doomed")
        .unwrap_err();
    assert!(matches!(err, ChainError::ContractFailed { .. }));

    let chain = world.chain(addr.chain);
    // Gas is charged for everything the call attempted: dispatch, the
    // rolled-back transfer, and the withdrawn note.
    assert_eq!(
        chain.gas_meter().total() - gas_before,
        schedule.call_base + schedule.ledger_op + schedule.note,
        "failed calls still pay for the work attempted"
    );
    assert_eq!(
        chain.gas_meter().last_call(),
        schedule.call_base + schedule.ledger_op + schedule.note
    );
    // ...but zero residue remains.
    assert_eq!(chain.balance(AccountRef::Party(PartyId(0)), AssetId(0)), party_before);
    assert_eq!(chain.balance(AccountRef::Contract(addr.contract), AssetId(0)), vault_before);
    assert_eq!(chain.contract_as::<Vault>(addr.contract).unwrap().calls, calls_before);
    let notes_after = chain
        .events()
        .iter()
        .filter(|e| matches!(e.kind, chainsim::EventKind::Note { .. }))
        .count();
    assert_eq!(notes_after, notes_before, "notes from the failed call are withdrawn");
    // Conservation: total supply of the asset is untouched.
    assert_eq!(chain.ledger().total_supply(AssetId(0)), Amount::new(100));
}

#[test]
fn restore_rebuilds_label_and_asset_registries() {
    let (mut world, addr) = build_world(TraceMode::Off);
    let snap = world.snapshot();

    world.reset(3);
    assert_eq!(world.lookup("vault"), None);

    world.restore(&snap);
    assert_eq!(world.lookup("vault"), Some(addr));
    assert_eq!(world.delta_blocks(), 1);
    assert_eq!(world.asset_name(AssetId(0)), Some("apricot-native"));
    // Publishing after a restore continues from the snapshot's contract ids.
    let chain = addr.chain;
    let next = world.publish_labeled(chain, PartyId(0), "vault2", Box::new(Vault::default()));
    assert_eq!(next.contract.0, addr.contract.0 + 1);
}
