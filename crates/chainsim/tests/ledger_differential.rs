//! Differential testing of the dense [`Ledger`] against the map-backed
//! [`MapLedger`] oracle.
//!
//! The dense ledger replaced the original `BTreeMap<(AccountRef, AssetId),
//! Amount>` layout on the simulator's hot path; the original implementation
//! is retained verbatim as `MapLedger` (behind the default
//! `map-ledger-oracle` feature) precisely so these properties can pin that
//! the two agree on arbitrary operation sequences — balances, iteration
//! order, asset lists, total supplies, and the error paths.

#![cfg(feature = "map-ledger-oracle")]

use chainsim::{AccountRef, Amount, AssetId, ContractId, Ledger, MapLedger, PartyId};
use proptest::prelude::*;
use proptest::{Strategy, TestRunner};

/// One randomly generated ledger operation.
#[derive(Clone, Debug)]
enum Op {
    Mint { account: AccountRef, asset: AssetId, amount: Amount },
    Transfer { from: AccountRef, to: AccountRef, asset: AssetId, amount: Amount },
}

/// Draws a short sequence of operations over a deliberately small id space
/// (6 parties, 6 contracts, 5 assets, amounts 0..40) so that accounts
/// collide, transfers overdraw, and zero-value transfers occur — the full
/// behaviour surface of both implementations.
struct OpsStrategy {
    max_len: u64,
}

fn account(bits: u64) -> AccountRef {
    if bits.is_multiple_of(2) {
        AccountRef::Party(PartyId(((bits >> 1) % 6) as u32))
    } else {
        AccountRef::Contract(ContractId((bits >> 1) % 6))
    }
}

impl Strategy for OpsStrategy {
    type Value = Vec<Op>;

    fn sample(&self, runner: &mut TestRunner) -> Vec<Op> {
        let len = runner.next_u64() % self.max_len;
        (0..len)
            .map(|_| {
                let kind = runner.next_u64();
                let asset = AssetId((runner.next_u64() % 5) as u32);
                let amount = Amount::new(u128::from(runner.next_u64() % 40));
                if kind.is_multiple_of(3) {
                    Op::Mint { account: account(runner.next_u64()), asset, amount }
                } else {
                    Op::Transfer {
                        from: account(runner.next_u64()),
                        to: account(runner.next_u64()),
                        asset,
                        amount,
                    }
                }
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Applying any operation sequence leaves the dense ledger and the map
    /// oracle in observably identical states, and every intermediate
    /// result (including the insufficient-funds and zero-transfer error
    /// paths) matches exactly.
    #[test]
    fn dense_ledger_matches_the_map_oracle(ops in OpsStrategy { max_len: 60 }) {
        let mut dense = Ledger::new();
        let mut map = MapLedger::new();
        for op in &ops {
            match op {
                Op::Mint { account, asset, amount } => {
                    dense.mint(*account, *asset, *amount);
                    map.mint(*account, *asset, *amount);
                }
                Op::Transfer { from, to, asset, amount } => {
                    let d = dense.transfer(*from, *to, *asset, *amount);
                    let m = map.transfer(*from, *to, *asset, *amount);
                    match (&d, &m) {
                        (Ok(()), Ok(())) => {}
                        (Err(de), Err(me)) => prop_assert_eq!(
                            de.clone(),
                            me.clone(),
                            "errors diverged for {:?}",
                            op
                        ),
                        _ => prop_assert!(false, "results diverged: dense={:?}, map={:?}", d, m),
                    }
                }
            }

            // Observable state agrees after every single operation.
            let dense_entries: Vec<_> = dense.iter().collect();
            let map_entries: Vec<_> = map.iter().collect();
            prop_assert_eq!(&dense_entries, &map_entries, "iteration diverged");
            prop_assert_eq!(dense.assets(), map.assets(), "asset lists diverged");
        }

        // Full cross-product of balances and supplies at the end.
        for p in 0..8u32 {
            for a in 0..6u32 {
                let party = AccountRef::Party(PartyId(p));
                let contract = AccountRef::Contract(ContractId(u64::from(p)));
                prop_assert_eq!(dense.balance(party, AssetId(a)), map.balance(party, AssetId(a)));
                prop_assert_eq!(
                    dense.balance(contract, AssetId(a)),
                    map.balance(contract, AssetId(a))
                );
                prop_assert_eq!(dense.total_supply(AssetId(a)), map.total_supply(AssetId(a)));
            }
        }
    }

    /// `clear` returns the dense ledger to a state indistinguishable from a
    /// fresh one, so pooled worlds cannot leak state between scenarios.
    #[test]
    fn cleared_dense_ledger_behaves_like_fresh(ops in OpsStrategy { max_len: 40 }) {
        let mut dense = Ledger::new();
        for op in &ops {
            match op {
                Op::Mint { account, asset, amount } => dense.mint(*account, *asset, *amount),
                Op::Transfer { from, to, asset, amount } => {
                    let _ = dense.transfer(*from, *to, *asset, *amount);
                }
            }
        }
        dense.clear();
        prop_assert_eq!(dense.iter().count(), 0);
        prop_assert!(dense.assets().is_empty());

        // Replay the same sequence against the cleared ledger and a fresh
        // oracle: they must agree exactly.
        let mut map = MapLedger::new();
        for op in &ops {
            match op {
                Op::Mint { account, asset, amount } => {
                    dense.mint(*account, *asset, *amount);
                    map.mint(*account, *asset, *amount);
                }
                Op::Transfer { from, to, asset, amount } => {
                    let d = dense.transfer(*from, *to, *asset, *amount);
                    let m = map.transfer(*from, *to, *asset, *amount);
                    prop_assert_eq!(d.is_ok(), m.is_ok());
                }
            }
        }
        let dense_entries: Vec<_> = dense.iter().collect();
        let map_entries: Vec<_> = map.iter().collect();
        prop_assert_eq!(dense_entries, map_entries);
    }
}
