//! Offline stand-in for the `hex` crate (encode/decode subset).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Encodes bytes as a lowercase hex string.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let data = data.as_ref();
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

/// An invalid hex input passed to [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FromHexError;

impl std::fmt::Display for FromHexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid hex input")
    }
}

impl std::error::Error for FromHexError {}

/// Decodes a hex string into bytes.
pub fn decode(data: impl AsRef<[u8]>) -> Result<Vec<u8>, FromHexError> {
    let data = data.as_ref();
    if data.len() % 2 != 0 {
        return Err(FromHexError);
    }
    fn nibble(b: u8) -> Result<u8, FromHexError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(FromHexError),
        }
    }
    data.chunks_exact(2).map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?)).collect()
}

#[cfg(test)]
mod tests {
    use super::{decode, encode, FromHexError};

    #[test]
    fn roundtrip() {
        let bytes = [0x00, 0x01, 0xab, 0xff];
        let text = encode(bytes);
        assert_eq!(text, "0001abff");
        assert_eq!(decode(text).unwrap(), bytes);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(FromHexError));
        assert_eq!(decode("zz"), Err(FromHexError));
        assert_eq!(decode("ABCD").unwrap(), [0xab, 0xcd]);
    }
}
