//! Offline stand-in for `thiserror`'s `#[derive(Error)]`.
//!
//! Parses the token stream by hand (no `syn`/`quote` in this offline build)
//! and supports the subset of thiserror this workspace uses:
//!
//! * enums with unit, named-struct and tuple variants (no generics);
//! * `#[error("…")]` format strings with inline named captures
//!   (`{field}`, `{field:?}`) on struct variants and positional
//!   arguments (`{0}`) on tuple variants;
//! * `#[from]` on a single field of a variant, generating a `From` impl
//!   and wiring the field up as `Error::source`;
//! * a field literally named `source` also becomes `Error::source`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of an enum variant.
struct Field {
    /// Named-field name, or `None` for tuple fields.
    name: Option<String>,
    /// The field's type, re-rendered as source text.
    ty: String,
    /// Whether the field carried `#[from]`.
    from: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// The `#[error("…")]` literal, verbatim including quotes.
    format: String,
    /// `None` = unit, `Some((named, fields))`.
    fields: Option<(bool, Vec<Field>)>,
}

/// Derives `Display`, `std::error::Error` and `From` impls.
#[proc_macro_derive(Error, attributes(error, source, from, backtrace))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out.parse().expect("thiserror stub emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_item(&tokens)?;
    let variants = parse_variants(body)?;

    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();

    for v in &variants {
        let Variant { name: vname, format, fields } = v;
        match fields {
            None => {
                display_arms.push_str(&format!(
                    "{name}::{vname} => ::core::write!(__formatter, {format}),\n"
                ));
            }
            Some((named, fields)) if *named => {
                let binders: Vec<&str> =
                    fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                let pat = binders.join(", ");
                display_arms.push_str(&format!(
                    "{name}::{vname} {{ {pat} }} => ::core::write!(__formatter, {format}),\n"
                ));
                if let Some(f) =
                    fields.iter().find(|f| f.from || f.name.as_deref() == Some("source"))
                {
                    let field = f.name.as_deref().unwrap();
                    source_arms.push_str(&format!(
                        "{name}::{vname} {{ {field}, .. }} => ::core::option::Option::Some({field}),\n"
                    ));
                }
            }
            Some((_, fields)) => {
                let binders: Vec<String> =
                    (0..fields.len()).map(|i| format!("__field{i}")).collect();
                let pat = binders.join(", ");
                let args = binders.join(", ");
                display_arms.push_str(&format!(
                    "{name}::{vname}({pat}) => ::core::write!(__formatter, {format}, {args}),\n"
                ));
                if let Some(i) = fields.iter().position(|f| f.from) {
                    let mut pat_src = vec!["_"; fields.len()];
                    pat_src[i] = "__source";
                    let pat_src = pat_src.join(", ");
                    source_arms.push_str(&format!(
                        "{name}::{vname}({pat_src}) => ::core::option::Option::Some(__source),\n"
                    ));
                }
            }
        }
        if let Some((named, fields)) = fields {
            if let Some(f) = fields.iter().find(|f| f.from) {
                if fields.len() != 1 {
                    return Err(format!(
                        "thiserror stub: #[from] variant {vname} must have exactly one field"
                    ));
                }
                let ty = &f.ty;
                let construct = if *named {
                    format!("{name}::{vname} {{ {}: __source }}", f.name.as_deref().unwrap())
                } else {
                    format!("{name}::{vname}(__source)")
                };
                from_impls.push_str(&format!(
                    "#[automatically_derived]\n\
                     impl ::core::convert::From<{ty}> for {name} {{\n\
                         fn from(__source: {ty}) -> Self {{ {construct} }}\n\
                     }}\n"
                ));
            }
        }
    }

    Ok(format!(
        "#[automatically_derived]\n\
         impl ::core::fmt::Display for {name} {{\n\
             #[allow(unused_variables, clippy::used_underscore_binding)]\n\
             fn fmt(&self, __formatter: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 match self {{\n{display_arms}\n}}\n\
             }}\n\
         }}\n\
         #[automatically_derived]\n\
         impl ::std::error::Error for {name} {{\n\
             #[allow(unreachable_patterns, unused_variables)]\n\
             fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
                 match self {{\n{source_arms}_ => ::core::option::Option::None,\n}}\n\
             }}\n\
         }}\n\
         {from_impls}"
    ))
}

/// Skips attributes/visibility, expects `enum <name> {{ … }}`, and returns
/// the enum's name plus its brace-group body.
fn parse_item(tokens: &[TokenTree]) -> Result<(String, TokenStream), String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a paren group.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return Err("thiserror stub: expected enum name".into()),
                };
                return match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok((name, g.stream()))
                    }
                    _ => Err("thiserror stub: generics are not supported".into()),
                };
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                return Err("thiserror stub: only enums are supported".into());
            }
            _ => i += 1,
        }
    }
    Err("thiserror stub: no enum found in derive input".into())
}

/// Splits the enum body into variants and extracts `#[error]` strings.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut format = None;
        // Leading attributes: keep the #[error("…")] literal, skip the rest.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                format = format.or_else(|| error_literal(g.stream()));
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("thiserror stub: unexpected token {other}")),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some((true, parse_fields(g.stream(), true)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some((false, parse_fields(g.stream(), false)?))
            }
            _ => None,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        let format = format
            .ok_or_else(|| format!("thiserror stub: variant {name} lacks #[error(\"…\")]"))?;
        variants.push(Variant { name, format, fields });
    }
    Ok(variants)
}

/// Extracts the string literal from an `error("…")` attribute body.
fn error_literal(attr: TokenStream) -> Option<String> {
    let mut iter = attr.into_iter();
    match iter.next()? {
        TokenTree::Ident(id) if id.to_string() == "error" => {}
        _ => return None,
    }
    match iter.next()? {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            match g.stream().into_iter().next()? {
                TokenTree::Literal(lit) => Some(lit.to_string()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Parses a comma-separated field list, tracking `#[from]` markers.
fn parse_fields(stream: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut from = false;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
                    from |= id.to_string() == "from";
                }
            }
            i += 2;
        }
        // Optional visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = if named {
            let n = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("thiserror stub: expected field name".into()),
            };
            i += 1; // name
            i += 1; // `:`
            Some(n)
        } else {
            None
        };
        // Type: everything up to a comma at angle-bracket depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        fields.push(Field { name, ty, from });
    }
    Ok(fields)
}
