//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over half-open
//! float and integer ranges — the surface this workspace uses. Streams are
//! deterministic in the seed but are *not* the same streams as the real
//! `rand::rngs::StdRng` (which is ChaCha-based).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits give a uniform draw in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is ≤ span/2^128 and irrelevant for a simulator.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((wide % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Convenience methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x: i32 = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }
}
