//! Offline stand-in for the `thiserror` facade crate.
//!
//! Re-exports the [`Error`] derive from the companion proc-macro crate; see
//! `thiserror_impl` for the supported subset.

pub use thiserror_impl::Error;
