//! Offline stand-in for the `proptest` crate.
//!
//! Supports the `proptest!` surface this workspace uses:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] … }`;
//! * test parameters in both forms — `x in strategy` (ranges, [`any`],
//!   [`Just`]) and `x: Type` (via [`Arbitrary`]);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Sampling is purely random (no shrinking, no persisted failure seeds) but
//! fully deterministic: the stream for each test is derived from the test's
//! `module_path!()`-qualified name and the case index, so failures
//! reproduce exactly on re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates the runner for one `(test, case)` pair.
    ///
    /// The seed is a hash of the test's full name and the case index, so
    /// every property sees a reproducible but distinct stream per case.
    pub fn new(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        h = (h ^ u64::from(case)).wrapping_mul(0x100000001b3);
        TestRunner { state: h | 1 }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((runner.next_u128() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-domain u128 inclusive range.
                    return runner.next_u128() as $t;
                }
                self.start().wrapping_add((runner.next_u128() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical full-domain strategy (the `x: Type` form).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A full-domain strategy for `T`, like proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Everything a property-test module needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Defines deterministic randomised tests; see the crate docs for the
/// supported parameter forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; ) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __runner = $crate::TestRunner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__runner, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident $(,)?) => {};
    ($runner:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $runner);
        $crate::__proptest_bind!($runner, $($rest)*);
    };
    ($runner:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $runner);
    };
    ($runner:ident, $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $runner);
        $crate::__proptest_bind!($runner, $($rest)*);
    };
    ($runner:ident, $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $runner);
    };
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_streams_are_deterministic_per_name_and_case() {
        let mut a = TestRunner::new("crate::t", 0);
        let mut b = TestRunner::new("crate::t", 0);
        let mut c = TestRunner::new("crate::t", 1);
        let mut d = TestRunner::new("crate::u", 0);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = TestRunner::new("bounds", 0);
        for _ in 0..10_000 {
            let x = (3u128..17).sample(&mut runner);
            assert!((3..17).contains(&x));
            let y = (-4i32..=4).sample(&mut runner);
            assert!((-4..=4).contains(&y));
            let z = (0.25f64..0.75).sample(&mut runner);
            assert!((0.25..0.75).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed `in`/typed params, trailing comma.
        #[test]
        fn macro_binds_all_param_forms(
            a in 1u64..100,
            b in 0usize..5,
            flag: bool,
            c in any::<u8>(),
            d in Just(7i32),
        ) {
            prop_assert!((1..100).contains(&a));
            prop_assert!(b < 5);
            let flag_as_int = u8::from(flag);
            prop_assert!(flag_as_int <= 1);
            prop_assert!(u64::from(c) <= 255);
            prop_assert_eq!(d, 7);
            prop_assert_ne!(a, 0);
        }
    }
}
