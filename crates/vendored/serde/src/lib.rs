//! Offline stand-in for the `serde` facade crate.
//!
//! Exposes the `Serialize`/`Deserialize` names in both the macro namespace
//! (the no-op derives from [`serde_derive`]) and the trait namespace, so
//! `use serde::{Deserialize, Serialize};` plus `#[derive(Serialize)]`
//! compiles exactly as it does against real serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for serde's `de` module (owned-deserialisation marker only).
pub mod de {
    pub use super::DeserializeOwned;
}
