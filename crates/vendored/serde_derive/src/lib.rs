//! No-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! that a real serde can be dropped in later, but nothing serialises yet —
//! these derives therefore emit nothing. `attributes(serde)` is declared so
//! `#[serde(...)]` field/container attributes stay legal.

use proc_macro::TokenStream;

/// Derives (a no-op) `Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives (a no-op) `Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
