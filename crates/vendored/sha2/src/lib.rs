//! Offline stand-in for the `sha2` crate: a real FIPS 180-4 SHA-256.
//!
//! Implements the `Digest`-trait calling convention this workspace uses
//! (`Sha256::new()` / `update` / `finalize`). The compression function is
//! the standard one, so digests match the real `sha2` crate bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Round constants (first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values (fractional parts of the square roots of the first
/// eight primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The streaming-digest interface, mirroring `sha2::Digest`.
pub trait Digest: Sized {
    /// The fixed-size digest output.
    type Output;

    /// Creates a fresh hasher.
    fn new() -> Self;

    /// Absorbs more input.
    fn update(&mut self, data: impl AsRef<[u8]>);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Self::Output;

    /// One-shot convenience: digest of a single input.
    fn digest(data: impl AsRef<[u8]>) -> Self::Output {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// A SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total input length in bytes.
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 { state: H0, length: 0, buffer: [0u8; 64], buffered: 0 }
    }
}

impl Sha256 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(big_s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let round = [a, b, c, d, e, f, g, h];
        for (s, r) in self.state.iter_mut().zip(round) {
            *s = s.wrapping_add(r);
        }
    }
}

impl Digest for Sha256 {
    type Output = [u8; 32];

    fn new() -> Self {
        Sha256::default()
    }

    fn update(&mut self, data: impl AsRef<[u8]>) {
        let mut data = data.as_ref();
        self.length += data.len() as u64;
        if self.buffered > 0 {
            let take = data.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if self.buffered > 0 {
                // Input exhausted without completing a block.
                return;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            self.compress(block.try_into().unwrap());
        }
        let rest = blocks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length * 8;
        self.update([0x80u8]);
        while self.buffered != 56 {
            self.update([0u8]);
        }
        // `update` counts padding into `length`, which is why the bit length
        // was captured first.
        let block_end = {
            self.buffer[56..64].copy_from_slice(&bit_length.to_be_bytes());
            self.buffer
        };
        self.compress(&block_end);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{Digest, Sha256};

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // 56 bytes forces the length into a second padding block.
        assert_eq!(
            hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut hasher = Sha256::new();
        hasher.update(b"hello ");
        hasher.update(b"world");
        assert_eq!(hasher.finalize(), Sha256::digest(b"hello world"));
    }

    #[test]
    fn long_input() {
        let data = vec![0xabu8; 1000];
        let mut hasher = Sha256::new();
        for chunk in data.chunks(37) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }
}
