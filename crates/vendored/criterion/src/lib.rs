//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! [`Throughput`] and per-group sample sizes), [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a fixed-iteration timing loop instead of criterion's adaptive
//! sampling. Signatures mirror the real crate, so swapping in real
//! criterion for statistically serious measurements is a dependency edit,
//! not a bench rewrite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after warm-up).
const MEASURE_ITERS: u32 = 30;
/// Number of warm-up iterations per benchmark.
const WARMUP_ITERS: u32 = 5;

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` once with a [`Bencher`] and prints a one-line timing summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, MEASURE_ITERS, None, f);
        self
    }

    /// Opens a named group of benchmarks sharing a sample size and an
    /// optional [`Throughput`], mirroring criterion's `benchmark_group`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: MEASURE_ITERS,
        }
    }
}

/// How much work one iteration of a benchmark processes; when set on a
/// group, summaries additionally report a rate (elements or bytes per
/// second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (accounts, transfers, scenarios, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks, produced by [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Attaches a throughput measure to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` once with a [`Bencher`]; the summary line is prefixed with
    /// the group name and reports a rate when a throughput is set.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{id}", self.name);
        run_bench(&full_id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (a no-op here; real criterion finalises reports).
    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, measure_iters: u32, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { total: Duration::ZERO, iters: 0, measure_iters };
    f(&mut bencher);
    let mean = if bencher.iters == 0 { Duration::ZERO } else { bencher.total / bencher.iters };
    let rate = throughput.and_then(|t| {
        let per_iter = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let secs = mean.as_secs_f64();
        (secs > 0.0).then(|| format!(" {:>14.0} {}/s", per_iter.0 as f64 / secs, per_iter.1))
    });
    println!(
        "bench: {id:<48} {:>12.3?}/iter ({} iters){}",
        mean,
        bencher.iters,
        rate.unwrap_or_default()
    );
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u32,
    measure_iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall-clock time per iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Heavy per-iteration setups (e.g. populating a million-account
        // ledger) pick small sample sizes; cap warm-up accordingly.
        for _ in 0..WARMUP_ITERS.min(self.measure_iters) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.measure_iters {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.measure_iters;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; none apply here.
            $( $group(); )+
        }
    };
}
