//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a fixed-iteration
//! timing loop instead of criterion's adaptive sampling. Good enough to
//! keep benches compiling, running and printing comparable numbers offline;
//! swap in real criterion for statistically serious measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after warm-up).
const MEASURE_ITERS: u32 = 30;
/// Number of warm-up iterations per benchmark.
const WARMUP_ITERS: u32 = 5;

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` once with a [`Bencher`] and prints a one-line timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        let mean = if bencher.iters == 0 { Duration::ZERO } else { bencher.total / bencher.iters };
        println!("bench: {id:<48} {:>12.3?}/iter ({} iters)", mean, bencher.iters);
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall-clock time per iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += MEASURE_ITERS;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; none apply here.
            $( $group(); )+
        }
    };
}
