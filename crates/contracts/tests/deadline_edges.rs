//! Deadline-boundary pinning for every contract: the exact semantics of
//! acting at `deadline − 1` (the last legal instant), at exactly the
//! deadline, at `not_before − 1` (one tick early) and at exactly
//! `not_before`.
//!
//! The convention across the crate is uniform and these tests keep it that
//! way: **"before `d`" deadlines are exclusive** (`now < d` accepts,
//! `now == d` rejects) and **"from `t`" triggers are inclusive**
//! (`now == t` accepts, `now == t − 1` rejects). The `Procrastinate`
//! strategies in `protocols::script` drive every emission to these exact
//! edges, so an off-by-one here surfaces as a hedged-theorem violation in
//! the model-checking sweeps; this suite pins the boundaries contract by
//! contract so such a regression fails with a named edge instead.

use std::sync::Arc;

use chainsim::{
    AccountRef, Amount, ContractAddr, FinalityParams, PartyId, ReorgEvent, ReorgPolicy, Time, World,
};
use contracts::{
    ArcDeadlines, ArcEscrow, ArcEscrowMsg, ArcEscrowParams, AuctionCoinContract, AuctionCoinMsg,
    AuctionParams, AuctionTicketContract, AuctionTicketMsg, Hashkey, HashkeyVerifyCache,
    HedgedEscrow, HedgedEscrowMsg, HedgedEscrowParams, HedgedPremiumState, HedgedPrincipalState,
    HtlcEscrow, HtlcMsg, HtlcState, PartyKeys, PremiumSlotState, PrincipalState,
};
use cryptosim::{KeyPair, Secret};
use swapgraph::Digraph;

const ALICE: PartyId = PartyId(0);
const BOB: PartyId = PartyId(1);

// ---------------------------------------------------------------------------
// HTLC (§5.1): a single timelock guards escrow and redemption exclusively
// and unlocks the refund inclusively.
// ---------------------------------------------------------------------------

const HTLC_TIMELOCK: Time = Time(10);

struct HtlcFixture {
    world: World,
    addr: ContractAddr,
    secret: Secret,
}

fn htlc_fixture() -> HtlcFixture {
    let mut world = World::new(1);
    let chain = world.add_chain("apricot");
    let token = world.register_asset("token");
    world.chain_mut(chain).mint(ALICE, token, Amount::new(100));
    let secret = Secret::from_seed(42);
    let escrow =
        HtlcEscrow::new(ALICE, BOB, token, Amount::new(100), secret.hashlock(), HTLC_TIMELOCK);
    let addr = world.publish_labeled(chain, ALICE, "htlc", Box::new(escrow));
    HtlcFixture { world, addr, secret }
}

fn htlc_state(f: &HtlcFixture) -> HtlcState {
    f.world.chain(f.addr.chain).contract_as::<HtlcEscrow>(f.addr.contract).unwrap().state()
}

#[test]
fn htlc_escrow_accepts_the_last_tick_and_rejects_the_timelock_tick() {
    let mut f = htlc_fixture();
    f.world.advance_blocks(HTLC_TIMELOCK.height() - 1);
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "edge escrow").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Escrowed);

    let mut f = htlc_fixture();
    f.world.advance_blocks(HTLC_TIMELOCK.height());
    assert!(f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "late escrow").is_err());
    assert_eq!(htlc_state(&f), HtlcState::Created);
}

#[test]
fn htlc_redeem_accepts_the_last_tick_and_rejects_the_timelock_tick() {
    let mut f = htlc_fixture();
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    f.world.advance_blocks(HTLC_TIMELOCK.height() - 1);
    let secret = f.secret.clone();
    f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "edge redeem").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Redeemed);

    let mut f = htlc_fixture();
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    f.world.advance_blocks(HTLC_TIMELOCK.height());
    let secret = f.secret.clone();
    assert!(f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "late redeem").is_err());
    assert_eq!(htlc_state(&f), HtlcState::Escrowed);
}

#[test]
fn htlc_refund_rejects_one_tick_early_and_accepts_the_timelock_tick() {
    let mut f = htlc_fixture();
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    f.world.advance_blocks(HTLC_TIMELOCK.height() - 1);
    assert!(f.world.call(BOB, f.addr, &HtlcMsg::Refund, "early refund").is_err());
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &HtlcMsg::Refund, "edge refund").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Refunded);
}

// ---------------------------------------------------------------------------
// Hedged escrow (§5.2): premium/escrow/redeem deadlines are exclusive, the
// two settle rules unlock inclusively at the escrow and redeem deadlines.
// ---------------------------------------------------------------------------

const HEDGED_PREMIUM: Time = Time(2);
const HEDGED_ESCROW: Time = Time(6);
const HEDGED_REDEEM: Time = Time(9);

struct HedgedFixture {
    world: World,
    addr: ContractAddr,
    secret: Secret,
}

fn hedged_fixture() -> HedgedFixture {
    let mut world = World::new(1);
    let chain = world.add_chain("banana");
    let native = world.chain(chain).native_asset();
    let token = world.register_asset("token");
    world.chain_mut(chain).mint(BOB, token, Amount::new(100));
    world.chain_mut(chain).mint(ALICE, native, Amount::new(10));
    let secret = Secret::from_seed(7);
    let escrow = HedgedEscrow::new(HedgedEscrowParams {
        escrower: BOB,
        redeemer: ALICE,
        principal_asset: token,
        principal_amount: Amount::new(100),
        premium_asset: native,
        premium_amount: Amount::new(3),
        hashlock: secret.hashlock(),
        premium_deadline: HEDGED_PREMIUM,
        escrow_deadline: HEDGED_ESCROW,
        redeem_deadline: HEDGED_REDEEM,
    });
    let addr = world.publish_labeled(chain, BOB, "hedged", Box::new(escrow));
    HedgedFixture { world, addr, secret }
}

fn hedged(f: &HedgedFixture) -> &HedgedEscrow {
    f.world.chain(f.addr.chain).contract_as::<HedgedEscrow>(f.addr.contract).unwrap()
}

#[test]
fn hedged_premium_deposit_edges() {
    let mut f = hedged_fixture();
    f.world.advance_blocks(HEDGED_PREMIUM.height() - 1);
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "edge premium").unwrap();
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::Held);

    let mut f = hedged_fixture();
    f.world.advance_blocks(HEDGED_PREMIUM.height());
    assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "late").is_err());
}

#[test]
fn hedged_escrow_edges() {
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(HEDGED_ESCROW.height() - 1);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "edge escrow").unwrap();
    assert_eq!(hedged(&f).principal_state(), HedgedPrincipalState::Held);

    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(HEDGED_ESCROW.height());
    assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "late").is_err());
}

#[test]
fn hedged_redeem_edges() {
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
    f.world.advance_blocks(HEDGED_REDEEM.height() - 2);
    let secret = f.secret.clone();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret }, "edge redeem").unwrap();
    assert_eq!(hedged(&f).principal_state(), HedgedPrincipalState::Redeemed);
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::Refunded);

    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
    f.world.advance_blocks(HEDGED_REDEEM.height() - 1);
    let secret = f.secret.clone();
    assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret }, "late").is_err());
}

#[test]
fn hedged_settle_unlocks_inclusively_at_each_deadline() {
    // Premium refund (principal never escrowed): locked at E − 1, open at E.
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(HEDGED_ESCROW.height() - 1);
    assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "early settle").is_err());
    f.world.advance_blocks(1);
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "edge settle").unwrap();
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::Refunded);

    // Redemption timeout: locked at R − 1, open at R.
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
    f.world.advance_blocks(HEDGED_REDEEM.height() - 2);
    assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::Settle, "early settle").is_err());
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::Settle, "edge settle").unwrap();
    assert_eq!(hedged(&f).principal_state(), HedgedPrincipalState::Refunded);
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::PaidToEscrower);
}

// ---------------------------------------------------------------------------
// Arc escrow (§7/§8): phase deadlines are exclusive; redemption premiums
// and hashkeys carry per-path-length deadlines; settlement rules unlock
// inclusively.
// ---------------------------------------------------------------------------

const ARC_DELTA: u64 = 2;
const ARC_EPD: Time = Time(4); // escrow premium deadline (nΔ with n=2)
const ARC_RPD: Time = Time(8); // redemption premium phase deadline (2nΔ)
const ARC_AED: Time = Time(12); // asset escrow deadline (3nΔ)
const ARC_FINAL: Time = Time(20);

struct ArcFixture {
    world: World,
    addr: ContractAddr,
    secret: Secret,
    pairs: Vec<KeyPair>,
}

/// Arc (B, A) of a two-party cycle with leader A: path lengths 1 (A's own
/// premium) and 2 are both live, so the per-path deadlines differ.
fn arc_fixture() -> ArcFixture {
    let mut world = World::new(1);
    let chain = world.add_chain("banana");
    let native = world.chain(chain).native_asset();
    let token = world.register_asset("token");
    world.chain_mut(chain).mint(BOB, token, Amount::new(50));
    world.chain_mut(chain).mint(BOB, native, Amount::new(50));
    world.chain_mut(chain).mint(ALICE, native, Amount::new(50));

    let mut keys = PartyKeys::new();
    let mut pairs = Vec::new();
    for i in 0..2u32 {
        let pair = KeyPair::from_seed(u64::from(i));
        world.directory_mut().register(&pair);
        keys.insert(PartyId(i), pair.public());
        pairs.push(pair);
    }
    let mut digraph = Digraph::new();
    digraph.add_arc(0, 1);
    digraph.add_arc(1, 0);

    let secret = Secret::from_seed(11);
    let escrow = ArcEscrow::new(ArcEscrowParams {
        sender: BOB,
        receiver: ALICE,
        asset: token,
        amount: Amount::new(50),
        premium_asset: native,
        base_premium: Amount::new(1),
        escrow_premium: Amount::new(5),
        hashlocks: Arc::new(vec![(ALICE, secret.hashlock())]),
        digraph: Arc::new(digraph),
        keys: Arc::new(keys),
        deadlines: ArcDeadlines {
            escrow_premium_deadline: ARC_EPD,
            redemption_premium_deadline: ARC_RPD,
            asset_escrow_deadline: ARC_AED,
            hashkey_timeout_base: ARC_AED,
            delta_blocks: ARC_DELTA,
            final_deadline: ARC_FINAL,
        },
        verify_cache: HashkeyVerifyCache::new(),
        premium_evaluator: Arc::default(),
    });
    let addr = world.publish_labeled(chain, BOB, "arc", Box::new(escrow));
    ArcFixture { world, addr, secret, pairs }
}

fn arc(f: &ArcFixture) -> &ArcEscrow {
    f.world.chain(f.addr.chain).contract_as::<ArcEscrow>(f.addr.contract).unwrap()
}

fn deposit_own_premium(f: &mut ArcFixture) {
    f.world
        .call(
            ALICE,
            f.addr,
            &ArcEscrowMsg::DepositRedemptionPremium { leader: ALICE, path: vec![ALICE] },
            "R",
        )
        .unwrap();
}

#[test]
fn arc_escrow_premium_edges() {
    let mut f = arc_fixture();
    f.world.advance_blocks(ARC_EPD.height() - 1);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "edge E").unwrap();
    assert_eq!(arc(&f).escrow_premium_state(), PremiumSlotState::Held);

    let mut f = arc_fixture();
    f.world.advance_blocks(ARC_EPD.height());
    assert!(f.world.call(BOB, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "late E").is_err());
}

#[test]
fn arc_redemption_premium_deadline_scales_with_path_length() {
    // A path of length ℓ is accepted strictly before
    // `escrow_premium_deadline + ℓ·Δ`: the leader's own (length-1) premium
    // closes at 4 + 2 = 6, well before the phase deadline 8, so a
    // last-instant leader can never strand its followers (the foregrounded
    // deadline-edge fix of this revision).
    let edge = ARC_EPD.plus(ARC_DELTA);
    let mut f = arc_fixture();
    f.world.advance_blocks(edge.height() - 1);
    deposit_own_premium(&mut f);
    assert_eq!(arc(&f).redemption_premium_state(ALICE), PremiumSlotState::Held);

    let mut f = arc_fixture();
    f.world.advance_blocks(edge.height());
    assert!(f
        .world
        .call(
            ALICE,
            f.addr,
            &ArcEscrowMsg::DepositRedemptionPremium { leader: ALICE, path: vec![ALICE] },
            "late R",
        )
        .is_err());

    // The per-path deadline never exceeds the phase-wide one.
    let deadlines = arc(&f).params().deadlines.clone();
    assert_eq!(deadlines.redemption_path_deadline(1), Time(6));
    assert_eq!(deadlines.redemption_path_deadline(2), ARC_RPD);
    assert_eq!(deadlines.redemption_path_deadline(7), ARC_RPD, "capped at the phase deadline");
}

#[test]
fn arc_asset_escrow_edges() {
    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(ARC_AED.height() - 1);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "edge escrow").unwrap();
    assert_eq!(arc(&f).principal_state(), PrincipalState::Held);

    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(ARC_AED.height());
    assert!(f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "late escrow").is_err());
}

#[test]
fn arc_hashkey_edges_scale_with_path_length() {
    // Path length 1: accepted strictly before base + 1·Δ = 14.
    let edge = ARC_AED.plus(ARC_DELTA);
    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(2);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
    f.world.advance_blocks(edge.height() - 3);
    let hashkey = Hashkey::from_leader(ALICE, f.secret.clone(), &f.pairs[0]);
    f.world.call(ALICE, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "edge k").unwrap();
    assert_eq!(arc(&f).principal_state(), PrincipalState::Redeemed);

    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(2);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
    f.world.advance_blocks(edge.height() - 2);
    let hashkey = Hashkey::from_leader(ALICE, f.secret.clone(), &f.pairs[0]);
    assert!(f
        .world
        .call(ALICE, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "late k")
        .is_err());
    assert_eq!(arc(&f).principal_state(), PrincipalState::Held);
}

#[test]
fn arc_settle_unlocks_inclusively() {
    // Escrow-premium disposition unlocks at the asset-escrow deadline.
    let mut f = arc_fixture();
    f.world.call(BOB, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
    f.world.advance_blocks(ARC_AED.height() - 1);
    assert!(f.world.call(BOB, f.addr, &ArcEscrowMsg::Settle, "early settle").is_err());
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::Settle, "edge settle").unwrap();
    assert_eq!(arc(&f).escrow_premium_state(), PremiumSlotState::Refunded);

    // Principal refund and premium forfeiture unlock at the final deadline.
    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(2);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
    f.world.advance_blocks(ARC_FINAL.height() - 3);
    assert!(f.world.call(BOB, f.addr, &ArcEscrowMsg::Settle, "early settle").is_err());
    f.world.advance_blocks(1);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::Settle, "edge settle").unwrap();
    assert_eq!(arc(&f).principal_state(), PrincipalState::Refunded);
    assert_eq!(arc(&f).redemption_premium_state(ALICE), PremiumSlotState::PaidToCounterparty);
}

// ---------------------------------------------------------------------------
// Auction (§9): bids close exclusively at the bid deadline; hashkeys are a
// half-open window [bid_deadline, challenge_deadline); settlement unlocks
// inclusively at the challenge deadline.
// ---------------------------------------------------------------------------

const BID_DEADLINE: Time = Time(4);
const CHALLENGE_DEADLINE: Time = Time(12);

struct AuctionFixture {
    world: World,
    coin_addr: ContractAddr,
    ticket_addr: ContractAddr,
    secret_bob: Secret,
}

fn auction_fixture() -> AuctionFixture {
    let mut world = World::new(1);
    let coin_chain = world.add_chain("coin");
    let ticket_chain = world.add_chain("ticket");
    let coin = world.register_asset("coin");
    let ticket = world.register_asset("ticket");
    world.chain_mut(coin_chain).mint(ALICE, coin, Amount::new(10));
    world.chain_mut(coin_chain).mint(BOB, coin, Amount::new(100));
    world.chain_mut(ticket_chain).mint(ALICE, ticket, Amount::new(1));
    let secret_bob = Secret::from_seed(101);
    let params = AuctionParams {
        auctioneer: ALICE,
        bidders: vec![BOB],
        coin_asset: coin,
        ticket_asset: ticket,
        ticket_amount: Amount::new(1),
        premium_per_bidder: Amount::new(2),
        hashlocks: vec![(BOB, secret_bob.hashlock())],
        bid_deadline: BID_DEADLINE,
        challenge_deadline: CHALLENGE_DEADLINE,
    };
    let coin_addr = world.publish_labeled(
        coin_chain,
        ALICE,
        "auction-coin",
        Box::new(AuctionCoinContract::new(params.clone())),
    );
    let ticket_addr = world.publish_labeled(
        ticket_chain,
        ALICE,
        "auction-ticket",
        Box::new(AuctionTicketContract::new(params)),
    );
    AuctionFixture { world, coin_addr, ticket_addr, secret_bob }
}

#[test]
fn auction_bid_and_endowment_edges() {
    // Bids are refused before the endowment, whatever the clock says.
    let mut f = auction_fixture();
    assert!(f
        .world
        .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(6) }, "naked bid")
        .is_err());

    // Endowment and bid at the last tick before the bid deadline.
    let mut f = auction_fixture();
    f.world.advance_blocks(BID_DEADLINE.height() - 1);
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "edge endow").unwrap();
    f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "edge escrow").unwrap();
    f.world
        .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(6) }, "edge bid")
        .unwrap();

    // All three rejected at exactly the bid deadline.
    let mut f = auction_fixture();
    f.world.advance_blocks(BID_DEADLINE.height());
    assert!(f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "late").is_err());
    assert!(f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "late").is_err());
}

#[test]
fn auction_hashkey_window_is_half_open() {
    let mut f = auction_fixture();
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "endow").unwrap();

    // One tick before the bid deadline: too early on both chains.
    f.world.advance_blocks(BID_DEADLINE.height() - 1);
    let msg = AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() };
    assert!(f.world.call(ALICE, f.coin_addr, &msg, "early k").is_err());
    let tmsg = AuctionTicketMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() };
    assert!(f.world.call(ALICE, f.ticket_addr, &tmsg, "early k").is_err());

    // Exactly at the bid deadline: accepted (inclusive opening edge).
    f.world.advance_blocks(1);
    f.world.call(ALICE, f.coin_addr, &msg, "edge k").unwrap();
    f.world.call(ALICE, f.ticket_addr, &tmsg, "edge k").unwrap();

    // Exactly at the challenge deadline: rejected (exclusive closing edge);
    // one tick earlier is the last legal instant.
    let mut f = auction_fixture();
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "endow").unwrap();
    f.world.advance_blocks(CHALLENGE_DEADLINE.height() - 1);
    let msg = AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() };
    f.world.call(ALICE, f.coin_addr, &msg, "last-tick k").unwrap();
    f.world.advance_blocks(1);
    let tmsg = AuctionTicketMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() };
    assert!(f.world.call(ALICE, f.ticket_addr, &tmsg, "late k").is_err());
}

#[test]
fn auction_settle_unlocks_inclusively_at_the_challenge_deadline() {
    let mut f = auction_fixture();
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "endow").unwrap();
    f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "tickets").unwrap();
    f.world.advance_blocks(CHALLENGE_DEADLINE.height() - 1);
    assert!(f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "early settle").is_err());
    assert!(f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "early settle").is_err());
    f.world.advance_blocks(1);
    f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "edge settle").unwrap();
    f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "edge settle").unwrap();
}

// ---------------------------------------------------------------------------
// Sub-Δ crash outages on the deadline tick. The sampled model-checking tier
// draws variable-length outages (`Fault::Outage`, ¼Δ…4Δ in quarter-Δ
// steps); these fixtures pin the contract-level semantics those runs rest
// on. A party that goes dark for ½Δ while intending to act recovers in
// time iff its outage ends strictly before the deadline — the contract
// does not care that the originally intended tick was missed. An outage
// that swallows the last legal tick loses the *action* but never the
// *funds*: the inclusive settle/refund path recovers them on the deadline
// tick itself. With the protocol default Δ = 2, ½Δ is 1 block
// (`outage_blocks(2, 2)`) and a deadline-crossing full Δ is 2.
// ---------------------------------------------------------------------------

const HALF_DELTA: u64 = 1;
const FULL_DELTA: u64 = 2;

#[test]
fn htlc_redeem_survives_a_half_delta_outage_but_refund_recovers_a_crossing_one() {
    // Bob means to redeem at T − 2 but goes dark for ½Δ: his recovery tick
    // T − 1 is still strictly before the timelock, so the redeem lands.
    let mut f = htlc_fixture();
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    f.world.advance_blocks(HTLC_TIMELOCK.height() - 1 - HALF_DELTA);
    f.world.advance_blocks(HALF_DELTA); // the outage: no action emitted
    let secret = f.secret.clone();
    f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "post-outage redeem").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Redeemed);

    // A full-Δ outage from the same intent tick swallows the last legal
    // instant: the redeem is rejected at T, and the refund recovers the
    // principal on that very tick (inclusive opening edge).
    let mut f = htlc_fixture();
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    f.world.advance_blocks(HTLC_TIMELOCK.height() - FULL_DELTA);
    f.world.advance_blocks(FULL_DELTA);
    let secret = f.secret.clone();
    assert!(f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "late redeem").is_err());
    f.world.call(ALICE, f.addr, &HtlcMsg::Refund, "recovery refund").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Refunded);
}

#[test]
fn hedged_escrow_survives_a_half_delta_outage_but_settle_recovers_a_crossing_one() {
    // Bob means to escrow the principal at E − 2; a ½Δ outage still leaves
    // him the last legal tick E − 1.
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(HEDGED_ESCROW.height() - 1 - HALF_DELTA);
    f.world.advance_blocks(HALF_DELTA);
    f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "post-outage escrow").unwrap();
    assert_eq!(hedged(&f).principal_state(), HedgedPrincipalState::Held);

    // A Δ-long outage crosses E: the escrow is rejected, and Alice's
    // settle unlocks on the same tick to recover her premium.
    let mut f = hedged_fixture();
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
    f.world.advance_blocks(HEDGED_ESCROW.height() - FULL_DELTA);
    f.world.advance_blocks(FULL_DELTA);
    assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "late").is_err());
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "recovery settle").unwrap();
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::Refunded);
}

#[test]
fn arc_asset_escrow_survives_a_half_delta_outage_but_settle_recovers_a_crossing_one() {
    let mut f = arc_fixture();
    deposit_own_premium(&mut f);
    f.world.advance_blocks(ARC_AED.height() - 1 - HALF_DELTA);
    f.world.advance_blocks(HALF_DELTA);
    f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "post-outage escrow").unwrap();
    assert_eq!(arc(&f).principal_state(), PrincipalState::Held);

    // A Δ-long outage crosses the asset-escrow deadline: the escrow is
    // rejected, and Bob's own escrow premium is recoverable by settle on
    // that same tick.
    let mut f = arc_fixture();
    f.world.call(BOB, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
    f.world.advance_blocks(ARC_AED.height() - FULL_DELTA);
    f.world.advance_blocks(FULL_DELTA);
    assert!(f.world.call(BOB, f.addr, &ArcEscrowMsg::EscrowAsset, "late escrow").is_err());
    f.world.call(BOB, f.addr, &ArcEscrowMsg::Settle, "recovery settle").unwrap();
    assert_eq!(arc(&f).escrow_premium_state(), PremiumSlotState::Refunded);
}

// ---------------------------------------------------------------------------
// Reorgs on the deadline tick. With finality lag configured, the last
// `depth` rounds are speculative: a reorg rewinds them and re-delivers (or
// drops) the rewound calls at the reorg height — which may now sit at or
// past a deadline the original execution beat. These pins fix the
// contract-level consequences: a censored (DropCalls) last-tick action
// loses the *action* but never the *funds* (the inclusive settle/refund
// path still recovers them), and a re-delivered action survives exactly
// when the reorg height still beats its deadline.
// ---------------------------------------------------------------------------

#[test]
fn drop_calls_reorg_censors_a_last_tick_redeem_but_refund_recovers() {
    let mut f = htlc_fixture();
    f.world.set_finality(f.addr.chain, FinalityParams { depth: 1, delta: 0 });
    f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
    for _ in 0..HTLC_TIMELOCK.height() - 1 {
        f.world.advance_delta();
    }
    // Bob redeems at the last legal tick T − 1…
    let secret = f.secret.clone();
    f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "last-tick redeem").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Redeemed);
    // …but a depth-1 DropCalls reorg at this round's close censors it.
    f.world.schedule_reorg(ReorgEvent {
        chain: f.addr.chain,
        at_round: f.world.rounds_elapsed(),
        depth: 1,
        policy: ReorgPolicy::DropCalls,
    });
    f.world.advance_delta();
    assert_eq!(htlc_state(&f), HtlcState::Escrowed, "the censored redeem must be unwound");
    let stats = f.world.chain(f.addr.chain).reorg_stats();
    assert_eq!((stats.reorgs, stats.rewound_calls, stats.dropped_calls), (1, 1, 1));
    // The clock is now at T: the principal is past the redeem window but
    // never stranded — Alice's inclusive refund recovers it.
    f.world.call(ALICE, f.addr, &HtlcMsg::Refund, "recovery refund").unwrap();
    assert_eq!(htlc_state(&f), HtlcState::Refunded);
}

#[test]
fn redelivered_premium_survives_at_its_height_but_a_deeper_reorg_misses_the_deadline() {
    // Depth 1: the rewound deposit re-executes at its original height
    // (the reorg height equals the round it was made in), so it lands again.
    let mut f = hedged_fixture();
    f.world.set_finality(f.addr.chain, FinalityParams { depth: 1, delta: 0 });
    f.world.advance_delta(); // height 1 = premium deadline − 1
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "edge premium").unwrap();
    f.world.schedule_reorg(ReorgEvent {
        chain: f.addr.chain,
        at_round: f.world.rounds_elapsed(),
        depth: 1,
        policy: ReorgPolicy::Redeliver,
    });
    f.world.advance_delta();
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::Held);
    let stats = f.world.chain(f.addr.chain).reorg_stats();
    assert_eq!((stats.redelivered_calls, stats.redelivery_failures), (1, 0));

    // Depth 2: the reorg strikes one round later, so the same last-tick
    // deposit re-executes at exactly the premium deadline and is rejected —
    // the loss is counted, and the rewind leaves Alice's funds intact.
    let mut f = hedged_fixture();
    let native = f.world.chain(f.addr.chain).native_asset();
    f.world.set_finality(f.addr.chain, FinalityParams { depth: 2, delta: 0 });
    f.world.advance_delta(); // height 1
    f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "edge premium").unwrap();
    f.world.advance_delta(); // height 2 = the premium deadline
    f.world.schedule_reorg(ReorgEvent {
        chain: f.addr.chain,
        at_round: f.world.rounds_elapsed(),
        depth: 2,
        policy: ReorgPolicy::Redeliver,
    });
    f.world.advance_delta();
    assert_eq!(hedged(&f).premium_state(), HedgedPremiumState::NotDeposited);
    let stats = f.world.chain(f.addr.chain).reorg_stats();
    assert_eq!((stats.redelivered_calls, stats.redelivery_failures), (0, 1));
    let ledger = f.world.chain(f.addr.chain).ledger();
    assert_eq!(
        ledger.balance(AccountRef::Party(ALICE), native),
        Amount::new(10),
        "the rewound deposit must return to Alice, not strand in the contract"
    );
}

#[test]
fn auction_bid_survives_a_half_delta_outage_but_settle_recovers_a_crossing_one() {
    let mut f = auction_fixture();
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "endow").unwrap();
    f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "tickets").unwrap();
    f.world.advance_blocks(BID_DEADLINE.height() - 1 - HALF_DELTA);
    f.world.advance_blocks(HALF_DELTA);
    f.world
        .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(6) }, "bid")
        .unwrap();

    // A Δ-long outage crosses the bid deadline: the bid is rejected, no
    // bidder wins, and both chains' settles recover the endowment and
    // tickets at the challenge deadline.
    let mut f = auction_fixture();
    f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "endow").unwrap();
    f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "tickets").unwrap();
    f.world.advance_blocks(BID_DEADLINE.height() - FULL_DELTA);
    f.world.advance_blocks(FULL_DELTA);
    assert!(f
        .world
        .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(6) }, "late bid")
        .is_err());
    f.world.advance_blocks(CHALLENGE_DEADLINE.height() - BID_DEADLINE.height());
    f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "recovery settle").unwrap();
    f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "recovery settle").unwrap();
}
