//! Seed-pinned raw-call fuzzing of every contract family.
//!
//! Each iteration builds a fresh world, publishes one contract family with
//! randomly drawn deadlines, then fires a random interleaving of *legal and
//! illegal* calls at it — wrong callers, wrong secrets, out-of-order and
//! out-of-window messages — with random clock advances and, when the chain
//! carries a finality window, random redelivering/censoring reorgs. The
//! driver never inspects call results: rejected calls are the point.
//!
//! What must survive any such sequence:
//!
//! * **conservation** — the total supply of every asset never changes (the
//!   test profile's debug assertions additionally enforce per-call
//!   atomicity inside `chainsim`: a failed call that leaves residue or a
//!   stray note panics at the call site);
//! * **no stranded funds** — after the final deadline has passed and every
//!   party has run the settle/refund paths, the contract account holds
//!   nothing;
//! * **determinism** — the whole suite is a pure function of `FUZZ_SEED`,
//!   so any failure reproduces from the printed iteration seed alone.
//!
//! `FUZZ_ITERS` overrides the per-family iteration count (default 300; CI
//! runs the same pinned budget).

use std::sync::Arc;

use chainsim::{
    AccountRef, Amount, AssetId, ChainId, ContractAddr, FinalityParams, PartyId, ReorgEvent,
    ReorgPolicy, Time, World,
};
use contracts::{
    ArcDeadlines, ArcEscrow, ArcEscrowMsg, ArcEscrowParams, AuctionCoinContract, AuctionCoinMsg,
    AuctionParams, AuctionTicketContract, AuctionTicketMsg, Hashkey, HashkeyVerifyCache,
    HedgedEscrow, HedgedEscrowMsg, HedgedEscrowParams, HtlcEscrow, HtlcMsg, PartyKeys,
};
use cryptosim::{KeyPair, Secret};
use swapgraph::Digraph;

/// The pinned seed of the committed fuzz budget.
const FUZZ_SEED: u64 = 0xF0_2217_5EED;

/// Per-family iterations; `FUZZ_ITERS` overrides.
fn iterations() -> u64 {
    std::env::var("FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(300)
}

/// SplitMix64 — the same dependency-free generator the sampled tier and the
/// market engine pin their streams with.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

const P0: PartyId = PartyId(0);
const P1: PartyId = PartyId(1);
const P2: PartyId = PartyId(2);
const PARTIES: [PartyId; 3] = [P0, P1, P2];

fn any_party(rng: &mut SplitMix64) -> PartyId {
    PARTIES[rng.below(3) as usize]
}

/// A secret that is the real preimage about half the time.
fn maybe_secret(real: &Secret, rng: &mut SplitMix64) -> Secret {
    if rng.chance(2) {
        real.clone()
    } else {
        Secret::from_seed(rng.next_u64())
    }
}

/// Ends a round; when the chain keeps a finality window, sometimes strikes
/// it with a reorg first (random depth within the window, random policy).
fn advance_round(world: &mut World, chains: &[ChainId], depth: u32, rng: &mut SplitMix64) {
    if depth > 0 && rng.chance(4) {
        let policy = if rng.chance(2) { ReorgPolicy::Redeliver } else { ReorgPolicy::DropCalls };
        world.schedule_reorg(ReorgEvent {
            chain: chains[rng.below(chains.len() as u64) as usize],
            at_round: world.rounds_elapsed(),
            depth: 1 + rng.below(u64::from(depth)) as u32,
            policy,
        });
    }
    world.advance_delta();
}

/// Rounds (reorg-free) until every chain is past `deadline` by a margin.
fn advance_past(world: &mut World, deadline: Time, delta: u64) {
    while world.now() < deadline.plus(2 * delta) {
        world.advance_delta();
    }
}

/// Conservation: every asset's total supply equals what setup minted.
fn assert_conserved(world: &World, chain: ChainId, minted: &[(AssetId, u128)], seed: u64) {
    let ledger = world.chain(chain).ledger();
    for (asset, total) in minted {
        assert_eq!(
            ledger.total_supply(*asset),
            Amount::new(*total),
            "seed {seed:#x}: asset {asset:?} supply drifted on {:?}",
            chain
        );
    }
}

/// No stranded funds: the drained contract account holds nothing.
fn assert_no_residue(world: &World, addr: ContractAddr, assets: &[AssetId], seed: u64) {
    let ledger = world.chain(addr.chain).ledger();
    for asset in assets {
        assert_eq!(
            ledger.balance(AccountRef::Contract(addr.contract), *asset),
            Amount::ZERO,
            "seed {seed:#x}: contract {addr:?} stranded {asset:?} after drain"
        );
    }
}

// ---------------------------------------------------------------------------
// HTLC (§5.1)
// ---------------------------------------------------------------------------

fn fuzz_htlc_once(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let delta = 1 + rng.below(3);
    let mut world = World::new(delta);
    let chain = world.add_chain("fuzz");
    let token = world.register_asset("token");
    for p in PARTIES {
        world.chain_mut(chain).mint(p, token, Amount::new(1_000));
    }
    let timelock = Time(4 + rng.below(12));
    let secret = Secret::from_seed(rng.next_u64());
    let amount = Amount::new(1 + rng.below(900) as u128);
    let escrow = HtlcEscrow::new(P0, P1, token, amount, secret.hashlock(), timelock);
    let addr = world.publish_labeled(chain, P0, "fuzz-htlc", Box::new(escrow));
    let depth = rng.below(3) as u32;
    if depth > 0 {
        world.set_finality(chain, FinalityParams { depth, delta: 0 });
    }

    for _ in 0..8 + rng.below(17) {
        let caller = any_party(&mut rng);
        match rng.below(5) {
            0 => advance_round(&mut world, &[chain], depth, &mut rng),
            1 => drop(world.call(caller, addr, &HtlcMsg::Escrow, "fuzz escrow")),
            2 => {
                let secret = maybe_secret(&secret, &mut rng);
                drop(world.call(caller, addr, &HtlcMsg::Redeem { secret }, "fuzz redeem"));
            }
            _ => drop(world.call(caller, addr, &HtlcMsg::Refund, "fuzz refund")),
        }
    }

    advance_past(&mut world, timelock, delta);
    for p in PARTIES {
        let _ = world.call(p, addr, &HtlcMsg::Redeem { secret: secret.clone() }, "drain redeem");
        let _ = world.call(p, addr, &HtlcMsg::Refund, "drain refund");
    }
    world.advance_delta();

    assert_conserved(&world, chain, &[(token, 3_000)], seed);
    assert_no_residue(&world, addr, &[token], seed);
}

// ---------------------------------------------------------------------------
// Hedged escrow (§5.2)
// ---------------------------------------------------------------------------

fn fuzz_hedged_once(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let delta = 1 + rng.below(3);
    let mut world = World::new(delta);
    let chain = world.add_chain("fuzz");
    let native = world.chain(chain).native_asset();
    let token = world.register_asset("token");
    for p in PARTIES {
        world.chain_mut(chain).mint(p, token, Amount::new(1_000));
        world.chain_mut(chain).mint(p, native, Amount::new(100));
    }
    let premium_deadline = Time(2 + rng.below(4));
    let escrow_deadline = premium_deadline.plus(1 + rng.below(6));
    let redeem_deadline = escrow_deadline.plus(1 + rng.below(6));
    let secret = Secret::from_seed(rng.next_u64());
    let escrow = HedgedEscrow::new(HedgedEscrowParams {
        escrower: P1,
        redeemer: P0,
        principal_asset: token,
        principal_amount: Amount::new(1 + rng.below(900) as u128),
        premium_asset: native,
        premium_amount: Amount::new(1 + rng.below(20) as u128),
        hashlock: secret.hashlock(),
        premium_deadline,
        escrow_deadline,
        redeem_deadline,
    });
    let addr = world.publish_labeled(chain, P1, "fuzz-hedged", Box::new(escrow));
    let depth = rng.below(3) as u32;
    if depth > 0 {
        world.set_finality(chain, FinalityParams { depth, delta: 0 });
    }

    for _ in 0..8 + rng.below(17) {
        let caller = any_party(&mut rng);
        match rng.below(6) {
            0 => advance_round(&mut world, &[chain], depth, &mut rng),
            1 => drop(world.call(caller, addr, &HedgedEscrowMsg::DepositPremium, "fuzz premium")),
            2 => drop(world.call(caller, addr, &HedgedEscrowMsg::EscrowPrincipal, "fuzz escrow")),
            3 => {
                let secret = maybe_secret(&secret, &mut rng);
                drop(world.call(caller, addr, &HedgedEscrowMsg::Redeem { secret }, "fuzz redeem"));
            }
            _ => drop(world.call(caller, addr, &HedgedEscrowMsg::Settle, "fuzz settle")),
        }
    }

    advance_past(&mut world, redeem_deadline, delta);
    for p in PARTIES {
        let _ = world.call(p, addr, &HedgedEscrowMsg::Settle, "drain settle");
    }
    world.advance_delta();

    assert_conserved(&world, chain, &[(token, 3_000), (native, 300)], seed);
    assert_no_residue(&world, addr, &[token, native], seed);
}

// ---------------------------------------------------------------------------
// Arc escrow (§7/§8): the two-party cycle arc of the deadline-edge fixture,
// with fuzzed paths, leaders and hashkey signatures.
// ---------------------------------------------------------------------------

fn fuzz_arc_once(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let delta = 2u64;
    let mut world = World::new(delta);
    let chain = world.add_chain("fuzz");
    let native = world.chain(chain).native_asset();
    let token = world.register_asset("token");
    for p in PARTIES {
        world.chain_mut(chain).mint(p, token, Amount::new(100));
        world.chain_mut(chain).mint(p, native, Amount::new(100));
    }
    let mut keys = PartyKeys::new();
    let mut pairs = Vec::new();
    for i in 0..2u32 {
        let pair = KeyPair::from_seed(seed ^ u64::from(i));
        world.directory_mut().register(&pair);
        keys.insert(PartyId(i), pair.public());
        pairs.push(pair);
    }
    let mut digraph = Digraph::new();
    digraph.add_arc(0, 1);
    digraph.add_arc(1, 0);
    let secret = Secret::from_seed(rng.next_u64());
    let stretch = 1 + rng.below(2);
    let final_deadline = Time(20 * stretch);
    let escrow = ArcEscrow::new(ArcEscrowParams {
        sender: P1,
        receiver: P0,
        asset: token,
        amount: Amount::new(50),
        premium_asset: native,
        base_premium: Amount::new(1),
        escrow_premium: Amount::new(5),
        hashlocks: Arc::new(vec![(P0, secret.hashlock())]),
        digraph: Arc::new(digraph),
        keys: Arc::new(keys),
        deadlines: ArcDeadlines {
            escrow_premium_deadline: Time(4 * stretch),
            redemption_premium_deadline: Time(8 * stretch),
            asset_escrow_deadline: Time(12 * stretch),
            hashkey_timeout_base: Time(12 * stretch),
            delta_blocks: delta,
            final_deadline,
        },
        verify_cache: HashkeyVerifyCache::new(),
        premium_evaluator: Arc::default(),
    });
    let addr = world.publish_labeled(chain, P1, "fuzz-arc", Box::new(escrow));
    let depth = rng.below(3) as u32;
    if depth > 0 {
        world.set_finality(chain, FinalityParams { depth, delta: 0 });
    }

    for _ in 0..10 + rng.below(21) {
        let caller = any_party(&mut rng);
        match rng.below(6) {
            0 => advance_round(&mut world, &[chain], depth, &mut rng),
            1 => drop(world.call(caller, addr, &ArcEscrowMsg::DepositEscrowPremium, "fuzz E")),
            2 => {
                // Legal (receiver's own length-1 path) and illegal (no such
                // hashlock / not a receiver-to-leader path) variants.
                let (leader, path) = match rng.below(3) {
                    0 => (P0, vec![P0]),
                    1 => (P1, vec![P0, P1]),
                    _ => (P0, vec![P1]),
                };
                let msg = ArcEscrowMsg::DepositRedemptionPremium { leader, path };
                drop(world.call(caller, addr, &msg, "fuzz R"));
            }
            3 => drop(world.call(caller, addr, &ArcEscrowMsg::EscrowAsset, "fuzz escrow")),
            4 => {
                // Real leader/signer half the time; wrong secret or wrong
                // signing key otherwise (an invalid signature path).
                let secret = maybe_secret(&secret, &mut rng);
                let pair = &pairs[rng.below(2) as usize];
                let hashkey = Hashkey::from_leader(P0, secret, pair);
                drop(world.call(caller, addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "fuzz k"));
            }
            _ => drop(world.call(caller, addr, &ArcEscrowMsg::Settle, "fuzz settle")),
        }
    }

    advance_past(&mut world, final_deadline, delta);
    for p in PARTIES {
        let _ = world.call(p, addr, &ArcEscrowMsg::Settle, "drain settle");
    }
    world.advance_delta();

    assert_conserved(&world, chain, &[(token, 300), (native, 300)], seed);
    assert_no_residue(&world, addr, &[token, native], seed);
}

// ---------------------------------------------------------------------------
// Auction (§9): both halves on separate chains, cross-chain hashkeys fuzzed
// independently per chain.
// ---------------------------------------------------------------------------

fn fuzz_auction_once(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let delta = 1 + rng.below(3);
    let mut world = World::new(delta);
    let coin_chain = world.add_chain("coin");
    let ticket_chain = world.add_chain("ticket");
    let coin = world.register_asset("coin");
    let ticket = world.register_asset("ticket");
    for p in PARTIES {
        world.chain_mut(coin_chain).mint(p, coin, Amount::new(100));
    }
    world.chain_mut(ticket_chain).mint(P0, ticket, Amount::new(1));
    let secrets: Vec<Secret> = (0..2).map(|_| Secret::from_seed(rng.next_u64())).collect();
    let bid_deadline = Time(3 + rng.below(5));
    let challenge_deadline = bid_deadline.plus(4 + rng.below(8));
    let params = AuctionParams {
        auctioneer: P0,
        bidders: vec![P1, P2],
        coin_asset: coin,
        ticket_asset: ticket,
        ticket_amount: Amount::new(1),
        premium_per_bidder: Amount::new(2),
        hashlocks: vec![(P1, secrets[0].hashlock()), (P2, secrets[1].hashlock())],
        bid_deadline,
        challenge_deadline,
    };
    let coin_addr = world.publish_labeled(
        coin_chain,
        P0,
        "fuzz-auction-coin",
        Box::new(AuctionCoinContract::new(params.clone())),
    );
    let ticket_addr = world.publish_labeled(
        ticket_chain,
        P0,
        "fuzz-auction-ticket",
        Box::new(AuctionTicketContract::new(params)),
    );
    let chains = [coin_chain, ticket_chain];
    let depth = rng.below(3) as u32;
    if depth > 0 {
        for chain in chains {
            world.set_finality(chain, FinalityParams { depth, delta: 0 });
        }
    }

    for _ in 0..10 + rng.below(21) {
        let caller = any_party(&mut rng);
        let bidder = PARTIES[1 + rng.below(2) as usize];
        match rng.below(7) {
            0 => advance_round(&mut world, &chains, depth, &mut rng),
            1 => drop(world.call(caller, coin_addr, &AuctionCoinMsg::DepositPremium, "fuzz endow")),
            2 => {
                let amount = Amount::new(1 + rng.below(40) as u128);
                let msg = AuctionCoinMsg::PlaceBid { amount };
                drop(world.call(caller, coin_addr, &msg, "fuzz bid"));
            }
            3 => {
                let secret = maybe_secret(&secrets[rng.below(2) as usize], &mut rng);
                let msg = AuctionCoinMsg::SubmitHashkey { winner: bidder, secret };
                drop(world.call(caller, coin_addr, &msg, "fuzz coin k"));
            }
            4 => {
                drop(world.call(caller, ticket_addr, &AuctionTicketMsg::EscrowTickets, "fuzz esc"))
            }
            5 => {
                let secret = maybe_secret(&secrets[rng.below(2) as usize], &mut rng);
                let msg = AuctionTicketMsg::SubmitHashkey { winner: bidder, secret };
                drop(world.call(caller, ticket_addr, &msg, "fuzz ticket k"));
            }
            _ => {
                let _ = world.call(caller, coin_addr, &AuctionCoinMsg::Settle, "fuzz settle");
                let _ = world.call(caller, ticket_addr, &AuctionTicketMsg::Settle, "fuzz settle");
            }
        }
    }

    advance_past(&mut world, challenge_deadline, delta);
    for p in PARTIES {
        let _ = world.call(p, coin_addr, &AuctionCoinMsg::Settle, "drain settle");
        let _ = world.call(p, ticket_addr, &AuctionTicketMsg::Settle, "drain settle");
    }
    world.advance_delta();

    assert_conserved(&world, coin_chain, &[(coin, 300)], seed);
    assert_conserved(&world, ticket_chain, &[(ticket, 1)], seed);
    assert_no_residue(&world, coin_addr, &[coin], seed);
    assert_no_residue(&world, ticket_addr, &[ticket], seed);
}

// ---------------------------------------------------------------------------
// Drivers: one pinned seed stream per family.
// ---------------------------------------------------------------------------

fn run_family(tag: u64, f: impl Fn(u64)) {
    let mut stream = SplitMix64::new(FUZZ_SEED ^ tag);
    for _ in 0..iterations() {
        f(stream.next_u64());
    }
}

#[test]
fn fuzz_htlc_raw_calls() {
    run_family(0x48_54_4C_43, fuzz_htlc_once); // "HTLC"
}

#[test]
fn fuzz_hedged_raw_calls() {
    run_family(0x48_45_44_47, fuzz_hedged_once); // "HEDG"
}

#[test]
fn fuzz_arc_raw_calls() {
    run_family(0x41_52_43_5F, fuzz_arc_once); // "ARC_"
}

#[test]
fn fuzz_auction_raw_calls() {
    run_family(0x41_55_43_54, fuzz_auction_once); // "AUCT"
}
