//! The hedged auction contracts (§9 of the paper).
//!
//! Alice auctions tickets (on the ticket chain) to a set of bidders who pay
//! in coins (on the coin chain). Alice generates one secret per potential
//! winner; publishing the winner's hashkey on both contracts settles the
//! auction. The design goals reproduced here are Lemmas 7–8: a compliant
//! bidder's bid can never be stolen, the losing bidder cannot grief the
//! auction, and the auctioneer posts a premium of `n·p` that compensates
//! the bidders if she walks away or cheats.

use std::any::Any;
use std::collections::BTreeMap;

use chainsim::{
    Amount, AssetId, CallEnv, Contract, ContractError, Disposition, NoteText, PartyId,
    StateMachine, StateSpec, Time, TimeWindow, TransitionSpec,
};
use cryptosim::{Hashlock, Secret};
use serde::{Deserialize, Serialize};

/// Shared parameters of the auction (agreed by all parties up front).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuctionParams {
    /// The auctioneer (Alice).
    pub auctioneer: PartyId,
    /// The bidders (Bob, Carol, …).
    pub bidders: Vec<PartyId>,
    /// The asset bids are denominated in (coin-chain asset).
    pub coin_asset: AssetId,
    /// The asset being auctioned (ticket-chain asset).
    pub ticket_asset: AssetId,
    /// How many tickets are being auctioned.
    pub ticket_amount: Amount,
    /// The per-bidder premium `p`; the auctioneer deposits `n·p` in total.
    pub premium_per_bidder: Amount,
    /// One hashlock per bidder; publishing bidder `X`'s preimage declares
    /// `X` the winner.
    pub hashlocks: Vec<(PartyId, Hashlock)>,
    /// End of the bidding phase.
    pub bid_deadline: Time,
    /// End of the challenge phase; hashkeys are accepted strictly before
    /// this height and settlement is allowed from it.
    pub challenge_deadline: Time,
}

impl AuctionParams {
    /// The total premium the auctioneer must deposit (`n·p`).
    pub fn total_premium(&self) -> Amount {
        self.premium_per_bidder.scaled(self.bidders.len() as u128)
    }

    fn hashlock_for(&self, bidder: PartyId) -> Option<Hashlock> {
        self.hashlocks.iter().find(|(b, _)| *b == bidder).map(|(_, h)| *h)
    }

    fn is_bidder(&self, party: PartyId) -> bool {
        self.bidders.contains(&party)
    }
}

/// How the coin-chain contract settled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuctionOutcome {
    /// Exactly the true winner's hashkey arrived: the winner's bid went to
    /// the auctioneer and every other bid was refunded.
    Completed {
        /// The winning bidder.
        winner: PartyId,
        /// The winning bid amount.
        winning_bid: Amount,
    },
    /// The auctioneer deviated (wrong, extra or missing hashkey): all bids
    /// were refunded and each bidder was compensated with `p`.
    Aborted,
}

/// Messages accepted by the [`AuctionCoinContract`].
#[derive(Clone, Debug)]
pub enum AuctionCoinMsg {
    /// The auctioneer deposits the `n·p` premium endowment.
    DepositPremium,
    /// A bidder places (and funds) its bid.
    PlaceBid {
        /// The bid amount.
        amount: Amount,
    },
    /// Anyone submits a hashkey identifying `winner` (the challenge phase
    /// forwards hashkeys seen on the other chain).
    SubmitHashkey {
        /// The bidder this secret declares the winner.
        winner: PartyId,
        /// The preimage of that bidder's hashlock.
        secret: Secret,
    },
    /// Anyone settles the auction after the challenge phase.
    Settle,
}

/// The coin-chain half of the auction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuctionCoinContract {
    params: AuctionParams,
    premium_held: bool,
    premium_settled: bool,
    bids: BTreeMap<PartyId, Amount>,
    hashkeys: BTreeMap<PartyId, Time>,
    outcome: Option<AuctionOutcome>,
}

impl AuctionCoinContract {
    /// Creates the coin-chain contract.
    pub fn new(params: AuctionParams) -> Self {
        AuctionCoinContract {
            params,
            premium_held: false,
            premium_settled: false,
            bids: BTreeMap::new(),
            hashkeys: BTreeMap::new(),
            outcome: None,
        }
    }

    /// The auction parameters.
    pub fn params(&self) -> &AuctionParams {
        &self.params
    }

    /// The recorded bids.
    pub fn bids(&self) -> &BTreeMap<PartyId, Amount> {
        &self.bids
    }

    /// The bidders whose hashkeys have been submitted here.
    pub fn hashkeys_received(&self) -> Vec<PartyId> {
        self.hashkeys.keys().copied().collect()
    }

    /// The settlement outcome, if the auction has been settled.
    pub fn outcome(&self) -> Option<AuctionOutcome> {
        self.outcome
    }

    /// The highest bidder and bid, if any bids were placed (ties broken by
    /// lower party id, deterministically).
    pub fn high_bidder(&self) -> Option<(PartyId, Amount)> {
        self.bids
            .iter()
            .max_by(|(pa, aa), (pb, ab)| aa.cmp(ab).then(pb.cmp(pa)))
            .map(|(p, a)| (*p, *a))
    }

    /// Whether the auctioneer's premium endowment is currently held.
    pub fn premium_held(&self) -> bool {
        self.premium_held
    }

    fn deposit_premium(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.auctioneer {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.premium_held {
            return Err(ContractError::invalid_state("premium already deposited"));
        }
        env.ensure_before(self.params.bid_deadline)?;
        env.debit_caller(self.params.coin_asset, self.params.total_premium())?;
        self.premium_held = true;
        Ok(())
    }

    fn place_bid(&mut self, env: &mut CallEnv<'_>, amount: Amount) -> Result<(), ContractError> {
        let bidder = env.caller();
        if !self.params.is_bidder(bidder) {
            return Err(ContractError::Unauthorised { caller: bidder });
        }
        if self.bids.contains_key(&bidder) {
            return Err(ContractError::invalid_state("bid already placed"));
        }
        if amount.is_zero() {
            return Err(ContractError::invalid_state("bid must be positive"));
        }
        // Lemma 7/8 presuppose the auctioneer's n·p endowment: without it a
        // declared winner's bid would be paid out with no compensation pool
        // behind it. An earlier revision accepted naked bids, and a
        // crash-then-recover auctioneer — endowment call bounced after the
        // deadline, declaration still in time — collected a winning bid with
        // no tickets escrowed on the other chain. The contract itself now
        // refuses bids until the endowment is in place.
        if !self.premium_held {
            return Err(ContractError::invalid_state(
                "bids are not accepted before the auctioneer's premium endowment",
            ));
        }
        env.ensure_before(self.params.bid_deadline)?;
        env.debit_caller(self.params.coin_asset, amount)?;
        self.bids.insert(bidder, amount);
        Ok(())
    }

    fn submit_hashkey(
        &mut self,
        env: &mut CallEnv<'_>,
        winner: PartyId,
        secret: &Secret,
    ) -> Result<(), ContractError> {
        let hashlock = self
            .params
            .hashlock_for(winner)
            .ok_or_else(|| ContractError::invalid_state(format!("{winner} is not a bidder")))?;
        if !hashlock.matches(secret) {
            return Err(ContractError::HashlockMismatch);
        }
        env.ensure_reached(self.params.bid_deadline)?;
        env.ensure_before(self.params.challenge_deadline)?;
        self.hashkeys.entry(winner).or_insert_with(|| env.now());
        env.emit_note(NoteText::Party {
            prefix: "hashkey naming ",
            party: winner,
            suffix: " recorded on the coin chain",
        });
        Ok(())
    }

    fn settle(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if self.outcome.is_some() {
            return Err(ContractError::invalid_state("auction already settled"));
        }
        env.ensure_reached(self.params.challenge_deadline)?;
        let received = self.hashkeys_received();
        let high = self.high_bidder();
        let honest_completion = matches!(
            (high, received.as_slice()),
            (Some((winner, _)), [only]) if *only == winner
        );
        if honest_completion {
            let (winner, winning_bid) = high.expect("checked above");
            // Winner's bid to the auctioneer, other bids refunded, premium back.
            env.pay_out(self.params.auctioneer, self.params.coin_asset, winning_bid)?;
            for (bidder, amount) in self.bids.iter() {
                if *bidder != winner {
                    env.pay_out(*bidder, self.params.coin_asset, *amount)?;
                }
            }
            if self.premium_held {
                env.pay_out(
                    self.params.auctioneer,
                    self.params.coin_asset,
                    self.params.total_premium(),
                )?;
                self.premium_settled = true;
            }
            self.outcome = Some(AuctionOutcome::Completed { winner, winning_bid });
            env.emit_note(NoteText::Party {
                prefix: "auction completed: ",
                party: winner,
                suffix: " wins",
            });
        } else {
            // Refund all bids; compensate each bidder with p from the premium.
            for (bidder, amount) in self.bids.iter() {
                env.pay_out(*bidder, self.params.coin_asset, *amount)?;
            }
            if self.premium_held {
                for bidder in &self.params.bidders {
                    env.pay_out(*bidder, self.params.coin_asset, self.params.premium_per_bidder)?;
                }
                self.premium_settled = true;
            }
            self.outcome = Some(AuctionOutcome::Aborted);
            env.emit_note("auction aborted: bids refunded and premiums paid to bidders");
        }
        self.premium_held = false;
        Ok(())
    }
}

impl Contract for AuctionCoinContract {
    fn type_name(&self) -> &'static str {
        "AuctionCoinContract"
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }

    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg = msg.downcast_ref::<AuctionCoinMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            AuctionCoinMsg::DepositPremium => self.deposit_premium(env),
            AuctionCoinMsg::PlaceBid { amount } => self.place_bid(env, *amount),
            AuctionCoinMsg::SubmitHashkey { winner, secret } => {
                self.submit_hashkey(env, *winner, secret)
            }
            AuctionCoinMsg::Settle => self.settle(env),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    // Custody spec. Bids are modelled as one aggregate fund: the contract
    // refuses naked bids (`place_bid` requires the premium endowment), so
    // bids only ever exist on top of a held premium pool, and both settle
    // branches dispose of every held fund. Additional bids are the
    // `PlaceBidMore` self-loop — custody-neutral for the may-hold analysis
    // but kept for fidelity with the message surface.
    fn state_spec(&self) -> Option<StateSpec> {
        Some(
            StateSpec::new(self.type_name()).machine(
                StateMachine::new("coin", "Init")
                    .fund("premium_pool")
                    .fund("bids")
                    .transition(
                        TransitionSpec::new(
                            "DepositPremium",
                            "Init",
                            "Endowed",
                            TimeWindow::before(self.params.bid_deadline),
                        )
                        .deposits("premium_pool"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "PlaceBid",
                            "Endowed",
                            "EndowedBids",
                            TimeWindow::before(self.params.bid_deadline),
                        )
                        .deposits("bids"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "PlaceBidMore",
                            "EndowedBids",
                            "EndowedBids",
                            TimeWindow::before(self.params.bid_deadline),
                        )
                        .deposits("bids"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleCompleted",
                            "EndowedBids",
                            "Completed",
                            TimeWindow::from(self.params.challenge_deadline),
                        )
                        .releases("bids", Disposition::Redeem)
                        .releases("premium_pool", Disposition::Refund),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleAborted",
                            "EndowedBids",
                            "Aborted",
                            TimeWindow::from(self.params.challenge_deadline),
                        )
                        .releases("bids", Disposition::Refund)
                        .releases("premium_pool", Disposition::Forfeit),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleNoBids",
                            "Endowed",
                            "Aborted",
                            TimeWindow::from(self.params.challenge_deadline),
                        )
                        .releases("premium_pool", Disposition::Forfeit),
                    ),
            ),
        )
    }
}

/// Messages accepted by the [`AuctionTicketContract`].
#[derive(Clone, Debug)]
pub enum AuctionTicketMsg {
    /// The auctioneer escrows the tickets.
    EscrowTickets,
    /// Anyone submits a hashkey identifying `winner`.
    SubmitHashkey {
        /// The bidder this secret declares the winner.
        winner: PartyId,
        /// The preimage of that bidder's hashlock.
        secret: Secret,
    },
    /// Anyone settles the contract after the challenge phase.
    Settle,
}

/// The ticket-chain half of the auction.
///
/// If exactly one hashkey is received before the challenge deadline, the
/// tickets go to that bidder; with zero or two (or more) hashkeys the
/// tickets are refunded to the auctioneer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuctionTicketContract {
    params: AuctionParams,
    tickets_held: bool,
    hashkeys: BTreeMap<PartyId, Time>,
    winner: Option<PartyId>,
    settled: bool,
}

impl AuctionTicketContract {
    /// Creates the ticket-chain contract.
    pub fn new(params: AuctionParams) -> Self {
        AuctionTicketContract {
            params,
            tickets_held: false,
            hashkeys: BTreeMap::new(),
            winner: None,
            settled: false,
        }
    }

    /// The auction parameters.
    pub fn params(&self) -> &AuctionParams {
        &self.params
    }

    /// Whether the tickets are currently escrowed.
    pub fn tickets_held(&self) -> bool {
        self.tickets_held
    }

    /// The bidders whose hashkeys have been submitted here.
    pub fn hashkeys_received(&self) -> Vec<PartyId> {
        self.hashkeys.keys().copied().collect()
    }

    /// The bidder the tickets were awarded to, if any.
    pub fn winner(&self) -> Option<PartyId> {
        self.winner
    }

    /// Whether the contract has settled.
    pub fn settled(&self) -> bool {
        self.settled
    }

    fn escrow_tickets(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.auctioneer {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.tickets_held {
            return Err(ContractError::invalid_state("tickets already escrowed"));
        }
        env.ensure_before(self.params.bid_deadline)?;
        env.debit_caller(self.params.ticket_asset, self.params.ticket_amount)?;
        self.tickets_held = true;
        Ok(())
    }

    fn submit_hashkey(
        &mut self,
        env: &mut CallEnv<'_>,
        winner: PartyId,
        secret: &Secret,
    ) -> Result<(), ContractError> {
        let hashlock = self
            .params
            .hashlock_for(winner)
            .ok_or_else(|| ContractError::invalid_state(format!("{winner} is not a bidder")))?;
        if !hashlock.matches(secret) {
            return Err(ContractError::HashlockMismatch);
        }
        env.ensure_reached(self.params.bid_deadline)?;
        env.ensure_before(self.params.challenge_deadline)?;
        self.hashkeys.entry(winner).or_insert_with(|| env.now());
        env.emit_note(NoteText::Party {
            prefix: "hashkey naming ",
            party: winner,
            suffix: " recorded on the ticket chain",
        });
        Ok(())
    }

    fn settle(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if self.settled {
            return Err(ContractError::invalid_state("already settled"));
        }
        env.ensure_reached(self.params.challenge_deadline)?;
        if !self.tickets_held {
            self.settled = true;
            env.emit_note("nothing escrowed; nothing to settle");
            return Ok(());
        }
        let received = self.hashkeys_received();
        if received.len() == 1 {
            let winner = received[0];
            env.pay_out(winner, self.params.ticket_asset, self.params.ticket_amount)?;
            self.winner = Some(winner);
            env.emit_note(NoteText::Party {
                prefix: "tickets transferred to ",
                party: winner,
                suffix: "",
            });
        } else {
            env.pay_out(
                self.params.auctioneer,
                self.params.ticket_asset,
                self.params.ticket_amount,
            )?;
            env.emit_note("tickets refunded to the auctioneer");
        }
        self.tickets_held = false;
        self.settled = true;
        Ok(())
    }
}

impl Contract for AuctionTicketContract {
    fn type_name(&self) -> &'static str {
        "AuctionTicketContract"
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }

    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg =
            msg.downcast_ref::<AuctionTicketMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            AuctionTicketMsg::EscrowTickets => self.escrow_tickets(env),
            AuctionTicketMsg::SubmitHashkey { winner, secret } => {
                self.submit_hashkey(env, *winner, secret)
            }
            AuctionTicketMsg::Settle => self.settle(env),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    // Custody spec. One machine, one fund: the ticket escrow either goes to
    // the unique named winner (exactly one hashkey submitted in the
    // challenge window) or back to the auctioneer — both from the
    // challenge deadline on, mirroring `settle`.
    fn state_spec(&self) -> Option<StateSpec> {
        Some(
            StateSpec::new(self.type_name()).machine(
                StateMachine::new("tickets", "Init")
                    .fund("tickets")
                    .transition(
                        TransitionSpec::new(
                            "EscrowTickets",
                            "Init",
                            "TicketsHeld",
                            TimeWindow::before(self.params.bid_deadline),
                        )
                        .deposits("tickets"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleWinner",
                            "TicketsHeld",
                            "Won",
                            TimeWindow::from(self.params.challenge_deadline),
                        )
                        .releases("tickets", Disposition::Redeem),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleReturn",
                            "TicketsHeld",
                            "Returned",
                            TimeWindow::from(self.params.challenge_deadline),
                        )
                        .releases("tickets", Disposition::Refund),
                    ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsim::{AccountRef, ContractAddr, World};

    const ALICE: PartyId = PartyId(0);
    const BOB: PartyId = PartyId(1);
    const CAROL: PartyId = PartyId(2);

    struct Fixture {
        world: World,
        coin_addr: ContractAddr,
        ticket_addr: ContractAddr,
        coin: AssetId,
        ticket: AssetId,
        secret_bob: Secret,
        secret_carol: Secret,
    }

    fn setup() -> Fixture {
        let mut world = World::new(1);
        let coin_chain = world.add_chain("coin");
        let ticket_chain = world.add_chain("ticket");
        let coin = world.register_asset("coin");
        let ticket = world.register_asset("ticket");
        world.chain_mut(coin_chain).mint(ALICE, coin, Amount::new(10));
        world.chain_mut(coin_chain).mint(BOB, coin, Amount::new(100));
        world.chain_mut(coin_chain).mint(CAROL, coin, Amount::new(100));
        world.chain_mut(ticket_chain).mint(ALICE, ticket, Amount::new(5));

        let secret_bob = Secret::from_seed(101);
        let secret_carol = Secret::from_seed(102);
        let params = AuctionParams {
            auctioneer: ALICE,
            bidders: vec![BOB, CAROL],
            coin_asset: coin,
            ticket_asset: ticket,
            ticket_amount: Amount::new(5),
            premium_per_bidder: Amount::new(2),
            hashlocks: vec![(BOB, secret_bob.hashlock()), (CAROL, secret_carol.hashlock())],
            bid_deadline: Time(2),
            challenge_deadline: Time(7),
        };
        let coin_addr = world.publish_labeled(
            coin_chain,
            ALICE,
            "auction-coin",
            Box::new(AuctionCoinContract::new(params.clone())),
        );
        let ticket_addr = world.publish_labeled(
            ticket_chain,
            ALICE,
            "auction-ticket",
            Box::new(AuctionTicketContract::new(params)),
        );
        Fixture { world, coin_addr, ticket_addr, coin, ticket, secret_bob, secret_carol }
    }

    fn coin_contract(f: &Fixture) -> &AuctionCoinContract {
        f.world
            .chain(f.coin_addr.chain)
            .contract_as::<AuctionCoinContract>(f.coin_addr.contract)
            .unwrap()
    }

    fn ticket_contract(f: &Fixture) -> &AuctionTicketContract {
        f.world
            .chain(f.ticket_addr.chain)
            .contract_as::<AuctionTicketContract>(f.ticket_addr.contract)
            .unwrap()
    }

    fn coin_balance(f: &Fixture, party: PartyId) -> Amount {
        f.world.chain(f.coin_addr.chain).balance(AccountRef::Party(party), f.coin)
    }

    fn ticket_balance(f: &Fixture, party: PartyId) -> Amount {
        f.world.chain(f.ticket_addr.chain).balance(AccountRef::Party(party), f.ticket)
    }

    fn run_honest_setup(f: &mut Fixture) {
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium").unwrap();
        f.world.call(ALICE, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "tickets").unwrap();
        f.world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(60) }, "bid")
            .unwrap();
        f.world
            .call(CAROL, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(40) }, "bid")
            .unwrap();
        f.world.advance_blocks(2);
    }

    #[test]
    fn honest_auction_awards_high_bidder() {
        let mut f = setup();
        run_honest_setup(&mut f);
        // Declaration: Alice publishes Bob's hashkey (the true winner) on both chains.
        let secret = f.secret_bob.clone();
        f.world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: secret.clone() },
                "declare",
            )
            .unwrap();
        f.world
            .call(
                ALICE,
                f.ticket_addr,
                &AuctionTicketMsg::SubmitHashkey { winner: BOB, secret },
                "declare",
            )
            .unwrap();
        f.world.advance_blocks(5);
        f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();

        assert_eq!(
            coin_contract(&f).outcome(),
            Some(AuctionOutcome::Completed { winner: BOB, winning_bid: Amount::new(60) })
        );
        assert_eq!(ticket_contract(&f).winner(), Some(BOB));
        // Alice receives the winning bid and her premium back.
        assert_eq!(coin_balance(&f, ALICE), Amount::new(10 + 60));
        // Carol's bid is refunded; Bob paid 60 and got the tickets.
        assert_eq!(coin_balance(&f, CAROL), Amount::new(100));
        assert_eq!(coin_balance(&f, BOB), Amount::new(40));
        assert_eq!(ticket_balance(&f, BOB), Amount::new(5));
        assert_eq!(ticket_balance(&f, ALICE), Amount::ZERO);
    }

    #[test]
    fn cheating_auctioneer_compensates_bidders() {
        // Alice declares the *low* bidder (Carol) the winner: the coin chain
        // detects the mismatch, refunds all bids and pays each bidder p.
        let mut f = setup();
        run_honest_setup(&mut f);
        let secret = f.secret_carol.clone();
        f.world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: CAROL, secret: secret.clone() },
                "declare",
            )
            .unwrap();
        f.world
            .call(
                ALICE,
                f.ticket_addr,
                &AuctionTicketMsg::SubmitHashkey { winner: CAROL, secret },
                "declare",
            )
            .unwrap();
        f.world.advance_blocks(5);
        f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();

        assert_eq!(coin_contract(&f).outcome(), Some(AuctionOutcome::Aborted));
        // All bids refunded plus p = 2 compensation each; Alice forfeits 2p.
        assert_eq!(coin_balance(&f, BOB), Amount::new(102));
        assert_eq!(coin_balance(&f, CAROL), Amount::new(102));
        assert_eq!(coin_balance(&f, ALICE), Amount::new(6));
        // The tickets still go to the single named bidder on the ticket
        // chain (Alice may give her tickets to whomever she wants; the point
        // is that no compliant bidder's coins were stolen).
        assert_eq!(ticket_contract(&f).winner(), Some(CAROL));
    }

    #[test]
    fn absent_auctioneer_compensates_bidders_and_refunds_tickets() {
        // Alice never declares a winner: bids refunded + p each, tickets back
        // to Alice (zero hashkeys on the ticket chain).
        let mut f = setup();
        run_honest_setup(&mut f);
        f.world.advance_blocks(5);
        f.world.call(CAROL, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        f.world.call(CAROL, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();
        assert_eq!(coin_contract(&f).outcome(), Some(AuctionOutcome::Aborted));
        assert_eq!(coin_balance(&f, BOB), Amount::new(102));
        assert_eq!(coin_balance(&f, CAROL), Amount::new(102));
        assert_eq!(coin_balance(&f, ALICE), Amount::new(6));
        assert_eq!(ticket_balance(&f, ALICE), Amount::new(5));
        assert_eq!(ticket_contract(&f).winner(), None);
    }

    #[test]
    fn two_hashkeys_on_ticket_chain_refund_tickets() {
        // If both hashkeys somehow appear on the ticket chain, the tickets
        // are refunded to Alice (and the coin chain aborts).
        let mut f = setup();
        run_honest_setup(&mut f);
        for (winner, secret) in [(BOB, f.secret_bob.clone()), (CAROL, f.secret_carol.clone())] {
            f.world
                .call(
                    ALICE,
                    f.ticket_addr,
                    &AuctionTicketMsg::SubmitHashkey { winner, secret: secret.clone() },
                    "declare",
                )
                .unwrap();
            f.world
                .call(
                    ALICE,
                    f.coin_addr,
                    &AuctionCoinMsg::SubmitHashkey { winner, secret },
                    "declare",
                )
                .unwrap();
        }
        f.world.advance_blocks(5);
        f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();
        assert_eq!(coin_contract(&f).outcome(), Some(AuctionOutcome::Aborted));
        assert_eq!(ticket_balance(&f, ALICE), Amount::new(5));
        assert_eq!(coin_balance(&f, BOB), Amount::new(102));
    }

    #[test]
    fn bids_respect_deadline_role_and_uniqueness() {
        let mut f = setup();
        // No bids before the endowment is in place.
        assert!(f
            .world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(10) }, "bid")
            .is_err());
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium").unwrap();
        // Alice cannot bid.
        assert!(f
            .world
            .call(ALICE, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(1) }, "bid")
            .is_err());
        // Zero bids rejected.
        assert!(f
            .world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::ZERO }, "bid")
            .is_err());
        f.world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(10) }, "bid")
            .unwrap();
        // Duplicate bid rejected.
        assert!(f
            .world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(20) }, "bid")
            .is_err());
        // Late bid rejected.
        f.world.advance_blocks(2);
        assert!(f
            .world
            .call(CAROL, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(20) }, "bid")
            .is_err());
    }

    #[test]
    fn hashkeys_rejected_outside_window_or_with_bad_secret() {
        let mut f = setup();
        run_honest_setup(&mut f);
        // Wrong secret for the named winner.
        assert!(f
            .world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: f.secret_carol.clone() },
                "bad",
            )
            .is_err());
        // Unknown winner.
        assert!(f
            .world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: PartyId(9), secret: f.secret_bob.clone() },
                "bad",
            )
            .is_err());
        // After the challenge deadline the hashkey is rejected.
        f.world.advance_blocks(5);
        assert!(f
            .world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() },
                "late",
            )
            .is_err());
    }

    #[test]
    fn hashkeys_rejected_before_bidding_closes() {
        let mut f = setup();
        assert!(f
            .world
            .call(
                ALICE,
                f.coin_addr,
                &AuctionCoinMsg::SubmitHashkey { winner: BOB, secret: f.secret_bob.clone() },
                "early",
            )
            .is_err());
    }

    #[test]
    fn settle_rejected_before_challenge_deadline_and_only_once() {
        let mut f = setup();
        run_honest_setup(&mut f);
        assert!(f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").is_err());
        f.world.advance_blocks(5);
        f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        assert!(f.world.call(BOB, f.coin_addr, &AuctionCoinMsg::Settle, "settle").is_err());
        f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();
        assert!(f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").is_err());
    }

    #[test]
    fn premium_and_tickets_require_auctioneer() {
        let mut f = setup();
        assert!(f
            .world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium")
            .is_err());
        assert!(f
            .world
            .call(BOB, f.ticket_addr, &AuctionTicketMsg::EscrowTickets, "tickets")
            .is_err());
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium").unwrap();
        assert!(f
            .world
            .call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium")
            .is_err());
        assert_eq!(coin_contract(&f).params().total_premium(), Amount::new(4));
        assert!(coin_contract(&f).premium_held());
    }

    #[test]
    fn high_bidder_tie_breaks_deterministically() {
        let mut f = setup();
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium").unwrap();
        f.world
            .call(BOB, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(50) }, "bid")
            .unwrap();
        f.world
            .call(CAROL, f.coin_addr, &AuctionCoinMsg::PlaceBid { amount: Amount::new(50) }, "bid")
            .unwrap();
        assert_eq!(coin_contract(&f).high_bidder(), Some((BOB, Amount::new(50))));
    }

    #[test]
    fn settle_with_no_bids_refunds_premium_path() {
        let mut f = setup();
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(7);
        f.world.call(ALICE, f.coin_addr, &AuctionCoinMsg::Settle, "settle").unwrap();
        // No bids and no hashkeys: the abort path pays each bidder p.
        assert_eq!(coin_contract(&f).outcome(), Some(AuctionOutcome::Aborted));
        assert_eq!(coin_balance(&f, BOB), Amount::new(102));
        assert_eq!(coin_balance(&f, CAROL), Amount::new(102));
    }

    #[test]
    fn ticket_settle_without_escrow_is_a_noop() {
        let mut f = setup();
        f.world.advance_blocks(7);
        f.world.call(BOB, f.ticket_addr, &AuctionTicketMsg::Settle, "settle").unwrap();
        assert!(ticket_contract(&f).settled());
        assert_eq!(ticket_balance(&f, ALICE), Amount::new(5));
    }
}
