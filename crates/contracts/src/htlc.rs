//! The classic hashed-timelock escrow (base two-party swap, §5.1).

use std::any::Any;

use chainsim::{
    Amount, AssetId, CallEnv, Contract, ContractError, Disposition, PartyId, StateMachine,
    StateSpec, Time, TimeWindow, TransitionSpec,
};
use cryptosim::{Hashlock, Secret};
use serde::{Deserialize, Serialize};

/// Lifecycle of an [`HtlcEscrow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HtlcState {
    /// Published but not yet funded.
    Created,
    /// The principal has been escrowed by the sender.
    Escrowed,
    /// The recipient presented the secret and received the principal.
    Redeemed,
    /// The timelock expired and the principal returned to the sender.
    Refunded,
}

/// Messages accepted by an [`HtlcEscrow`].
#[derive(Clone, Debug)]
pub enum HtlcMsg {
    /// The sender escrows the principal.
    Escrow,
    /// The recipient redeems the principal by revealing the secret.
    Redeem {
        /// The hashlock preimage.
        secret: Secret,
    },
    /// Anyone triggers the refund after the timelock has expired.
    Refund,
}

/// A hashed-timelock escrow contract.
///
/// The sender escrows `amount` of `asset`; if the recipient presents the
/// hashlock preimage before `timelock`, the asset is transferred to the
/// recipient (and the secret becomes publicly visible on chain); otherwise
/// the asset is refunded to the sender after the timelock.
///
/// This is the §5.1 building block with **no** sore-loser protection: a
/// counterparty that walks away costs the escrower nothing but time, which
/// is exactly the vulnerability the hedged contracts remove.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HtlcEscrow {
    sender: PartyId,
    recipient: PartyId,
    asset: AssetId,
    amount: Amount,
    hashlock: Hashlock,
    timelock: Time,
    state: HtlcState,
    escrowed_at: Option<Time>,
    settled_at: Option<Time>,
    revealed_secret: Option<Secret>,
}

impl HtlcEscrow {
    /// Creates a new, unfunded HTLC escrow.
    pub fn new(
        sender: PartyId,
        recipient: PartyId,
        asset: AssetId,
        amount: Amount,
        hashlock: Hashlock,
        timelock: Time,
    ) -> Self {
        HtlcEscrow {
            sender,
            recipient,
            asset,
            amount,
            hashlock,
            timelock,
            state: HtlcState::Created,
            escrowed_at: None,
            settled_at: None,
            revealed_secret: None,
        }
    }

    /// The current lifecycle state.
    pub fn state(&self) -> HtlcState {
        self.state
    }

    /// The secret revealed by a successful redemption, if any.
    ///
    /// Contract state is public, so a counterparty observing the chain
    /// learns the secret from here — this is how the secret propagates from
    /// the banana chain back to the apricot chain in the base swap.
    pub fn revealed_secret(&self) -> Option<&Secret> {
        self.revealed_secret.as_ref()
    }

    /// The height at which the principal was escrowed, if it has been.
    pub fn escrowed_at(&self) -> Option<Time> {
        self.escrowed_at
    }

    /// The height at which the escrow was redeemed or refunded, if it has been.
    pub fn settled_at(&self) -> Option<Time> {
        self.settled_at
    }

    /// The escrow timelock.
    pub fn timelock(&self) -> Time {
        self.timelock
    }

    /// The escrowed asset and amount.
    pub fn principal(&self) -> (AssetId, Amount) {
        (self.asset, self.amount)
    }

    fn escrow(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.sender {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.state != HtlcState::Created {
            return Err(ContractError::invalid_state("principal already escrowed or settled"));
        }
        env.ensure_before(self.timelock)?;
        env.debit_caller(self.asset, self.amount)?;
        self.state = HtlcState::Escrowed;
        self.escrowed_at = Some(env.now());
        Ok(())
    }

    fn redeem(&mut self, env: &mut CallEnv<'_>, secret: &Secret) -> Result<(), ContractError> {
        if env.caller() != self.recipient {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.state != HtlcState::Escrowed {
            return Err(ContractError::invalid_state("nothing escrowed to redeem"));
        }
        env.ensure_before(self.timelock)?;
        if !self.hashlock.matches(secret) {
            return Err(ContractError::HashlockMismatch);
        }
        env.pay_out(self.recipient, self.asset, self.amount)?;
        self.state = HtlcState::Redeemed;
        self.settled_at = Some(env.now());
        self.revealed_secret = Some(secret.clone());
        env.emit_note("principal redeemed with matching secret");
        Ok(())
    }

    fn refund(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if self.state != HtlcState::Escrowed {
            return Err(ContractError::invalid_state("nothing escrowed to refund"));
        }
        env.ensure_reached(self.timelock)?;
        env.pay_out(self.sender, self.asset, self.amount)?;
        self.state = HtlcState::Refunded;
        self.settled_at = Some(env.now());
        env.emit_note("principal refunded after timelock expiry");
        Ok(())
    }
}

impl Contract for HtlcEscrow {
    fn type_name(&self) -> &'static str {
        "HtlcEscrow"
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }

    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg = msg.downcast_ref::<HtlcMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            HtlcMsg::Escrow => self.escrow(env),
            HtlcMsg::Redeem { secret } => self.redeem(env, secret),
            HtlcMsg::Refund => self.refund(env),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    // Custody spec. One machine, one fund: the principal is escrowed before
    // the timelock and leaves custody either by redemption (strictly before
    // the timelock) or by refund (from the timelock on) — the windows
    // mirror the `ensure_before`/`ensure_reached` guards above exactly.
    fn state_spec(&self) -> Option<StateSpec> {
        Some(
            StateSpec::new(self.type_name()).machine(
                StateMachine::new("principal", "Created")
                    .fund("principal")
                    .transition(
                        TransitionSpec::new(
                            "Escrow",
                            "Created",
                            "Escrowed",
                            TimeWindow::before(self.timelock),
                        )
                        .deposits("principal"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "Redeem",
                            "Escrowed",
                            "Redeemed",
                            TimeWindow::before(self.timelock),
                        )
                        .releases("principal", Disposition::Redeem),
                    )
                    .transition(
                        TransitionSpec::new(
                            "Refund",
                            "Escrowed",
                            "Refunded",
                            TimeWindow::from(self.timelock),
                        )
                        .releases("principal", Disposition::Refund),
                    ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsim::{AccountRef, ChainError, ContractAddr, World};

    const ALICE: PartyId = PartyId(0);
    const BOB: PartyId = PartyId(1);

    struct Fixture {
        world: World,
        addr: ContractAddr,
        token: AssetId,
        secret: Secret,
    }

    fn setup(timelock: Time) -> Fixture {
        let mut world = World::new(1);
        let chain = world.add_chain("apricot");
        let token = world.register_asset("apricot-token");
        world.chain_mut(chain).mint(ALICE, token, Amount::new(100));
        let secret = Secret::from_seed(42);
        let escrow =
            HtlcEscrow::new(ALICE, BOB, token, Amount::new(100), secret.hashlock(), timelock);
        let addr = world.publish_labeled(chain, ALICE, "htlc", Box::new(escrow));
        Fixture { world, addr, token, secret }
    }

    fn state(f: &Fixture) -> HtlcState {
        f.world.chain(f.addr.chain).contract_as::<HtlcEscrow>(f.addr.contract).unwrap().state()
    }

    #[test]
    fn happy_path_escrow_then_redeem() {
        let mut f = setup(Time(10));
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        assert_eq!(state(&f), HtlcState::Escrowed);
        let secret = f.secret.clone();
        f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "redeem").unwrap();
        assert_eq!(state(&f), HtlcState::Redeemed);
        let chain = f.world.chain(f.addr.chain);
        assert_eq!(chain.balance(AccountRef::Party(BOB), f.token), Amount::new(100));
        assert_eq!(chain.balance(AccountRef::Contract(f.addr.contract), f.token), Amount::ZERO);
        // The secret is now public contract state.
        assert!(chain
            .contract_as::<HtlcEscrow>(f.addr.contract)
            .unwrap()
            .revealed_secret()
            .is_some());
    }

    #[test]
    fn refund_after_timelock() {
        let mut f = setup(Time(3));
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        // Too early to refund.
        assert!(f.world.call(BOB, f.addr, &HtlcMsg::Refund, "refund").is_err());
        f.world.advance_blocks(3);
        f.world.call(BOB, f.addr, &HtlcMsg::Refund, "refund").unwrap();
        assert_eq!(state(&f), HtlcState::Refunded);
        assert_eq!(
            f.world.chain(f.addr.chain).balance(AccountRef::Party(ALICE), f.token),
            Amount::new(100)
        );
    }

    #[test]
    fn redeem_rejected_after_timelock() {
        let mut f = setup(Time(2));
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        f.world.advance_blocks(2);
        let secret = f.secret.clone();
        let err = f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "redeem").unwrap_err();
        assert!(matches!(err, ChainError::ContractFailed { .. }));
        assert_eq!(state(&f), HtlcState::Escrowed);
    }

    #[test]
    fn redeem_rejected_with_wrong_secret_or_caller() {
        let mut f = setup(Time(10));
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        let wrong = Secret::from_seed(1);
        assert!(f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret: wrong }, "redeem").is_err());
        let secret = f.secret.clone();
        assert!(f.world.call(ALICE, f.addr, &HtlcMsg::Redeem { secret }, "redeem").is_err());
        assert_eq!(state(&f), HtlcState::Escrowed);
    }

    #[test]
    fn escrow_requires_sender_and_single_use() {
        let mut f = setup(Time(10));
        assert!(f.world.call(BOB, f.addr, &HtlcMsg::Escrow, "escrow").is_err());
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        assert!(f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").is_err());
    }

    #[test]
    fn escrow_rejected_after_timelock() {
        let mut f = setup(Time(2));
        f.world.advance_blocks(2);
        assert!(f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").is_err());
        assert_eq!(state(&f), HtlcState::Created);
    }

    #[test]
    fn refund_requires_escrowed_state() {
        let mut f = setup(Time(1));
        f.world.advance_blocks(2);
        assert!(f.world.call(ALICE, f.addr, &HtlcMsg::Refund, "refund").is_err());
    }

    #[test]
    fn accessors_report_lifecycle() {
        let mut f = setup(Time(10));
        f.world.call(ALICE, f.addr, &HtlcMsg::Escrow, "escrow").unwrap();
        let secret = f.secret.clone();
        f.world.advance_blocks(2);
        f.world.call(BOB, f.addr, &HtlcMsg::Redeem { secret }, "redeem").unwrap();
        let escrow =
            f.world.chain(f.addr.chain).contract_as::<HtlcEscrow>(f.addr.contract).unwrap();
        assert_eq!(escrow.escrowed_at(), Some(Time(0)));
        assert_eq!(escrow.settled_at(), Some(Time(2)));
        assert_eq!(escrow.timelock(), Time(10));
        assert_eq!(escrow.principal(), (f.token, Amount::new(100)));
        assert_eq!(escrow.state(), HtlcState::Redeemed);
    }

    #[test]
    fn unsupported_message_is_rejected() {
        let mut f = setup(Time(10));
        #[derive(Clone, Debug)]
        struct Bogus;
        assert!(f.world.call(ALICE, f.addr, &Bogus, "bogus").is_err());
    }
}
