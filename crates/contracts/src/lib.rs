//! Smart contracts for hedged cross-chain transactions.
//!
//! This crate provides the on-chain half of the protocols in Xue & Herlihy
//! (PODC 2021): the escrow contracts that hold principals and premiums and
//! decide, purely from chain-local information, who receives what and when.
//!
//! * [`HtlcEscrow`] — the classic hashed-timelock escrow used by the *base*
//!   (unhedged) two-party swap of §5.1. It is the baseline against which the
//!   hedged protocols are compared.
//! * [`HedgedEscrow`] — the §5.2 contract: a principal slot plus a premium
//!   slot, with the premium refunded if the principal is redeemed and paid
//!   to the escrower if the principal times out unredeemed.
//! * [`ArcEscrow`] — the multi-party arc contract of §7 (also used by the
//!   broker protocol of §8): a hashlock *vector*, signature-authenticated
//!   hashkey paths with per-length timeouts, an escrow premium with the
//!   activation rule, and per-leader redemption premiums.
//! * [`AuctionCoinContract`] / [`AuctionTicketContract`] — the two halves of
//!   the §9 auction, including the auctioneer's premium endowment.
//! * [`Hashkey`] and [`PartyKeys`] — signature-authenticated hashkey paths.
//!
//! All contracts implement [`chainsim::Contract`] and are driven by typed
//! messages; their state is public and can be inspected with
//! [`chainsim::Blockchain::contract_as`].

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arc_escrow;
mod auction;
mod hashkey;
mod hedged;
mod htlc;

pub use arc_escrow::{
    ArcDeadlines, ArcEscrow, ArcEscrowMsg, ArcEscrowParams, HashkeyVerifyCache, PremiumSlotState,
    PrincipalState,
};
pub use auction::{
    AuctionCoinContract, AuctionCoinMsg, AuctionOutcome, AuctionParams, AuctionTicketContract,
    AuctionTicketMsg,
};
pub use hashkey::{Hashkey, PartyKeys};
pub use hedged::{
    HedgedEscrow, HedgedEscrowMsg, HedgedEscrowParams, HedgedPremiumState, HedgedPrincipalState,
};
pub use htlc::{HtlcEscrow, HtlcMsg, HtlcState};
