//! The multi-party arc escrow contract (§7, also used by the broker of §8).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use chainsim::{
    Amount, AssetId, CallEnv, Contract, ContractError, Disposition, NoteText, PartyId,
    StateMachine, StateSpec, Time, TimeWindow, TransitionSpec,
};
use cryptosim::{Digest, Hashlock, Secret};
use serde::{Deserialize, Serialize};
use swapgraph::{premiums, Digraph};

use crate::hashkey::{Hashkey, PartyKeys};

/// Lifecycle of a premium slot (escrow premium or a per-leader redemption
/// premium).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PremiumSlotState {
    /// Not deposited yet.
    NotDeposited,
    /// Held by the contract.
    Held,
    /// Refunded to its depositor.
    Refunded,
    /// Paid to the counterparty as compensation.
    PaidToCounterparty,
}

/// Lifecycle of the arc's principal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrincipalState {
    /// Not escrowed yet.
    NotEscrowed,
    /// Escrowed and held by the contract.
    Held,
    /// Redeemed by the receiver (all hashkeys presented in time).
    Redeemed,
    /// Refunded to the sender after timeout.
    Refunded,
}

/// Deadlines of an [`ArcEscrow`], mirroring the four phases of the hedged
/// multi-party protocol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArcDeadlines {
    /// Phase 1: the sender's escrow premium must be deposited before this height.
    pub escrow_premium_deadline: Time,
    /// Phase 2: the receiver's redemption premiums must be deposited before this height.
    pub redemption_premium_deadline: Time,
    /// Phase 3: the sender's asset must be escrowed before this height.
    pub asset_escrow_deadline: Time,
    /// Phase 4: a hashkey with path length `ℓ` is accepted strictly before
    /// `hashkey_timeout_base + ℓ · delta_blocks`.
    pub hashkey_timeout_base: Time,
    /// The synchrony bound Δ in blocks.
    pub delta_blocks: u64,
    /// After this height, [`ArcEscrowMsg::Settle`] distributes whatever is
    /// still held.
    pub final_deadline: Time,
}

impl ArcDeadlines {
    /// The latest height (exclusive) at which a hashkey with the given path
    /// length is still accepted.
    pub fn hashkey_deadline(&self, path_len: usize) -> Time {
        self.hashkey_timeout_base.plus(path_len as u64 * self.delta_blocks)
    }

    /// The latest height (exclusive) at which a redemption premium whose
    /// path has the given length is still accepted: one Δ per hop past the
    /// escrow-premium deadline, capped by the phase-wide
    /// [`ArcDeadlines::redemption_premium_deadline`].
    ///
    /// Premiums propagate outward from each leader exactly like hashkeys
    /// propagate in phase 4, so their deadlines carry the same per-hop
    /// structure. An earlier revision accepted every path until the shared
    /// phase deadline, which had a deadline-edge hole: a leader depositing
    /// its own (path-length-1) premium at the last legal instant left
    /// followers zero rounds to extend the path, their extensions bounced,
    /// the half-activated premium web then forfeited a *compliant* sender's
    /// escrow premium to the deviator. Giving the length-`ℓ` path the
    /// deadline `escrow_premium_deadline + ℓ·Δ` restores the paper's
    /// schedule: every hop — including a last-instant one — leaves the next
    /// hop a full Δ, and the longest simple path (`ℓ = n`) still lands by
    /// the phase deadline `2nΔ`.
    pub fn redemption_path_deadline(&self, path_len: usize) -> Time {
        self.redemption_premium_deadline
            .min(self.escrow_premium_deadline.plus(path_len as u64 * self.delta_blocks))
    }
}

/// A memo of hashkey presentations that have already been fully verified,
/// shared by every [`ArcEscrow`] of one deal.
///
/// A party presents the same extended hashkey on each of its incoming arcs,
/// and each arc contract must verify it independently — chain-signature
/// verification is the hottest cryptographic work in a sweep. The memo key
/// `(deal, receiver, leader, chain tag)` is sound: the chain tag binds the
/// whole signature chain, its path and its secret under collision
/// resistance (see [`Hashkey::chain_tag`]), and the deal tag pins the
/// remaining verification inputs (key table, digraph, hashlocks), which are
/// shared constants of the deal that created the cache. On a memo hit the
/// contract still re-binds the carried secret to its hashlock and applies
/// its own deadline checks.
///
/// The verified set itself lives in the **per-world** memo store
/// ([`chainsim::SimCaches`]), not here: sweep engines give each worker
/// thread its own pooled world, so every worker warms a private, lock-free
/// table. Earlier revisions shared one `Arc<Mutex<BTreeSet<..>>>` across
/// all workers, and that lock sat on the hottest verification path — flat
/// 1→2-thread scaling was the measurable result. This handle now carries
/// only the deal tag that namespaces the per-world entries; it stays `Sync`
/// without any locking.
#[derive(Clone, Debug)]
pub struct HashkeyVerifyCache {
    /// Discriminates this deal's entries in the per-world verified set.
    /// Unique per cache instance (clones share it, fresh caches never
    /// collide), so two deals with colliding chain tags — e.g. the same
    /// leaders over different digraphs, where a path may be valid in one
    /// digraph only — can never satisfy each other's verifications.
    deal_tag: u64,
}

impl Default for HashkeyVerifyCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-world verified set: `(deal tag, receiver, leader, chain tag)`.
#[derive(Debug, Default)]
struct VerifiedHashkeys(BTreeSet<(u64, PartyId, PartyId, Digest)>);

impl HashkeyVerifyCache {
    /// Creates a cache handle with a fresh deal tag, to be shared (cloned)
    /// across one deal's arc escrows.
    pub fn new() -> Self {
        static NEXT_DEAL_TAG: AtomicU64 = AtomicU64::new(0);
        HashkeyVerifyCache { deal_tag: NEXT_DEAL_TAG.fetch_add(1, Ordering::Relaxed) }
    }

    fn key(
        &self,
        receiver: PartyId,
        leader: PartyId,
        chain_tag: Digest,
    ) -> (u64, PartyId, PartyId, Digest) {
        (self.deal_tag, receiver, leader, chain_tag)
    }
}

/// Construction parameters for an [`ArcEscrow`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArcEscrowParams {
    /// The asset sender `u`.
    pub sender: PartyId,
    /// The asset receiver `v`.
    pub receiver: PartyId,
    /// Asset class of the principal transferred on this arc.
    pub asset: AssetId,
    /// Amount of the principal.
    pub amount: Amount,
    /// Asset class used for premiums (the chain's native currency).
    pub premium_asset: AssetId,
    /// The base premium `p`.
    pub base_premium: Amount,
    /// The escrow premium `E(u, v)` owed by the sender.
    pub escrow_premium: Amount,
    /// The hashlock vector: one `(leader, hashlock)` pair per leader.
    ///
    /// Shared (`Arc`) with every other arc of the same deal: a deal
    /// publishes one escrow per arc, and cloning the full hashlock vector,
    /// digraph and key table per arc dominated setup cost in sweeps.
    pub hashlocks: Arc<Vec<(PartyId, Hashlock)>>,
    /// The swap digraph (public protocol agreement), with party ids as
    /// vertices. Shared across the deal's arc escrows.
    pub digraph: Arc<Digraph>,
    /// The public keys of all participants. Shared across the deal's arc
    /// escrows.
    pub keys: Arc<PartyKeys>,
    /// Phase deadlines.
    pub deadlines: ArcDeadlines,
    /// Deal-wide memo of verified hashkey presentations (default: a fresh,
    /// unshared cache — sharing it across a deal's arcs is an optimisation,
    /// never a semantic requirement).
    pub verify_cache: HashkeyVerifyCache,
    /// Lazily built Equation-(1) evaluator, shared across the deal's arcs
    /// so its compact adjacency tables are derived from the digraph once
    /// rather than on every premium deposit.
    pub premium_evaluator: Arc<OnceLock<premiums::RedemptionPremiumEvaluator>>,
}

/// Messages accepted by an [`ArcEscrow`].
#[derive(Clone, Debug)]
pub enum ArcEscrowMsg {
    /// The sender deposits the escrow premium `E(u, v)` (phase 1).
    DepositEscrowPremium,
    /// The receiver deposits the redemption premium for `leader`'s hashkey
    /// along `path` (phase 2). The contract computes and charges the
    /// Equation-(1) amount for that path.
    DepositRedemptionPremium {
        /// The leader whose hashkey this premium protects.
        leader: PartyId,
        /// The path from the receiver to that leader.
        path: Vec<PartyId>,
    },
    /// The sender escrows the principal (phase 3). The escrow premium, if
    /// held, is refunded immediately.
    EscrowAsset,
    /// Anyone presents a hashkey (phase 4). The corresponding redemption
    /// premium is refunded, and when every leader's hashkey has been
    /// presented the principal is redeemed to the receiver.
    PresentHashkey {
        /// The hashkey to present.
        hashkey: Hashkey,
    },
    /// Anyone applies whatever timeout rules are currently due.
    Settle,
}

/// A per-leader redemption premium slot.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RedemptionSlot {
    state: PremiumSlotState,
    amount: Amount,
    path: Vec<PartyId>,
}

/// The escrow contract for one arc `(u, v)` of a multi-party swap.
///
/// The contract holds up to three kinds of value:
///
/// * the **principal** (the asset `u` transfers to `v`),
/// * the sender's **escrow premium** `E(u, v)`, awarded to `v` if the
///   principal is not escrowed in time *and* the premium has been activated
///   (all redemption premiums were deposited), refunded to `u` otherwise,
/// * one **redemption premium** per leader, deposited by `v`, refunded when
///   `v` presents that leader's hashkey in time and awarded to `u` otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArcEscrow {
    params: ArcEscrowParams,
    escrow_premium: PremiumSlotState,
    redemption: BTreeMap<PartyId, RedemptionSlot>,
    principal: PrincipalState,
    presented: BTreeMap<PartyId, Time>,
    presented_hashkeys: BTreeMap<PartyId, Hashkey>,
    revealed_secrets: BTreeMap<PartyId, Secret>,
    escrowed_at: Option<Time>,
    settled_at: Option<Time>,
}

impl ArcEscrow {
    /// Creates a new, unfunded arc escrow.
    pub fn new(params: ArcEscrowParams) -> Self {
        ArcEscrow {
            params,
            escrow_premium: PremiumSlotState::NotDeposited,
            redemption: BTreeMap::new(),
            principal: PrincipalState::NotEscrowed,
            presented: BTreeMap::new(),
            presented_hashkeys: BTreeMap::new(),
            revealed_secrets: BTreeMap::new(),
            escrowed_at: None,
            settled_at: None,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &ArcEscrowParams {
        &self.params
    }

    /// The escrow premium slot's state.
    pub fn escrow_premium_state(&self) -> PremiumSlotState {
        self.escrow_premium
    }

    /// The redemption premium slot for `leader`, if deposited.
    pub fn redemption_premium_state(&self, leader: PartyId) -> PremiumSlotState {
        self.redemption.get(&leader).map(|s| s.state).unwrap_or(PremiumSlotState::NotDeposited)
    }

    /// The amount held (or once held) in `leader`'s redemption premium slot.
    pub fn redemption_premium_amount(&self, leader: PartyId) -> Amount {
        self.redemption.get(&leader).map(|s| s.amount).unwrap_or(Amount::ZERO)
    }

    /// The path associated with `leader`'s redemption premium, if deposited.
    ///
    /// Counterparties read this to learn which path a premium propagated
    /// along, so they can extend it on their own incoming arcs (the phase-2
    /// distribution rule of §7.1).
    pub fn redemption_premium_path(&self, leader: PartyId) -> Option<&[PartyId]> {
        self.redemption.get(&leader).map(|s| s.path.as_slice())
    }

    /// The principal's state.
    pub fn principal_state(&self) -> PrincipalState {
        self.principal
    }

    /// Returns `true` if `leader`'s hashkey has been presented on this arc.
    pub fn hashkey_presented(&self, leader: PartyId) -> bool {
        self.presented.contains_key(&leader)
    }

    /// Returns `true` once every leader's hashkey has been presented.
    pub fn all_hashkeys_presented(&self) -> bool {
        self.params.hashlocks.iter().all(|(leader, _)| self.presented.contains_key(leader))
    }

    /// The secret revealed for `leader`, if its hashkey has been presented.
    ///
    /// This is how secrets propagate: a party reads them from the public
    /// state of contracts on its outgoing arcs.
    pub fn revealed_secret(&self, leader: PartyId) -> Option<&Secret> {
        self.revealed_secrets.get(&leader)
    }

    /// The full hashkey presented for `leader`, if any.
    ///
    /// Parties read presented hashkeys from contracts on their outgoing
    /// arcs, extend the path with their own signature, and present the
    /// extension on their incoming arcs.
    pub fn presented_hashkey(&self, leader: PartyId) -> Option<&Hashkey> {
        self.presented_hashkeys.get(&leader)
    }

    /// The height at which the principal was escrowed.
    pub fn escrowed_at(&self) -> Option<Time> {
        self.escrowed_at
    }

    /// The height at which the principal was redeemed or refunded.
    pub fn settled_at(&self) -> Option<Time> {
        self.settled_at
    }

    /// Returns `true` if the escrow premium has been *activated*: every
    /// leader's redemption premium has been deposited on this arc.
    pub fn escrow_premium_activated(&self) -> bool {
        self.params.hashlocks.iter().all(|(leader, _)| self.redemption.contains_key(leader))
    }

    fn hashlock_for(&self, leader: PartyId) -> Option<Hashlock> {
        self.params.hashlocks.iter().find(|(l, _)| *l == leader).map(|(_, h)| *h)
    }

    fn deposit_escrow_premium(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.sender {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.escrow_premium != PremiumSlotState::NotDeposited {
            return Err(ContractError::invalid_state("escrow premium already deposited"));
        }
        // The escrow premium compensates the receiver if the asset never
        // shows up; once the principal is escrowed it can serve no
        // purpose — and no disposition rule would ever release it (the
        // escrow-time refund already ran, and settle's disposition only
        // covers the never-escrowed case), so accepting it here would
        // strand the deposit forever. Found by the raw-call fuzz harness.
        // The canary-bugs feature compiles the guard out (and mirrors the
        // resulting stranding edge in `state_spec` below) so `staticcheck`
        // can prove it rediscovers the bug.
        #[cfg(not(feature = "canary-bugs"))]
        if self.principal != PrincipalState::NotEscrowed {
            return Err(ContractError::invalid_state("asset already escrowed"));
        }
        env.ensure_before(self.params.deadlines.escrow_premium_deadline)?;
        env.debit_caller(self.params.premium_asset, self.params.escrow_premium)?;
        self.escrow_premium = PremiumSlotState::Held;
        Ok(())
    }

    fn deposit_redemption_premium(
        &mut self,
        env: &mut CallEnv<'_>,
        leader: PartyId,
        path: &[PartyId],
    ) -> Result<(), ContractError> {
        if env.caller() != self.params.receiver {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.hashlock_for(leader).is_none() {
            return Err(ContractError::invalid_state(format!("{leader} is not a leader")));
        }
        if self.redemption.contains_key(&leader) {
            return Err(ContractError::invalid_state("redemption premium already deposited"));
        }
        // The premium insures the receiver against this leader's hashkey
        // never arriving; once it has been presented the deposit can
        // serve no purpose, and no disposition rule would ever release
        // it (the presentation-time refund already ran, and settle only
        // disposes premiums of never-presented leaders). Found by the
        // raw-call fuzz harness. The canary-bugs feature compiles the
        // guard out (and mirrors the resulting stranding edge in
        // `state_spec` below) so `staticcheck` can prove it rediscovers
        // the bug.
        #[cfg(not(feature = "canary-bugs"))]
        if self.presented.contains_key(&leader) {
            return Err(ContractError::invalid_state("hashkey already presented"));
        }
        env.ensure_before(self.params.deadlines.redemption_path_deadline(path.len()))?;
        // Validate the path: starts at the receiver, ends at the leader, and
        // is a simple path of the swap digraph.
        if path.first() != Some(&self.params.receiver) || path.last() != Some(&leader) {
            return Err(ContractError::hashkey_rejected(
                "redemption premium path must run from the receiver to the leader",
            ));
        }
        let vertices: Vec<u32> = path.iter().map(|p| p.0).collect();
        let valid = self.params.digraph.is_simple_path(self.params.receiver.0, leader.0, &vertices);
        if !valid {
            return Err(ContractError::hashkey_rejected(
                "redemption premium path is not a simple path of the swap digraph",
            ));
        }
        let units = self
            .params
            .premium_evaluator
            .get_or_init(|| premiums::RedemptionPremiumEvaluator::new(&self.params.digraph))
            .premium(&self.params.digraph, 1, &vertices, self.params.sender.0);
        let amount = self.params.base_premium.scaled(units);
        env.debit_caller(self.params.premium_asset, amount)?;
        self.redemption.insert(
            leader,
            RedemptionSlot { state: PremiumSlotState::Held, amount, path: path.to_vec() },
        );
        Ok(())
    }

    fn escrow_asset(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.sender {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.principal != PrincipalState::NotEscrowed {
            return Err(ContractError::invalid_state("asset already escrowed"));
        }
        env.ensure_before(self.params.deadlines.asset_escrow_deadline)?;
        env.debit_caller(self.params.asset, self.params.amount)?;
        self.principal = PrincipalState::Held;
        self.escrowed_at = Some(env.now());
        // Lemma 1: the sender's escrow premium is refunded as soon as the
        // asset is escrowed on the arc.
        if self.escrow_premium == PremiumSlotState::Held {
            env.pay_out(self.params.sender, self.params.premium_asset, self.params.escrow_premium)?;
            self.escrow_premium = PremiumSlotState::Refunded;
            env.emit_note("escrow premium refunded: asset escrowed in time");
        }
        Ok(())
    }

    fn present_hashkey(
        &mut self,
        env: &mut CallEnv<'_>,
        hashkey: &Hashkey,
    ) -> Result<(), ContractError> {
        let leader = hashkey.leader();
        let hashlock = self
            .hashlock_for(leader)
            .ok_or_else(|| ContractError::invalid_state(format!("{leader} is not a leader")))?;
        if self.presented.contains_key(&leader) {
            return Err(ContractError::invalid_state("hashkey already presented"));
        }
        let deadline = self.params.deadlines.hashkey_deadline(hashkey.path_len());
        env.ensure_before(deadline)?;
        let memo_key =
            self.params.verify_cache.key(self.params.receiver, leader, hashkey.chain_tag());
        let already_verified =
            env.caches().get_or_default::<VerifiedHashkeys>().0.contains(&memo_key);
        if already_verified {
            // The same chain was fully verified on a sibling arc with the
            // same receiver (possibly in an earlier run of this world). The
            // chain tag binds path, leader and chain; only the carried
            // secret must be re-bound to the hashlock.
            if !hashlock.matches(hashkey.secret()) {
                return Err(ContractError::HashlockMismatch);
            }
        } else {
            hashkey.verify(
                env.directory(),
                &self.params.keys,
                &self.params.digraph,
                self.params.receiver,
                &hashlock,
            )?;
            env.caches().get_or_default::<VerifiedHashkeys>().0.insert(memo_key);
        }
        self.presented.insert(leader, env.now());
        self.presented_hashkeys.insert(leader, hashkey.clone());
        self.revealed_secrets.insert(leader, hashkey.secret().clone());
        env.emit_note(NoteText::Party {
            prefix: "hashkey for ",
            party: leader,
            suffix: " presented",
        });
        // Lemma 1: the receiver's redemption premium for this hashkey is
        // refunded as soon as the hashkey is presented on the arc.
        if let Some(slot) = self.redemption.get_mut(&leader) {
            if slot.state == PremiumSlotState::Held {
                env.pay_out(self.params.receiver, self.params.premium_asset, slot.amount)?;
                slot.state = PremiumSlotState::Refunded;
            }
        }
        // Redeem the principal once every leader's hashkey has arrived.
        if self.principal == PrincipalState::Held && self.all_hashkeys_presented() {
            env.pay_out(self.params.receiver, self.params.asset, self.params.amount)?;
            self.principal = PrincipalState::Redeemed;
            self.settled_at = Some(env.now());
            env.emit_note("principal redeemed: all hashkeys presented");
        }
        Ok(())
    }

    fn settle(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        let mut acted = false;
        let now = env.now();

        // Escrow premium disposition once the asset-escrow deadline passed.
        if self.escrow_premium == PremiumSlotState::Held
            && now.has_reached(self.params.deadlines.asset_escrow_deadline)
            && self.principal == PrincipalState::NotEscrowed
        {
            if self.escrow_premium_activated() {
                env.pay_out(
                    self.params.receiver,
                    self.params.premium_asset,
                    self.params.escrow_premium,
                )?;
                self.escrow_premium = PremiumSlotState::PaidToCounterparty;
                env.emit_note("escrow premium paid to receiver: asset never escrowed");
            } else {
                env.pay_out(
                    self.params.sender,
                    self.params.premium_asset,
                    self.params.escrow_premium,
                )?;
                self.escrow_premium = PremiumSlotState::Refunded;
                env.emit_note("escrow premium refunded: premium was never activated");
            }
            acted = true;
        }

        if now.has_reached(self.params.deadlines.final_deadline) {
            // Redemption premiums for hashkeys that never arrived go to the sender.
            for (leader, slot) in self.redemption.iter_mut() {
                if slot.state == PremiumSlotState::Held && !self.presented.contains_key(leader) {
                    env.pay_out(self.params.sender, self.params.premium_asset, slot.amount)?;
                    slot.state = PremiumSlotState::PaidToCounterparty;
                    env.emit_note(NoteText::Party {
                        prefix: "redemption premium for ",
                        party: *leader,
                        suffix: " paid to sender: hashkey never presented",
                    });
                    acted = true;
                }
            }
            // The principal returns to the sender if it was never redeemed.
            if self.principal == PrincipalState::Held {
                env.pay_out(self.params.sender, self.params.asset, self.params.amount)?;
                self.principal = PrincipalState::Refunded;
                self.settled_at = Some(now);
                env.emit_note("principal refunded to sender after timeout");
                acted = true;
            }
        }

        if acted {
            Ok(())
        } else {
            Err(ContractError::invalid_state("nothing to settle yet"))
        }
    }
}

impl Contract for ArcEscrow {
    fn type_name(&self) -> &'static str {
        "ArcEscrow"
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }

    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg = msg.downcast_ref::<ArcEscrowMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            ArcEscrowMsg::DepositEscrowPremium => self.deposit_escrow_premium(env),
            ArcEscrowMsg::DepositRedemptionPremium { leader, path } => {
                self.deposit_redemption_premium(env, *leader, path)
            }
            ArcEscrowMsg::EscrowAsset => self.escrow_asset(env),
            ArcEscrowMsg::PresentHashkey { hashkey } => self.present_hashkey(env, hashkey),
            ArcEscrowMsg::Settle => self.settle(env),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    // Custody spec. Two machine kinds: the `escrow` machine tracks the
    // principal and the sender's escrow premium (whose lifecycles are
    // coupled: escrowing the asset refunds a held premium, Lemma 1), and
    // one `hashkey[leader]` machine per leader tracks that leader's
    // redemption-premium slot (independent slots, so independent
    // machines). Windows mirror the guards above; the per-hop ladders
    // (`hashkey_deadline(ℓ)`, `redemption_path_deadline(ℓ)`) are
    // over-approximated by their loosest instance — path lengths are
    // bounded by the digraph's vertex count — which is what a sound
    // reachability analysis needs, while the ladder structure itself is
    // checked by the schedule pass over [`ArcDeadlines`].
    fn state_spec(&self) -> Option<StateSpec> {
        let d = &self.params.deadlines;
        let last_hashkey = d.hashkey_deadline(self.params.digraph.vertex_count());
        let escrow = StateMachine::new("escrow", "Init")
            .fund("escrow_premium")
            .fund("principal")
            .transition(
                TransitionSpec::new(
                    "DepositEscrowPremium",
                    "Init",
                    "EpHeld",
                    TimeWindow::before(d.escrow_premium_deadline),
                )
                .deposits("escrow_premium"),
            )
            .transition(
                TransitionSpec::new(
                    "EscrowAsset",
                    "Init",
                    "AssetHeld",
                    TimeWindow::before(d.asset_escrow_deadline),
                )
                .deposits("principal"),
            )
            .transition(
                TransitionSpec::new(
                    "EscrowAssetRefundsEp",
                    "EpHeld",
                    "AssetHeld",
                    TimeWindow::before(d.asset_escrow_deadline),
                )
                .deposits("principal")
                .releases("escrow_premium", Disposition::Refund),
            )
            .transition(
                TransitionSpec::new(
                    "SettleEpForfeit",
                    "EpHeld",
                    "EpSettled",
                    TimeWindow::from(d.asset_escrow_deadline),
                )
                .releases("escrow_premium", Disposition::Forfeit),
            )
            .transition(
                TransitionSpec::new(
                    "SettleEpRefund",
                    "EpHeld",
                    "EpSettled",
                    TimeWindow::from(d.asset_escrow_deadline),
                )
                .releases("escrow_premium", Disposition::Refund),
            )
            .transition(
                TransitionSpec::new(
                    "RedeemAllHashkeys",
                    "AssetHeld",
                    "Redeemed",
                    TimeWindow::before(last_hashkey),
                )
                .releases("principal", Disposition::Redeem),
            )
            .transition(
                TransitionSpec::new(
                    "SettlePrincipalRefund",
                    "AssetHeld",
                    "Refunded",
                    TimeWindow::from(d.final_deadline),
                )
                .releases("principal", Disposition::Refund),
            );
        // Mirrors the relaxed runtime guard in `deposit_escrow_premium`:
        // with the already-escrowed check compiled out, the premium is also
        // accepted after the asset is escrowed, where no disposition rule
        // can ever release it (the escrow-time refund already ran, and
        // settle's branch requires a never-escrowed principal).
        #[cfg(feature = "canary-bugs")]
        let escrow = escrow
            .transition(
                TransitionSpec::new(
                    "DepositEscrowPremiumLate",
                    "AssetHeld",
                    "AssetHeldEpHeld",
                    TimeWindow::before(d.escrow_premium_deadline),
                )
                .deposits("escrow_premium"),
            )
            .transition(
                TransitionSpec::new(
                    "RedeemAllHashkeys",
                    "AssetHeldEpHeld",
                    "RedeemedEpStuck",
                    TimeWindow::before(last_hashkey),
                )
                .releases("principal", Disposition::Redeem),
            )
            .transition(
                TransitionSpec::new(
                    "SettlePrincipalRefund",
                    "AssetHeldEpHeld",
                    "RefundedEpStuck",
                    TimeWindow::from(d.final_deadline),
                )
                .releases("principal", Disposition::Refund),
            );
        let mut spec = StateSpec::new(self.type_name()).machine(escrow);
        for (leader, _) in self.params.hashlocks.iter() {
            let machine = StateMachine::new(format!("hashkey[{leader}]"), "Init")
                .fund("redemption_premium")
                .transition(
                    TransitionSpec::new(
                        "DepositRedemptionPremium",
                        "Init",
                        "RpHeld",
                        TimeWindow::before(d.redemption_premium_deadline),
                    )
                    .deposits("redemption_premium"),
                )
                .transition(TransitionSpec::new(
                    "PresentHashkey",
                    "Init",
                    "Presented",
                    TimeWindow::before(last_hashkey),
                ))
                .transition(
                    TransitionSpec::new(
                        "PresentHashkeyRefundsRp",
                        "RpHeld",
                        "Presented",
                        TimeWindow::before(last_hashkey),
                    )
                    .releases("redemption_premium", Disposition::Refund),
                )
                .transition(
                    TransitionSpec::new(
                        "SettleRpForfeit",
                        "RpHeld",
                        "RpForfeited",
                        TimeWindow::from(d.final_deadline),
                    )
                    .releases("redemption_premium", Disposition::Forfeit),
                );
            // Mirrors the relaxed runtime guard in
            // `deposit_redemption_premium`: with the already-presented
            // check compiled out, the premium is also accepted after the
            // hashkey arrived, where no disposition rule can ever release
            // it (the presentation-time refund already ran, and settle
            // only disposes premiums of never-presented leaders).
            #[cfg(feature = "canary-bugs")]
            let machine = machine.transition(
                TransitionSpec::new(
                    "DepositRedemptionPremiumLate",
                    "Presented",
                    "PresentedRpHeld",
                    TimeWindow::before(d.redemption_premium_deadline),
                )
                .deposits("redemption_premium"),
            );
            spec = spec.machine(machine);
        }
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsim::{AccountRef, ContractAddr, World};
    use cryptosim::KeyPair;

    // Figure 3a parties.
    const A: PartyId = PartyId(0);
    const B: PartyId = PartyId(1);
    const C: PartyId = PartyId(2);

    struct Fixture {
        world: World,
        addr: ContractAddr,
        token: AssetId,
        native: AssetId,
        secret: Secret,
        pairs: Vec<KeyPair>,
    }

    /// Arc (B, A) of the Figure 3a swap on its own chain, with leader A.
    /// Deadlines: phase boundaries at 2, 4, 6; hashkeys from height 6 with
    /// Δ = 1; everything settles at 12.
    fn setup() -> Fixture {
        let mut world = World::new(1);
        let chain = world.add_chain("banana");
        let native = world.chain(chain).native_asset();
        let token = world.register_asset("banana-token");
        world.chain_mut(chain).mint(B, token, Amount::new(50));
        world.chain_mut(chain).mint(B, native, Amount::new(20));
        world.chain_mut(chain).mint(A, native, Amount::new(20));

        let mut keys = PartyKeys::new();
        let mut pairs = Vec::new();
        for i in 0..3u32 {
            let pair = KeyPair::from_seed(u64::from(i));
            world.directory_mut().register(&pair);
            keys.insert(PartyId(i), pair.public());
            pairs.push(pair);
        }

        let secret = Secret::from_seed(11);
        let escrow = ArcEscrow::new(ArcEscrowParams {
            sender: B,
            receiver: A,
            asset: token,
            amount: Amount::new(50),
            premium_asset: native,
            base_premium: Amount::new(1),
            escrow_premium: Amount::new(5),
            hashlocks: Arc::new(vec![(A, secret.hashlock())]),
            digraph: Arc::new(Digraph::figure3()),
            keys: Arc::new(keys),
            deadlines: ArcDeadlines {
                escrow_premium_deadline: Time(2),
                redemption_premium_deadline: Time(4),
                asset_escrow_deadline: Time(6),
                hashkey_timeout_base: Time(6),
                delta_blocks: 1,
                final_deadline: Time(12),
            },
            verify_cache: HashkeyVerifyCache::new(),
            premium_evaluator: Arc::default(),
        });
        let addr = world.publish_labeled(chain, B, "arc-ba", Box::new(escrow));
        Fixture { world, addr, token, native, secret, pairs }
    }

    fn contract(f: &Fixture) -> &ArcEscrow {
        f.world.chain(f.addr.chain).contract_as::<ArcEscrow>(f.addr.contract).unwrap()
    }

    fn balance(f: &Fixture, party: PartyId, asset: AssetId) -> Amount {
        f.world.chain(f.addr.chain).balance(AccountRef::Party(party), asset)
    }

    fn leader_hashkey(f: &Fixture) -> Hashkey {
        // Arc (B, A): the receiver is the leader A herself, path (A).
        Hashkey::from_leader(A, f.secret.clone(), &f.pairs[0])
    }

    #[test]
    fn full_compliant_lifecycle() {
        let mut f = setup();
        // Phase 1: sender B deposits the escrow premium E(B,A) = 5p.
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E(B,A)").unwrap();
        assert_eq!(contract(&f).escrow_premium_state(), PremiumSlotState::Held);
        f.world.advance_blocks(2);
        // Phase 2: receiver A deposits the redemption premium R((A), B) = 2p.
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R(A)",
            )
            .unwrap();
        assert_eq!(contract(&f).redemption_premium_amount(A), Amount::new(2));
        assert!(contract(&f).escrow_premium_activated());
        f.world.advance_blocks(2);
        // Phase 3: sender escrows the asset; escrow premium refunded at once.
        f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
        assert_eq!(contract(&f).escrow_premium_state(), PremiumSlotState::Refunded);
        assert_eq!(balance(&f, B, f.native), Amount::new(20));
        f.world.advance_blocks(2);
        // Phase 4: the leader's hashkey is presented; premium refunded and
        // the principal redeemed.
        let hashkey = leader_hashkey(&f);
        f.world.call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "k_A").unwrap();
        let c = contract(&f);
        assert_eq!(c.principal_state(), PrincipalState::Redeemed);
        assert_eq!(c.redemption_premium_state(A), PremiumSlotState::Refunded);
        assert!(c.all_hashkeys_presented());
        assert!(c.revealed_secret(A).is_some());
        assert_eq!(balance(&f, A, f.token), Amount::new(50));
        assert_eq!(balance(&f, A, f.native), Amount::new(20));
    }

    #[test]
    fn redemption_premium_amount_follows_equation_1() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .unwrap();
        // R_A((A), B) = 2p with p = 1.
        assert_eq!(contract(&f).redemption_premium_amount(A), Amount::new(2));
        assert_eq!(balance(&f, A, f.native), Amount::new(18));
    }

    #[test]
    fn invalid_redemption_paths_are_rejected() {
        let mut f = setup();
        // Path that does not start at the receiver.
        assert!(f
            .world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![B, A] },
                "R",
            )
            .is_err());
        // Path that is not a digraph path.
        assert!(f
            .world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A, C, A] },
                "R",
            )
            .is_err());
        // Unknown leader.
        assert!(f
            .world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: C, path: vec![A] },
                "R",
            )
            .is_err());
        // Wrong depositor.
        assert!(f
            .world
            .call(
                B,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .is_err());
    }

    #[test]
    fn activated_escrow_premium_goes_to_receiver_when_sender_defects() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .unwrap();
        // B never escrows the asset. After the asset-escrow deadline the
        // activated escrow premium is awarded to A.
        f.world.advance_blocks(6);
        f.world.call(A, f.addr, &ArcEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).escrow_premium_state(), PremiumSlotState::PaidToCounterparty);
        assert_eq!(balance(&f, A, f.native), Amount::new(18 + 5));
        // A's own redemption premium is still held until the final deadline,
        // then returns to the sender (A never needed to present a hashkey
        // because nothing was escrowed, but the arc-local rule stands).
        f.world.advance_blocks(6);
        f.world.call(B, f.addr, &ArcEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).redemption_premium_state(A), PremiumSlotState::PaidToCounterparty);
    }

    #[test]
    fn unactivated_escrow_premium_is_refunded() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        // A never deposits the redemption premium, so the escrow premium is
        // never activated; B gets it back after the asset-escrow deadline.
        f.world.advance_blocks(6);
        f.world.call(B, f.addr, &ArcEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).escrow_premium_state(), PremiumSlotState::Refunded);
        assert_eq!(balance(&f, B, f.native), Amount::new(20));
    }

    #[test]
    fn unpresented_hashkey_forfeits_redemption_premium_and_refunds_principal() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .unwrap();
        f.world.advance_blocks(4);
        f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
        // A never presents the hashkey. After the final deadline: principal
        // back to B, A's redemption premium to B.
        f.world.advance_blocks(8);
        f.world.call(B, f.addr, &ArcEscrowMsg::Settle, "settle").unwrap();
        let c = contract(&f);
        assert_eq!(c.principal_state(), PrincipalState::Refunded);
        assert_eq!(c.redemption_premium_state(A), PremiumSlotState::PaidToCounterparty);
        assert_eq!(balance(&f, B, f.token), Amount::new(50));
        assert_eq!(balance(&f, B, f.native), Amount::new(22));
        assert_eq!(balance(&f, A, f.native), Amount::new(18));
    }

    #[test]
    fn hashkey_timeout_depends_on_path_length() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .unwrap();
        f.world.advance_blocks(4);
        f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
        // A path-length-1 hashkey times out at 6 + 1·Δ = 7; at height 7 it is late.
        f.world.advance_blocks(3);
        let hashkey = leader_hashkey(&f);
        let err = f
            .world
            .call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "late k_A")
            .unwrap_err();
        assert!(err.to_string().contains("deadline"));
        assert_eq!(contract(&f).principal_state(), PrincipalState::Held);
    }

    #[test]
    fn forged_or_mismatched_hashkeys_are_rejected() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        f.world.advance_blocks(4);
        f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
        // Wrong secret.
        let bogus = Hashkey::from_leader(A, Secret::from_seed(999), &f.pairs[0]);
        assert!(f
            .world
            .call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey: bogus }, "bad")
            .is_err());
        // Unknown leader.
        let wrong_leader = Hashkey::from_leader(C, f.secret.clone(), &f.pairs[2]);
        assert!(f
            .world
            .call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey: wrong_leader }, "bad")
            .is_err());
        // Path that does not start at the receiver A: B extends the leader's
        // hashkey, which is valid for arc (A,B) but not for this arc.
        let for_other_arc = leader_hashkey(&f).extend(B, &f.pairs[1]);
        assert!(f
            .world
            .call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey: for_other_arc }, "bad")
            .is_err());
        assert_eq!(contract(&f).principal_state(), PrincipalState::Held);
    }

    #[test]
    fn escrow_premium_and_asset_deadlines_are_enforced() {
        let mut f = setup();
        f.world.advance_blocks(2);
        assert!(f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").is_err());
        f.world.advance_blocks(4);
        assert!(f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").is_err());
        // Redemption premium also respects its deadline.
        assert!(f
            .world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .is_err());
    }

    #[test]
    fn settle_with_nothing_due_is_an_error() {
        let mut f = setup();
        assert!(f.world.call(A, f.addr, &ArcEscrowMsg::Settle, "settle").is_err());
    }

    #[test]
    fn duplicate_deposits_and_presentations_are_rejected() {
        let mut f = setup();
        f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").unwrap();
        assert!(f.world.call(B, f.addr, &ArcEscrowMsg::DepositEscrowPremium, "E").is_err());
        f.world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .unwrap();
        assert!(f
            .world
            .call(
                A,
                f.addr,
                &ArcEscrowMsg::DepositRedemptionPremium { leader: A, path: vec![A] },
                "R",
            )
            .is_err());
        f.world.advance_blocks(4);
        f.world.call(B, f.addr, &ArcEscrowMsg::EscrowAsset, "escrow").unwrap();
        f.world.advance_blocks(2);
        let hashkey = leader_hashkey(&f);
        f.world.call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "k_A").unwrap();
        let hashkey = leader_hashkey(&f);
        assert!(f.world.call(A, f.addr, &ArcEscrowMsg::PresentHashkey { hashkey }, "k_A").is_err());
    }

    #[test]
    fn deadline_helper_math() {
        let deadlines = ArcDeadlines {
            escrow_premium_deadline: Time(1),
            redemption_premium_deadline: Time(2),
            asset_escrow_deadline: Time(3),
            hashkey_timeout_base: Time(10),
            delta_blocks: 3,
            final_deadline: Time(30),
        };
        assert_eq!(deadlines.hashkey_deadline(1), Time(13));
        assert_eq!(deadlines.hashkey_deadline(3), Time(19));
    }
}
