//! Signature-authenticated hashkey paths (§7 of the paper).
//!
//! A *hashkey* for hashlock `h_i` on an arc `(u, v)` is a triple
//! `(s_i, q, σ)` where `s_i` is the secret with `H(s_i) = h_i`, `q` is a
//! simple path from the arc's receiver `v` to the leader `L_i` that
//! generated the secret, and `σ` is a chain of signatures authenticating
//! the path: the leader signs the secret, and each party that extends the
//! path countersigns the previous signature. A hashkey times out after a
//! duration proportional to its path length, which is what bounds how long
//! secrets remain usable as they propagate through the swap digraph.

use std::collections::BTreeMap;
use std::fmt;

use chainsim::{ContractError, PartyId};
use cryptosim::{sha256_concat, Hashlock, KeyDirectory, KeyPair, PublicKey, Secret, Signature};
use serde::{Deserialize, Serialize};
use swapgraph::Digraph;

/// The public keys of all protocol participants, keyed by party.
///
/// Contract code verifies hashkey signature chains against this map; it is
/// part of the publicly agreed protocol parameters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartyKeys {
    keys: BTreeMap<PartyId, PublicKey>,
}

impl PartyKeys {
    /// Creates an empty key map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `party`'s public key.
    pub fn insert(&mut self, party: PartyId, key: PublicKey) {
        self.keys.insert(party, key);
    }

    /// Looks up a party's public key.
    pub fn get(&self, party: PartyId) -> Option<PublicKey> {
        self.keys.get(&party).copied()
    }

    /// The number of registered parties.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl FromIterator<(PartyId, PublicKey)> for PartyKeys {
    fn from_iter<T: IntoIterator<Item = (PartyId, PublicKey)>>(iter: T) -> Self {
        PartyKeys { keys: iter.into_iter().collect() }
    }
}

/// One hop of a hashkey's signature chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Hop {
    party: PartyId,
    signature: Signature,
}

/// A signature-authenticated hashkey.
///
/// The path runs from the presenting arc's receiver to the leader; the
/// signature chain was built in the opposite order (leader first), each hop
/// signing the previous hop's signature tag.
///
/// # Examples
///
/// ```
/// use chainsim::PartyId;
/// use contracts::{Hashkey, PartyKeys};
/// use cryptosim::{KeyDirectory, KeyPair, Secret};
/// use swapgraph::Digraph;
///
/// let alice = (PartyId(0), KeyPair::from_seed(0));
/// let bob = (PartyId(1), KeyPair::from_seed(1));
/// let mut directory = KeyDirectory::new();
/// directory.register(&alice.1);
/// directory.register(&bob.1);
/// let keys: PartyKeys =
///     [(alice.0, alice.1.public()), (bob.0, bob.1.public())].into_iter().collect();
///
/// let secret = Secret::from_seed(7);
/// let hashlock = secret.hashlock();
/// // Alice (the leader) creates the hashkey, Bob extends it.
/// let k = Hashkey::from_leader(alice.0, secret, &alice.1);
/// let k = k.extend(bob.0, &bob.1);
///
/// let g = Digraph::cycle(2);
/// assert!(k.verify(&directory, &keys, &g, PartyId(1), &hashlock).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hashkey {
    leader: PartyId,
    secret: Secret,
    /// Signature chain in signing order: the leader first, then each party
    /// that extended the path.
    hops: Vec<Hop>,
}

impl Hashkey {
    /// Creates the leader's initial hashkey: path `(L_i)`, signed by the
    /// leader over the secret.
    pub fn from_leader(leader: PartyId, secret: Secret, leader_keys: &KeyPair) -> Self {
        let signature = leader_keys.sign(&Self::leader_message(leader, &secret));
        Hashkey { leader, secret, hops: vec![Hop { party: leader, signature }] }
    }

    /// Extends the hashkey's path by one hop: `party` countersigns the
    /// previous signature, producing the hashkey it may present on its own
    /// incoming arcs.
    #[must_use]
    pub fn extend(&self, party: PartyId, party_keys: &KeyPair) -> Self {
        let previous = &self.hops.last().expect("hashkey always has at least one hop").signature;
        let signature = party_keys.sign(&Self::hop_message(party, previous));
        let mut hops = self.hops.clone();
        hops.push(Hop { party, signature });
        Hashkey { leader: self.leader, secret: self.secret.clone(), hops }
    }

    /// The leader that generated the underlying secret.
    pub fn leader(&self) -> PartyId {
        self.leader
    }

    /// The revealed secret carried by the hashkey.
    pub fn secret(&self) -> &Secret {
        &self.secret
    }

    /// The path from the presenting receiver to the leader, in paper order
    /// (`u0 = receiver, …, u_k = leader`).
    pub fn path(&self) -> Vec<PartyId> {
        self.hops.iter().rev().map(|hop| hop.party).collect()
    }

    /// The path length `|q|` (number of vertices), which determines the
    /// hashkey's timeout.
    pub fn path_len(&self) -> usize {
        self.hops.len()
    }

    /// The tag of the final signature in the chain.
    ///
    /// Under collision resistance this single digest binds the entire
    /// hashkey: each hop signs the previous hop's tag, the leader signs the
    /// secret, and every signing message includes the signer's identity —
    /// so two hashkeys with equal chain tags are (computationally) the same
    /// chain over the same path and secret. Contracts use it to memoise
    /// repeated verifications of the same presentation.
    pub fn chain_tag(&self) -> cryptosim::Digest {
        self.hops.last().expect("hashkey always has at least one hop").signature.tag()
    }

    /// Verifies this hashkey for presentation on an arc whose receiver is
    /// `receiver`, against hashlock `hashlock` in digraph `digraph`.
    ///
    /// Checks performed:
    /// 1. the secret matches the hashlock;
    /// 2. the path starts at `receiver` and ends at the leader;
    /// 3. the path is a simple path of `digraph` following arc directions
    ///    (party ids are used as digraph vertices);
    /// 4. every signature in the chain verifies against the registered keys.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::HashlockMismatch`] or
    /// [`ContractError::HashkeyRejected`] describing the failed check.
    pub fn verify(
        &self,
        directory: &KeyDirectory,
        keys: &PartyKeys,
        digraph: &Digraph,
        receiver: PartyId,
        hashlock: &Hashlock,
    ) -> Result<(), ContractError> {
        if !hashlock.matches(&self.secret) {
            return Err(ContractError::HashlockMismatch);
        }
        let path = self.path();
        if path.is_empty() {
            return Err(ContractError::hashkey_rejected("empty path"));
        }
        if path[0] != receiver {
            return Err(ContractError::hashkey_rejected(format!(
                "path starts at {} but must start at the arc receiver {receiver}",
                path[0]
            )));
        }
        if *path.last().expect("non-empty") != self.leader {
            return Err(ContractError::hashkey_rejected("path does not end at the leader"));
        }
        // Simple path following arc directions.
        let mut seen = std::collections::BTreeSet::new();
        for party in &path {
            if !seen.insert(*party) {
                return Err(ContractError::hashkey_rejected("path revisits a vertex"));
            }
        }
        for pair in path.windows(2) {
            if !digraph.contains_arc(pair[0].0, pair[1].0) {
                return Err(ContractError::hashkey_rejected(format!(
                    "({}, {}) is not an arc of the swap digraph",
                    pair[0], pair[1]
                )));
            }
        }
        // Signature chain: leader over the secret, each later hop over the
        // previous signature.
        let leader_hop = &self.hops[0];
        if leader_hop.party != self.leader {
            return Err(ContractError::hashkey_rejected("first signature is not the leader's"));
        }
        let leader_key = keys
            .get(self.leader)
            .ok_or_else(|| ContractError::hashkey_rejected("leader key not registered"))?;
        if !directory.verify(
            &leader_key,
            &Self::leader_message(self.leader, &self.secret),
            &leader_hop.signature,
        ) {
            return Err(ContractError::hashkey_rejected("leader signature invalid"));
        }
        for i in 1..self.hops.len() {
            let hop = &self.hops[i];
            let previous = &self.hops[i - 1].signature;
            let key = keys.get(hop.party).ok_or_else(|| {
                ContractError::hashkey_rejected(format!("no key registered for {}", hop.party))
            })?;
            if !directory.verify(&key, &Self::hop_message(hop.party, previous), &hop.signature) {
                return Err(ContractError::hashkey_rejected(format!(
                    "signature by {} invalid",
                    hop.party
                )));
            }
        }
        Ok(())
    }

    fn leader_message(leader: PartyId, secret: &Secret) -> Vec<u8> {
        sha256_concat(&[b"hashkey/leader", &leader.0.to_be_bytes(), secret.as_bytes()])
            .as_bytes()
            .to_vec()
    }

    fn hop_message(party: PartyId, previous: &Signature) -> Vec<u8> {
        sha256_concat(&[b"hashkey/hop", &party.0.to_be_bytes(), previous.tag().as_bytes()])
            .as_bytes()
            .to_vec()
    }
}

impl fmt::Display for Hashkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path: Vec<String> = self.path().iter().map(|p| p.to_string()).collect();
        write!(f, "hashkey[leader={}, path=({})]", self.leader, path.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        directory: KeyDirectory,
        keys: PartyKeys,
        pairs: Vec<KeyPair>,
        digraph: Digraph,
    }

    /// Figure 3a digraph with parties 0 = A (leader), 1 = B, 2 = C.
    fn fixture() -> Fixture {
        let mut directory = KeyDirectory::new();
        let mut keys = PartyKeys::new();
        let mut pairs = Vec::new();
        for i in 0..3u32 {
            let pair = KeyPair::from_seed(u64::from(i));
            directory.register(&pair);
            keys.insert(PartyId(i), pair.public());
            pairs.push(pair);
        }
        Fixture { directory, keys, pairs, digraph: Digraph::figure3() }
    }

    #[test]
    fn leader_hashkey_verifies_on_incoming_arc() {
        let f = fixture();
        let secret = Secret::from_seed(1);
        let hashlock = secret.hashlock();
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]);
        // Arc (B, A): receiver is A itself; path (A).
        assert!(k.verify(&f.directory, &f.keys, &f.digraph, PartyId(0), &hashlock).is_ok());
        assert_eq!(k.path(), vec![PartyId(0)]);
        assert_eq!(k.path_len(), 1);
        assert_eq!(k.leader(), PartyId(0));
    }

    #[test]
    fn extended_hashkey_follows_figure_3b_paths() {
        let f = fixture();
        let secret = Secret::from_seed(2);
        let hashlock = secret.hashlock();
        let k_a = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]);
        // C extends for arc (B, C): path (C, A).
        let k_c = k_a.extend(PartyId(2), &f.pairs[2]);
        assert_eq!(k_c.path(), vec![PartyId(2), PartyId(0)]);
        assert!(k_c.verify(&f.directory, &f.keys, &f.digraph, PartyId(2), &hashlock).is_ok());
        // B extends C's hashkey for arc (A, B): path (B, C, A).
        let k_b = k_c.extend(PartyId(1), &f.pairs[1]);
        assert_eq!(k_b.path(), vec![PartyId(1), PartyId(2), PartyId(0)]);
        assert!(k_b.verify(&f.directory, &f.keys, &f.digraph, PartyId(1), &hashlock).is_ok());
        assert!(k_b.to_string().contains("leader=P0"));
    }

    #[test]
    fn wrong_receiver_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(3);
        let hashlock = secret.hashlock();
        let k =
            Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]).extend(PartyId(2), &f.pairs[2]);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(1), &hashlock).unwrap_err();
        assert!(matches!(err, ContractError::HashkeyRejected { .. }));
    }

    #[test]
    fn wrong_secret_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(4);
        let other = Secret::from_seed(5).hashlock();
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]);
        assert_eq!(
            k.verify(&f.directory, &f.keys, &f.digraph, PartyId(0), &other),
            Err(ContractError::HashlockMismatch)
        );
    }

    #[test]
    fn path_not_in_digraph_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(6);
        let hashlock = secret.hashlock();
        // C → B is not an arc, so extending from C's hashkey by... build a
        // path (B, A) then extend by C: path (C, B, A), but (C, B) ∉ G.
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0])
            .extend(PartyId(1), &f.pairs[1])
            .extend(PartyId(2), &f.pairs[2]);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(2), &hashlock).unwrap_err();
        assert!(err.to_string().contains("not an arc"));
    }

    #[test]
    fn forged_signature_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(7);
        let hashlock = secret.hashlock();
        // Bob tries to extend using a key pair that is not his registered key.
        let impostor = KeyPair::from_seed(99);
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]).extend(PartyId(1), &impostor);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(1), &hashlock).unwrap_err();
        assert!(err.to_string().contains("signature by P1 invalid"));
    }

    #[test]
    fn leader_signature_forgery_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(8);
        let hashlock = secret.hashlock();
        let impostor = KeyPair::from_seed(98);
        let k = Hashkey::from_leader(PartyId(0), secret, &impostor);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(0), &hashlock).unwrap_err();
        assert!(err.to_string().contains("leader signature invalid"));
    }

    #[test]
    fn revisiting_a_vertex_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(9);
        let hashlock = secret.hashlock();
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0])
            .extend(PartyId(1), &f.pairs[1])
            .extend(PartyId(0), &f.pairs[0]);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(0), &hashlock).unwrap_err();
        assert!(
            err.to_string().contains("path does not end at the leader")
                || err.to_string().contains("revisits")
        );
    }

    #[test]
    fn unknown_party_key_is_rejected() {
        let f = fixture();
        let secret = Secret::from_seed(10);
        let hashlock = secret.hashlock();
        let stranger = KeyPair::from_seed(50);
        // Party 7 is not in the key map (and not in the digraph either).
        let k = Hashkey::from_leader(PartyId(0), secret, &f.pairs[0]).extend(PartyId(7), &stranger);
        let err = k.verify(&f.directory, &f.keys, &f.digraph, PartyId(7), &hashlock).unwrap_err();
        assert!(matches!(err, ContractError::HashkeyRejected { .. }));
    }

    #[test]
    fn party_keys_collection_behaviour() {
        let f = fixture();
        assert_eq!(f.keys.len(), 3);
        assert!(!f.keys.is_empty());
        assert_eq!(f.keys.get(PartyId(1)), Some(f.pairs[1].public()));
        assert_eq!(f.keys.get(PartyId(9)), None);
        let empty = PartyKeys::new();
        assert!(empty.is_empty());
    }
}
