//! The hedged two-party escrow contract (§5.2 of the paper).

use std::any::Any;

use chainsim::{
    Amount, AssetId, CallEnv, Contract, ContractError, Disposition, PartyId, StateMachine,
    StateSpec, Time, TimeWindow, TransitionSpec,
};
use cryptosim::{Hashlock, Secret};
use serde::{Deserialize, Serialize};

/// Lifecycle of the premium slot of a [`HedgedEscrow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HedgedPremiumState {
    /// No premium has been deposited yet.
    NotDeposited,
    /// The redeemer's premium is held by the contract.
    Held,
    /// The premium was refunded to the redeemer.
    Refunded,
    /// The premium was paid to the escrower as lock-up compensation.
    PaidToEscrower,
}

/// Lifecycle of the principal slot of a [`HedgedEscrow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HedgedPrincipalState {
    /// The principal has not been escrowed.
    NotEscrowed,
    /// The principal is held by the contract.
    Held,
    /// The redeemer presented the secret and received the principal.
    Redeemed,
    /// The principal was refunded to the escrower after the timelock.
    Refunded,
}

/// Construction parameters for a [`HedgedEscrow`].
///
/// Using Figure 1's banana-chain contract as the example: the *escrower* is
/// Bob (he escrows his banana tokens), the *redeemer* is Alice (she deposits
/// the premium `p_a + p_b` and later redeems Bob's tokens by revealing the
/// secret).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgedEscrowParams {
    /// The party that escrows the principal.
    pub escrower: PartyId,
    /// The counterparty: deposits the premium and redeems with the secret.
    pub redeemer: PartyId,
    /// Asset class of the principal.
    pub principal_asset: AssetId,
    /// Amount of the principal.
    pub principal_amount: Amount,
    /// Asset class of the premium (the chain's native currency).
    pub premium_asset: AssetId,
    /// Amount of the premium the redeemer must deposit.
    pub premium_amount: Amount,
    /// The hashlock guarding redemption.
    pub hashlock: Hashlock,
    /// Deadline for the redeemer's premium deposit.
    pub premium_deadline: Time,
    /// Deadline for the escrower's principal escrow (`t_{b,e}` / `t_{a,e}`).
    pub escrow_deadline: Time,
    /// The principal's timelock (`t_A` / `t_B`): redemption must happen
    /// strictly before this height.
    pub redeem_deadline: Time,
}

/// Messages accepted by a [`HedgedEscrow`].
#[derive(Clone, Debug)]
pub enum HedgedEscrowMsg {
    /// The redeemer deposits the premium.
    DepositPremium,
    /// The escrower escrows the principal (allowed only after the premium is
    /// in place, which is the order the protocol prescribes).
    EscrowPrincipal,
    /// The redeemer redeems the principal by revealing the secret; the
    /// premium is refunded to the redeemer in the same step.
    Redeem {
        /// The hashlock preimage.
        secret: Secret,
    },
    /// Anyone applies whatever timeout rules are currently due: refund the
    /// premium if the principal was never escrowed, or refund the principal
    /// and award the premium to the escrower if redemption timed out.
    Settle,
}

/// The §5.2 hedged escrow: a principal slot plus a premium slot.
///
/// Rules enforced by the contract (all decidable from chain-local state):
///
/// * the premium must be deposited by the redeemer before
///   `premium_deadline`;
/// * the principal must be escrowed by the escrower before
///   `escrow_deadline`, and only once the premium is held;
/// * if the principal is **redeemed** before `redeem_deadline`, the premium
///   is refunded to the redeemer;
/// * if the principal was escrowed but **not** redeemed by
///   `redeem_deadline`, the principal returns to the escrower and the
///   premium is paid to the escrower as compensation;
/// * if the principal was **never** escrowed by `escrow_deadline`, the
///   premium is refunded to the redeemer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HedgedEscrow {
    params: HedgedEscrowParams,
    premium: HedgedPremiumState,
    principal: HedgedPrincipalState,
    escrowed_at: Option<Time>,
    principal_settled_at: Option<Time>,
    revealed_secret: Option<Secret>,
}

impl HedgedEscrow {
    /// Creates a new, unfunded hedged escrow.
    pub fn new(params: HedgedEscrowParams) -> Self {
        HedgedEscrow {
            params,
            premium: HedgedPremiumState::NotDeposited,
            principal: HedgedPrincipalState::NotEscrowed,
            escrowed_at: None,
            principal_settled_at: None,
            revealed_secret: None,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &HedgedEscrowParams {
        &self.params
    }

    /// The premium slot's state.
    pub fn premium_state(&self) -> HedgedPremiumState {
        self.premium
    }

    /// The principal slot's state.
    pub fn principal_state(&self) -> HedgedPrincipalState {
        self.principal
    }

    /// The secret revealed by a successful redemption, if any.
    pub fn revealed_secret(&self) -> Option<&Secret> {
        self.revealed_secret.as_ref()
    }

    /// The height at which the principal was escrowed, if it has been.
    pub fn escrowed_at(&self) -> Option<Time> {
        self.escrowed_at
    }

    /// The height at which the principal was redeemed or refunded.
    pub fn principal_settled_at(&self) -> Option<Time> {
        self.principal_settled_at
    }

    fn deposit_premium(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.redeemer {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.premium != HedgedPremiumState::NotDeposited {
            return Err(ContractError::invalid_state("premium already deposited"));
        }
        env.ensure_before(self.params.premium_deadline)?;
        env.debit_caller(self.params.premium_asset, self.params.premium_amount)?;
        self.premium = HedgedPremiumState::Held;
        Ok(())
    }

    fn escrow_principal(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        if env.caller() != self.params.escrower {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.principal != HedgedPrincipalState::NotEscrowed {
            return Err(ContractError::invalid_state("principal already escrowed"));
        }
        if self.premium != HedgedPremiumState::Held {
            return Err(ContractError::invalid_state(
                "premium must be deposited before the principal is escrowed",
            ));
        }
        env.ensure_before(self.params.escrow_deadline)?;
        env.debit_caller(self.params.principal_asset, self.params.principal_amount)?;
        self.principal = HedgedPrincipalState::Held;
        self.escrowed_at = Some(env.now());
        Ok(())
    }

    fn redeem(&mut self, env: &mut CallEnv<'_>, secret: &Secret) -> Result<(), ContractError> {
        if env.caller() != self.params.redeemer {
            return Err(ContractError::Unauthorised { caller: env.caller() });
        }
        if self.principal != HedgedPrincipalState::Held {
            return Err(ContractError::invalid_state("no escrowed principal to redeem"));
        }
        env.ensure_before(self.params.redeem_deadline)?;
        if !self.params.hashlock.matches(secret) {
            return Err(ContractError::HashlockMismatch);
        }
        env.pay_out(
            self.params.redeemer,
            self.params.principal_asset,
            self.params.principal_amount,
        )?;
        self.principal = HedgedPrincipalState::Redeemed;
        self.principal_settled_at = Some(env.now());
        self.revealed_secret = Some(secret.clone());
        if self.premium == HedgedPremiumState::Held {
            env.pay_out(
                self.params.redeemer,
                self.params.premium_asset,
                self.params.premium_amount,
            )?;
            self.premium = HedgedPremiumState::Refunded;
        }
        env.emit_note("principal redeemed; premium refunded to redeemer");
        Ok(())
    }

    fn settle(&mut self, env: &mut CallEnv<'_>) -> Result<(), ContractError> {
        let mut acted = false;

        // Premium refund: the principal was never escrowed in time.
        if self.premium == HedgedPremiumState::Held
            && self.principal == HedgedPrincipalState::NotEscrowed
            && env.now().has_reached(self.params.escrow_deadline)
        {
            env.pay_out(
                self.params.redeemer,
                self.params.premium_asset,
                self.params.premium_amount,
            )?;
            self.premium = HedgedPremiumState::Refunded;
            env.emit_note("premium refunded: principal was never escrowed");
            acted = true;
        }

        // Redemption timeout: principal refunded, premium compensates escrower.
        if self.principal == HedgedPrincipalState::Held
            && env.now().has_reached(self.params.redeem_deadline)
        {
            env.pay_out(
                self.params.escrower,
                self.params.principal_asset,
                self.params.principal_amount,
            )?;
            self.principal = HedgedPrincipalState::Refunded;
            self.principal_settled_at = Some(env.now());
            if self.premium == HedgedPremiumState::Held {
                env.pay_out(
                    self.params.escrower,
                    self.params.premium_asset,
                    self.params.premium_amount,
                )?;
                self.premium = HedgedPremiumState::PaidToEscrower;
            }
            env.emit_note("redemption timed out: principal refunded, premium paid to escrower");
            acted = true;
        }

        if acted {
            Ok(())
        } else {
            Err(ContractError::invalid_state("nothing to settle yet"))
        }
    }
}

impl Contract for HedgedEscrow {
    fn type_name(&self) -> &'static str {
        "HedgedEscrow"
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }

    fn handle(&mut self, env: &mut CallEnv<'_>, msg: &dyn Any) -> Result<(), ContractError> {
        let msg = msg.downcast_ref::<HedgedEscrowMsg>().ok_or(ContractError::UnsupportedMessage)?;
        match msg {
            HedgedEscrowMsg::DepositPremium => self.deposit_premium(env),
            HedgedEscrowMsg::EscrowPrincipal => self.escrow_principal(env),
            HedgedEscrowMsg::Redeem { secret } => self.redeem(env, secret),
            HedgedEscrowMsg::Settle => self.settle(env),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    // Custody spec. One composite machine: the premium is deposited first,
    // the principal only on top of a held premium (`escrow_principal`
    // requires `premium == Held`), so the `Escrowed` state always holds
    // both funds and every exit edge disposes of both. Windows mirror the
    // guards above: deposits via `ensure_before`, the two settle branches
    // via the `has_reached` tests in `settle`.
    fn state_spec(&self) -> Option<StateSpec> {
        Some(
            StateSpec::new(self.type_name()).machine(
                StateMachine::new("custody", "Start")
                    .fund("premium")
                    .fund("principal")
                    .transition(
                        TransitionSpec::new(
                            "DepositPremium",
                            "Start",
                            "PremiumHeld",
                            TimeWindow::before(self.params.premium_deadline),
                        )
                        .deposits("premium"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "EscrowPrincipal",
                            "PremiumHeld",
                            "Escrowed",
                            TimeWindow::before(self.params.escrow_deadline),
                        )
                        .deposits("principal"),
                    )
                    .transition(
                        TransitionSpec::new(
                            "Redeem",
                            "Escrowed",
                            "Redeemed",
                            TimeWindow::before(self.params.redeem_deadline),
                        )
                        .releases("principal", Disposition::Redeem)
                        .releases("premium", Disposition::Refund),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleUnescrowed",
                            "PremiumHeld",
                            "SettledUnescrowed",
                            TimeWindow::from(self.params.escrow_deadline),
                        )
                        .releases("premium", Disposition::Refund),
                    )
                    .transition(
                        TransitionSpec::new(
                            "SettleTimeout",
                            "Escrowed",
                            "TimedOut",
                            TimeWindow::from(self.params.redeem_deadline),
                        )
                        .releases("principal", Disposition::Refund)
                        .releases("premium", Disposition::Forfeit),
                    ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsim::{AccountRef, ContractAddr, World};

    // Roles as on the banana chain of Figure 1: Bob escrows, Alice redeems.
    const ALICE: PartyId = PartyId(0);
    const BOB: PartyId = PartyId(1);

    struct Fixture {
        world: World,
        addr: ContractAddr,
        token: AssetId,
        native: AssetId,
        secret: Secret,
    }

    /// Banana-chain contract with Δ = 1 block: premium deadline 1, escrow
    /// deadline 4, redeem deadline 5 (§5.2 timeouts).
    fn setup() -> Fixture {
        let mut world = World::new(1);
        let chain = world.add_chain("banana");
        let native = world.chain(chain).native_asset();
        let token = world.register_asset("banana-token");
        world.chain_mut(chain).mint(BOB, token, Amount::new(100));
        world.chain_mut(chain).mint(ALICE, native, Amount::new(10));
        let secret = Secret::from_seed(7);
        let escrow = HedgedEscrow::new(HedgedEscrowParams {
            escrower: BOB,
            redeemer: ALICE,
            principal_asset: token,
            principal_amount: Amount::new(100),
            premium_asset: native,
            premium_amount: Amount::new(3), // p_a + p_b
            hashlock: secret.hashlock(),
            premium_deadline: Time(1),
            escrow_deadline: Time(4),
            redeem_deadline: Time(5),
        });
        let addr = world.publish_labeled(chain, BOB, "banana-escrow", Box::new(escrow));
        Fixture { world, addr, token, native, secret }
    }

    fn contract(f: &Fixture) -> &HedgedEscrow {
        f.world.chain(f.addr.chain).contract_as::<HedgedEscrow>(f.addr.contract).unwrap()
    }

    fn balance(f: &Fixture, party: PartyId, asset: AssetId) -> Amount {
        f.world.chain(f.addr.chain).balance(AccountRef::Party(party), asset)
    }

    #[test]
    fn happy_path_premium_escrow_redeem() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::Held);
        f.world.advance_blocks(1);
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
        assert_eq!(contract(&f).principal_state(), HedgedPrincipalState::Held);
        f.world.advance_blocks(1);
        let secret = f.secret.clone();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret }, "redeem").unwrap();
        // Alice has the principal, her premium back, Bob has neither.
        assert_eq!(balance(&f, ALICE, f.token), Amount::new(100));
        assert_eq!(balance(&f, ALICE, f.native), Amount::new(10));
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::Refunded);
        assert_eq!(contract(&f).principal_state(), HedgedPrincipalState::Redeemed);
        assert!(contract(&f).revealed_secret().is_some());
    }

    #[test]
    fn premium_refunded_if_principal_never_escrowed() {
        // Bob is the sore loser: he never escrows after Alice's premium.
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        // Cannot settle before the escrow deadline.
        assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").is_err());
        f.world.advance_blocks(4);
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::Refunded);
        assert_eq!(balance(&f, ALICE, f.native), Amount::new(10));
    }

    #[test]
    fn premium_paid_to_escrower_if_redemption_times_out() {
        // Alice is the sore loser: Bob escrows but Alice never reveals.
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(1);
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
        f.world.advance_blocks(4); // now = 5 = redeem deadline
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).principal_state(), HedgedPrincipalState::Refunded);
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::PaidToEscrower);
        // Bob got his tokens back plus Alice's premium as compensation.
        assert_eq!(balance(&f, BOB, f.token), Amount::new(100));
        assert_eq!(balance(&f, BOB, f.native), Amount::new(3));
        assert_eq!(balance(&f, ALICE, f.native), Amount::new(7));
    }

    #[test]
    fn redeem_rejected_after_deadline_and_settle_still_compensates() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(1);
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
        f.world.advance_blocks(4);
        let secret = f.secret.clone();
        assert!(f
            .world
            .call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret }, "redeem")
            .is_err());
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").unwrap();
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::PaidToEscrower);
    }

    #[test]
    fn principal_cannot_be_escrowed_without_premium() {
        let mut f = setup();
        let err =
            f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap_err();
        assert!(err.to_string().contains("premium must be deposited"));
    }

    #[test]
    fn premium_deposit_respects_deadline_and_role() {
        let mut f = setup();
        // Wrong party.
        assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").is_err());
        // Too late.
        f.world.advance_blocks(1);
        assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").is_err());
        assert_eq!(contract(&f).premium_state(), HedgedPremiumState::NotDeposited);
    }

    #[test]
    fn escrow_respects_deadline() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(4);
        assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").is_err());
    }

    #[test]
    fn redeem_rejects_wrong_secret_and_wrong_caller() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(1);
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
        let wrong = Secret::from_seed(1);
        assert!(f
            .world
            .call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret: wrong }, "redeem")
            .is_err());
        let secret = f.secret.clone();
        assert!(f.world.call(BOB, f.addr, &HedgedEscrowMsg::Redeem { secret }, "redeem").is_err());
    }

    #[test]
    fn settle_is_rejected_when_nothing_is_due() {
        let mut f = setup();
        assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").is_err());
        // Even after deadlines, settling twice only works once.
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(5);
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").unwrap();
        assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Settle, "settle").is_err());
    }

    #[test]
    fn double_premium_deposit_is_rejected() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        assert!(f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").is_err());
    }

    #[test]
    fn accessors_report_times() {
        let mut f = setup();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::DepositPremium, "premium").unwrap();
        f.world.advance_blocks(2);
        f.world.call(BOB, f.addr, &HedgedEscrowMsg::EscrowPrincipal, "escrow").unwrap();
        f.world.advance_blocks(1);
        let secret = f.secret.clone();
        f.world.call(ALICE, f.addr, &HedgedEscrowMsg::Redeem { secret }, "redeem").unwrap();
        let c = contract(&f);
        assert_eq!(c.escrowed_at(), Some(Time(2)));
        assert_eq!(c.principal_settled_at(), Some(Time(3)));
        assert_eq!(c.params().escrower, BOB);
    }
}
