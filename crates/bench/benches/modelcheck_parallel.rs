//! Parallel model-checking throughput: the same deviation sweep on one
//! worker thread versus all available workers, demonstrating that the
//! engine's deterministic merge costs nothing while the wall-clock scales
//! with cores (§10 sweeps over the §7 generated-digraph scenario families).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use modelcheck::engine::{ParallelSweep, ScenarioGen};
use modelcheck::multi_party_families;

fn family_refs(families: &[modelcheck::scenarios::DealSweep]) -> Vec<&dyn ScenarioGen> {
    families.iter().map(|f| f as &dyn ScenarioGen).collect()
}

fn report() {
    // Compare against a fixed 4-worker pool rather than
    // `available_parallelism` so the bench exercises the multi-threaded
    // path (and its determinism assertion) even on single-CPU CI boxes.
    let threads = 4;
    bench::header(
        "parallel model checking: 1 thread vs N threads",
        &["family set", "scenarios", "1-thread", &format!("{threads}-thread"), "speedup"],
    );
    for n in [3u32, 4, 5] {
        let families = multi_party_families(n);
        let refs = family_refs(&families);

        let start = Instant::now();
        let serial = ParallelSweep::new(1).run_all(&refs);
        let serial_elapsed = start.elapsed();

        let start = Instant::now();
        let parallel = ParallelSweep::new(threads).run_all(&refs);
        let parallel_elapsed = start.elapsed();

        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "summaries must be identical for 1 vs N threads"
        );
        assert!(serial.holds(), "multi-party n={n}: {:?}", serial.violations);
        let speedup = serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9);
        bench::row(&[
            format!("multi-party n={n}"),
            serial.runs.to_string(),
            format!("{serial_elapsed:.2?}"),
            format!("{parallel_elapsed:.2?}"),
            format!("{speedup:.2}x"),
        ]);
    }
}

fn bench_modelcheck_parallel(c: &mut Criterion) {
    report();
    let families = multi_party_families(4);
    c.bench_function("modelcheck_multi_party_n4_1_thread", |b| {
        b.iter(|| black_box(ParallelSweep::new(1).run_all(&family_refs(&families))))
    });
    c.bench_function("modelcheck_multi_party_n4_4_threads", |b| {
        b.iter(|| black_box(ParallelSweep::new(4).run_all(&family_refs(&families))))
    });
}

criterion_group!(benches, bench_modelcheck_parallel);
criterion_main!(benches);
