//! Experiment C9 — substrate throughput: the chain simulator itself.

use chainsim::{AccountRef, Amount, AssetId, PartyId, World};
use contracts::{HtlcEscrow, HtlcMsg};
use criterion::{criterion_group, criterion_main, Criterion};
use cryptosim::Secret;

fn escrow_redeem_round_trip() {
    let mut world = World::new(1);
    let chain = world.add_chain("apricot");
    let token = world.register_asset("token");
    world.chain_mut(chain).mint(PartyId(0), token, Amount::new(1));
    let secret = Secret::from_seed(1);
    let escrow = HtlcEscrow::new(
        PartyId(0),
        PartyId(1),
        token,
        Amount::new(1),
        secret.hashlock(),
        chainsim::Time(10),
    );
    let id = world.chain_mut(chain).publish(PartyId(0), Box::new(escrow));
    let addr = chainsim::ContractAddr::new(chain, id);
    world.call(PartyId(0), addr, &HtlcMsg::Escrow, "escrow").unwrap();
    world.call(PartyId(1), addr, &HtlcMsg::Redeem { secret }, "redeem").unwrap();
    assert_eq!(world.chain(chain).balance(AccountRef::Party(PartyId(1)), token), Amount::new(1));
}

fn ledger_transfers(n: u64) {
    let mut world = World::new(1);
    let chain = world.add_chain("a");
    let coin = AssetId(0);
    world.chain_mut(chain).mint(PartyId(0), coin, Amount::new(u128::from(n)));
    for _ in 0..n {
        world
            .chain_mut(chain)
            .ledger_mut()
            .transfer(
                AccountRef::Party(PartyId(0)),
                AccountRef::Party(PartyId(1)),
                coin,
                Amount::new(1),
            )
            .unwrap();
    }
}

fn bench_chainsim(c: &mut Criterion) {
    bench::header("C9: substrate micro-benchmarks", &["benchmark", "see criterion output"]);
    c.bench_function("htlc_escrow_redeem_round_trip", |b| b.iter(escrow_redeem_round_trip));
    c.bench_function("ledger_transfers_1000", |b| b.iter(|| ledger_transfers(1000)));
}

criterion_group!(benches, bench_chainsim);
criterion_main!(benches);
