//! Experiment C10 — the dense ledger at market scale: 1,000,000 accounts.
//!
//! PR 3 replaced the `BTreeMap`-backed ledger with dense `Vec` rows indexed
//! by sequentially-assigned ids, keeping the old map as the
//! `map-ledger-oracle` differential oracle. ROADMAP open item 1 asks for the
//! receipts at realistic account cardinality: populate one million party
//! accounts and measure transfer ops/sec on both implementations. The
//! transfer mix draws uniform random account pairs from a pinned SplitMix64
//! stream, so both ledgers replay byte-identical operation sequences.

use chainsim::{AccountRef, Amount, AssetId, Ledger, MapLedger, PartyId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use marketsim::market::SplitMix64;

/// Account cardinality under test (ROADMAP: "millions of accounts").
const ACCOUNTS: u32 = 1_000_000;

/// Per-account endowment. Large enough that a uniform random transfer mix
/// cannot realistically drain any single account over a full bench run.
const ENDOWMENT: u128 = 1_000_000;

/// Transfers executed per measured iteration.
const TRANSFERS_PER_ITER: u64 = 10_000;

/// The pinned seed of the account-pair stream.
const SEED: u64 = 0x1ED6_E55C_A1E0;

const COIN: AssetId = AssetId(0);

fn populate_vec() -> Ledger {
    let mut ledger = Ledger::new();
    ledger.reserve(ACCOUNTS as usize, 0, 1);
    for p in 0..ACCOUNTS {
        ledger.mint(AccountRef::Party(PartyId(p)), COIN, Amount::new(ENDOWMENT));
    }
    ledger
}

fn populate_map() -> MapLedger {
    let mut ledger = MapLedger::new();
    for p in 0..ACCOUNTS {
        ledger.mint(AccountRef::Party(PartyId(p)), COIN, Amount::new(ENDOWMENT));
    }
    ledger
}

/// One `(from, to)` draw; a self-transfer is a legal ledger op, so pairs are
/// not rejection-sampled and both implementations see the identical stream.
fn draw_pair(rng: &mut SplitMix64) -> (AccountRef, AccountRef) {
    let from = PartyId(rng.below(u64::from(ACCOUNTS)) as u32);
    let to = PartyId(rng.below(u64::from(ACCOUNTS)) as u32);
    (AccountRef::Party(from), AccountRef::Party(to))
}

fn transfers_vec(ledger: &mut Ledger, rng: &mut SplitMix64) {
    for _ in 0..TRANSFERS_PER_ITER {
        let (from, to) = draw_pair(rng);
        ledger.transfer(from, to, COIN, Amount::new(1)).expect("endowed account overdrawn");
    }
}

fn transfers_map(ledger: &mut MapLedger, rng: &mut SplitMix64) {
    for _ in 0..TRANSFERS_PER_ITER {
        let (from, to) = draw_pair(rng);
        ledger.transfer(from, to, COIN, Amount::new(1)).expect("endowed account overdrawn");
    }
}

fn bench_ledger_scale(c: &mut Criterion) {
    bench::header(
        "C10: dense ledger at 1M accounts (VecLedger vs MapLedger)",
        &["benchmark", "see criterion output"],
    );

    let mut group = c.benchmark_group("ledger_scale_1m");
    group.sample_size(10);

    // Transfer throughput over a fully populated ledger. Criterion's
    // `Elements` throughput turns the per-iteration time into transfer
    // ops/sec directly.
    group.throughput(Throughput::Elements(TRANSFERS_PER_ITER));
    let mut vec_ledger = populate_vec();
    let mut vec_rng = SplitMix64::new(SEED);
    group.bench_function("vec_ledger_transfers", |b| {
        b.iter(|| transfers_vec(&mut vec_ledger, &mut vec_rng))
    });
    let mut map_ledger = populate_map();
    let mut map_rng = SplitMix64::new(SEED);
    group.bench_function("map_ledger_transfers", |b| {
        b.iter(|| transfers_map(&mut map_ledger, &mut map_rng))
    });

    // Population cost: minting the million endowments from an empty ledger.
    group.throughput(Throughput::Elements(u64::from(ACCOUNTS)));
    group.bench_function("vec_ledger_populate", |b| b.iter(populate_vec));
    group.bench_function("map_ledger_populate", |b| b.iter(populate_map));

    group.finish();
}

criterion_group!(benches, bench_ledger_scale);
criterion_main!(benches);
