//! Experiment C5 — the §9 auction: Lemmas 7–8 and the n·p premium.

use std::collections::BTreeMap;

use chainsim::Amount;
use criterion::{criterion_group, criterion_main, Criterion};
use protocols::auction::{run_auction, AuctionConfig, AuctioneerBehaviour};

fn report() {
    bench::header(
        "C5: auction outcomes per auctioneer behaviour (2 bidders, p = 2)",
        &["behaviour", "outcome", "winner", "bidder payoffs", "no bid stolen", "compensated"],
    );
    for behaviour in [
        AuctioneerBehaviour::DeclareHighBidder,
        AuctioneerBehaviour::DeclareLowBidder,
        AuctioneerBehaviour::Abandon,
    ] {
        let config = AuctionConfig { auctioneer: behaviour, ..AuctionConfig::default() };
        let r = run_auction(&config, &BTreeMap::new());
        bench::row(&[
            format!("{behaviour:?}"),
            format!("{:?}", r.outcome),
            format!("{:?}", r.ticket_winner),
            format!("{:?}", r.bidder_coin_payoffs),
            r.no_bid_stolen.to_string(),
            r.bidders_compensated.to_string(),
        ]);
    }
    bench::header("C5: auctioneer premium endowment scales as n·p", &["bidders n", "endowment"]);
    for n in 2..=6u32 {
        let bids: Vec<Option<Amount>> =
            (0..n).map(|i| Some(Amount::new(10 + u128::from(i)))).collect();
        let config = AuctionConfig { bids, ..AuctionConfig::default() };
        bench::row(&[n.to_string(), config.premium.scaled(u128::from(n)).to_string()]);
    }
}

fn bench_auction(c: &mut Criterion) {
    report();
    let config = AuctionConfig::default();
    c.bench_function("auction_honest_two_bidders", |b| {
        b.iter(|| run_auction(&config, &BTreeMap::new()))
    });
}

criterion_group!(benches, bench_auction);
criterion_main!(benches);
