//! Experiment F1/C1 — Figure 1 and the §5.1/§5.2 deviation payoff matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use protocols::script::Strategy;
use protocols::two_party::{run_base_swap, run_hedged_swap, TwoPartyConfig};

fn report() {
    let config = TwoPartyConfig::default();
    bench::header(
        "F1/C1: two-party swap deviation matrix (premiums p_a = p_b = 2)",
        &[
            "protocol",
            "scenario",
            "alice premium",
            "bob premium",
            "alice lockup (blocks)",
            "hedged",
        ],
    );
    let scenarios: [(&str, Strategy, Strategy); 4] = [
        ("compliant", Strategy::compliant(), Strategy::compliant()),
        ("bob aborts before escrow", Strategy::compliant(), Strategy::stop_after(1)),
        ("bob absent", Strategy::compliant(), Strategy::stop_after(0)),
        ("alice aborts after escrow", Strategy::stop_after(2), Strategy::compliant()),
    ];
    for (name, alice, bob) in scenarios {
        for (proto, r) in [
            ("base", run_base_swap(&config, alice, bob)),
            ("hedged", run_hedged_swap(&config, alice, bob)),
        ] {
            bench::row(&[
                proto.into(),
                name.into(),
                r.alice_premium_payoff.to_string(),
                r.bob_premium_payoff.to_string(),
                r.alice_lockup.principal_blocks.to_string(),
                (r.hedged_for_alice && r.hedged_for_bob).to_string(),
            ]);
        }
    }
}

fn bench_two_party(c: &mut Criterion) {
    report();
    let config = TwoPartyConfig::default();
    c.bench_function("hedged_two_party_compliant", |b| {
        b.iter(|| run_hedged_swap(&config, Strategy::compliant(), Strategy::compliant()))
    });
    c.bench_function("base_two_party_compliant", |b| {
        b.iter(|| run_base_swap(&config, Strategy::compliant(), Strategy::compliant()))
    });
    c.bench_function("hedged_two_party_bob_reneges", |b| {
        b.iter(|| run_hedged_swap(&config, Strategy::compliant(), Strategy::stop_after(1)))
    });
}

criterion_group!(benches, bench_two_party);
criterion_main!(benches);
