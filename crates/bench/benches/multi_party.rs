//! Experiment F3 — the Figure 3a three-party swap and its premium tables.

use std::collections::BTreeMap;

use chainsim::PartyId;
use criterion::{criterion_group, criterion_main, Criterion};
use protocols::multi_party::{cycle_config, figure3_config, run_multi_party_swap};
use protocols::script::Strategy;
use swapgraph::{premiums, Digraph};

fn report() {
    let g = Digraph::figure3();
    bench::header(
        "F3: Figure 3b hashkey paths and redemption premiums (p = 1)",
        &["arc", "path", "premium"],
    );
    for entry in premiums::redemption_premium_table(&g, 0, 1) {
        bench::row(&[
            format!("{:?}", entry.arc),
            format!("{:?}", entry.path),
            entry.amount.to_string(),
        ]);
    }
    bench::header("F3: Figure 3a escrow premiums (Eq. 2, p = 1)", &["arc", "E(u,v)"]);
    let leaders = std::collections::BTreeSet::from([0]);
    for (arc, premium) in premiums::escrow_premium_table(&g, &leaders, 1).unwrap() {
        bench::row(&[format!("{arc:?}"), premium.to_string()]);
    }

    bench::header(
        "F3: three-party swap outcomes",
        &["scenario", "completed", "all compliant hedged"],
    );
    let compliant = run_multi_party_swap(&figure3_config(), &BTreeMap::new());
    bench::row(&[
        "compliant".into(),
        compliant.completed.to_string(),
        compliant.all_compliant_hedged().to_string(),
    ]);
    let strategies = BTreeMap::from([(PartyId(2), Strategy::stop_after(2))]);
    let carol_defects = run_multi_party_swap(&figure3_config(), &strategies);
    bench::row(&[
        "carol defects".into(),
        carol_defects.completed.to_string(),
        carol_defects.all_compliant_hedged().to_string(),
    ]);
}

fn bench_multi_party(c: &mut Criterion) {
    report();
    let config = figure3_config();
    c.bench_function("figure3_swap_compliant", |b| {
        b.iter(|| run_multi_party_swap(&config, &BTreeMap::new()))
    });
    for n in [3u32, 5] {
        let config = cycle_config(n);
        c.bench_function(&format!("cycle_swap_n{n}"), |b| {
            b.iter(|| run_multi_party_swap(&config, &BTreeMap::new()))
        });
    }
}

criterion_group!(benches, bench_multi_party);
criterion_main!(benches);
