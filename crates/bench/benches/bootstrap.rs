//! Experiments F2/C2 — Figure 2 and the §6 bootstrapping-round claims.

use criterion::{criterion_group, criterion_main, Criterion};
use protocols::bootstrap::{run_bootstrap, BootstrapDeviation};
use swapgraph::bootstrap::{bootstrap_plan, lockup_durations, rounds_needed};

fn report() {
    bench::header(
        "C2: rounds needed to hedge a swap (1% premiums, $4 initial risk)",
        &["total value", "rounds"],
    );
    for value in [1_000u128, 10_000, 100_000, 1_000_000, 10_000_000] {
        bench::row(&[value.to_string(), rounds_needed(value, 4, 100).to_string()]);
    }

    bench::header(
        "F2: bootstrap deposit plan for a $1,000,000 swap (P = 100, 3 rounds)",
        &["level", "alice deposit", "bob deposit"],
    );
    let plan = bootstrap_plan(500_000, 500_000, 100, 3);
    for level in &plan.levels {
        bench::row(&[
            level.level.to_string(),
            level.alice_deposit.to_string(),
            level.bob_deposit.to_string(),
        ]);
    }

    bench::header(
        "C2: lock-up risk duration is independent of rounds",
        &["rounds", "risk duration (steps)", "total protocol (steps)"],
    );
    for rounds in 0..=5u32 {
        let (risk, total) = lockup_durations(6, rounds);
        bench::row(&[rounds.to_string(), risk.to_string(), total.to_string()]);
    }
}

fn bench_bootstrap(c: &mut Criterion) {
    report();
    c.bench_function("bootstrap_cascade_3_rounds_compliant", |b| {
        b.iter(|| run_bootstrap(500_000, 500_000, 100, 3, BootstrapDeviation::None))
    });
    c.bench_function("bootstrap_plan_million", |b| {
        b.iter(|| bootstrap_plan(500_000, 500_000, 100, 3))
    });
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
