//! Experiment C7 — Cox-Ross-Rubinstein premium estimates (§4).

use criterion::{criterion_group, criterion_main, Criterion};
use marketsim::adequacy::premium_grid;
use swapgraph::pricing::{crr_price, CrrParams, ExerciseStyle, OptionKind};

fn report() {
    bench::header(
        "C7: fair lock-up premium (CRR, principal = 100, blocks = hours)",
        &["lockup (blocks)", "volatility", "premium", "fraction of principal"],
    );
    let rows = premium_grid(&[12, 24, 48, 96], &[0.25, 0.5, 1.0], 24 * 365).unwrap();
    for row in rows {
        bench::row(&[
            row.lockup_blocks.to_string(),
            format!("{:.2}", row.volatility),
            format!("{:.3}", row.premium),
            format!("{:.4}", row.premium_fraction),
        ]);
    }
}

fn bench_pricing(c: &mut Criterion) {
    report();
    let params = CrrParams {
        spot: 100.0,
        strike: 100.0,
        rate: 0.0,
        volatility: 0.5,
        expiry: 48.0 / (24.0 * 365.0),
        steps: 128,
        kind: OptionKind::Call,
        style: ExerciseStyle::American,
    };
    c.bench_function("crr_price_128_steps", |b| b.iter(|| crr_price(&params).unwrap()));
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
