//! Experiments C4/C6 — exhaustive deviation sweeps (the paper's §10 model
//! checking) and their running time.

use criterion::{criterion_group, criterion_main, Criterion};
use modelcheck::{check_auction, check_base_two_party, check_figure3_swap, check_hedged_two_party};

fn report() {
    bench::header("C4/C6: exhaustive deviation sweeps", &["protocol", "runs", "violations"]);
    let rows = [
        ("hedged two-party swap", check_hedged_two_party()),
        ("base two-party swap", check_base_two_party()),
        ("three-party swap (Fig. 3a)", check_figure3_swap()),
        ("auction", check_auction()),
    ];
    for (name, summary) in rows {
        bench::row(&[name.into(), summary.runs.to_string(), summary.violations.len().to_string()]);
    }
}

fn bench_model_check(c: &mut Criterion) {
    report();
    c.bench_function("model_check_hedged_two_party", |b| b.iter(check_hedged_two_party));
    c.bench_function("model_check_figure3_swap", |b| b.iter(check_figure3_swap));
}

criterion_group!(benches, bench_model_check);
criterion_main!(benches);
