//! Experiment C3 — leader premium growth: linear on unique-path digraphs,
//! exponential on complete digraphs, reduced back by bootstrapping.

use criterion::{criterion_group, criterion_main, Criterion};
use swapgraph::bootstrap::rounds_needed;
use swapgraph::{premiums, Digraph};

fn report() {
    bench::header(
        "C3: leader redemption premium vs number of parties (p = 1)",
        &["n", "cycle (unique paths)", "complete digraph", "bootstrap rounds to reach ~n·p (P=10)"],
    );
    for n in 2..=6u32 {
        let cycle = premiums::leader_redemption_premium(&Digraph::cycle(n), 0, 1);
        let complete = premiums::leader_redemption_premium(&Digraph::complete(n), 0, 1);
        let rounds = rounds_needed(complete, u128::from(n), 10);
        bench::row(&[n.to_string(), cycle.to_string(), complete.to_string(), rounds.to_string()]);
    }
}

fn bench_premiums(c: &mut Criterion) {
    report();
    c.bench_function("leader_premium_cycle_8", |b| {
        let g = Digraph::cycle(8);
        b.iter(|| premiums::leader_redemption_premium(&g, 0, 1))
    });
    c.bench_function("leader_premium_complete_6", |b| {
        let g = Digraph::complete(6);
        b.iter(|| premiums::leader_redemption_premium(&g, 0, 1))
    });
    c.bench_function("escrow_premium_table_figure3", |b| {
        let g = Digraph::figure3();
        let leaders = std::collections::BTreeSet::from([0]);
        b.iter(|| premiums::escrow_premium_table(&g, &leaders, 1).unwrap())
    });
}

criterion_group!(benches, bench_premiums);
criterion_main!(benches);
