//! Experiment C8 — rational sore losers: base vs hedged success rates over a
//! volatility sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use marketsim::rational::{compare_protocols, RationalExperiment};

fn report() {
    bench::header(
        "C8: swap success rate with a rational counterparty (200 trials each)",
        &[
            "volatility",
            "base success",
            "hedged success",
            "compliant payoff on abort (base)",
            "(hedged)",
        ],
    );
    for volatility in [0.2, 0.5, 1.0, 2.0] {
        let comparison =
            compare_protocols(&RationalExperiment { volatility, ..RationalExperiment::default() });
        bench::row(&[
            format!("{volatility:.1}"),
            format!("{:.2}", comparison.base.success_rate),
            format!("{:.2}", comparison.hedged.success_rate),
            format!("{:.2}", comparison.base.mean_compliant_payoff_on_abort),
            format!("{:.2}", comparison.hedged.mean_compliant_payoff_on_abort),
        ]);
    }
}

fn bench_rational(c: &mut Criterion) {
    report();
    let experiment = RationalExperiment { trials: 20, ..RationalExperiment::default() };
    c.bench_function("rational_comparison_20_trials", |b| {
        b.iter(|| compare_protocols(&experiment))
    });
}

criterion_group!(benches, bench_rational);
criterion_main!(benches);
