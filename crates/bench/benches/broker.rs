//! Experiment F4 — the Figure 4 brokered sale and its premium structure.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use protocols::broker::{
    broker_deal_config, run_brokered_sale, BrokerConfig, BROKER, BUYER, SELLER,
};
use protocols::script::Strategy;

fn report() {
    let config = BrokerConfig::default();
    let deal = broker_deal_config(&config);
    bench::header(
        "F4: broker deal arcs and premiums (p = 1)",
        &["arc", "asset", "amount", "escrow/trading premium"],
    );
    for arc in &deal.arcs {
        bench::row(&[
            format!("({}, {})", arc.from, arc.to),
            arc.asset_name.clone(),
            arc.amount.to_string(),
            arc.escrow_premium.to_string(),
        ]);
    }
    bench::header("F4: broker deal outcomes", &["scenario", "completed", "all compliant hedged"]);
    for (name, strategies) in [
        ("compliant", BTreeMap::new()),
        ("seller defects", BTreeMap::from([(SELLER, Strategy::stop_after(2))])),
        ("buyer defects", BTreeMap::from([(BUYER, Strategy::stop_after(2))])),
        ("broker defects", BTreeMap::from([(BROKER, Strategy::stop_after(2))])),
    ] {
        let r = run_brokered_sale(&config, &strategies);
        bench::row(&[name.into(), r.completed.to_string(), r.all_compliant_hedged().to_string()]);
    }
}

fn bench_broker(c: &mut Criterion) {
    report();
    let config = BrokerConfig::default();
    c.bench_function("brokered_sale_compliant", |b| {
        b.iter(|| run_brokered_sale(&config, &BTreeMap::new()))
    });
}

criterion_group!(benches, bench_broker);
criterion_main!(benches);
