//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one figure or quantitative
//! claim of the paper (see EXPERIMENTS.md at the workspace root): it prints
//! the paper-shaped table once, then benchmarks the underlying simulation so
//! regressions in the substrate are visible.

/// Prints a table header for a bench report.
pub fn header(experiment: &str, columns: &[&str]) {
    println!("\n=== {experiment} ===");
    println!("{}", columns.join(" | "));
}

/// Prints one row of a bench report.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}
