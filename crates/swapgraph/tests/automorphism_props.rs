//! Property-based tests for the digraph automorphism groups backing the
//! model checker's symmetry reduction: generated groups must actually be
//! groups (closed under composition and inverse, containing the identity),
//! match the cycle/clique closed forms, and respect arc preservation on
//! arbitrary generated digraphs.

use std::collections::BTreeSet;

use proptest::prelude::*;
use swapgraph::{Automorphism, Digraph, Vertex};

/// Composes two automorphisms: `(a ∘ b)(v) = a(b(v))`.
fn compose(a: &Automorphism, b: &Automorphism) -> Automorphism {
    b.iter().map(|(&v, &bv)| (v, *a.get(&bv).unwrap_or(&bv))).collect()
}

/// Inverts an automorphism.
fn invert(a: &Automorphism) -> Automorphism {
    a.iter().map(|(&v, &av)| (av, v)).collect()
}

fn identity_of(g: &Digraph) -> Automorphism {
    g.vertices().map(|v| (v, v)).collect()
}

/// Asserts the group axioms and arc preservation for `group` on `g`.
fn assert_is_group(g: &Digraph, group: &[Automorphism]) {
    let members: BTreeSet<&Automorphism> = group.iter().collect();
    assert!(members.contains(&identity_of(g)), "identity missing");
    assert_eq!(members.len(), group.len(), "duplicate group elements");
    for a in group {
        assert!(members.contains(&invert(a)), "inverse of {a:?} missing");
        for b in group {
            assert!(members.contains(&compose(a, b)), "composition {a:?} ∘ {b:?} missing");
        }
        // Arc preservation, both directions.
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.contains_arc(u, v), g.contains_arc(a[&u], a[&v]), "{a:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full automorphism group of a random strongly-connected digraph
    /// is a group under composition and inverse, and every member
    /// preserves arcs.
    #[test]
    fn random_digraph_automorphisms_form_a_group(
        n in 2u32..7,
        extra in 0usize..5,
        seed in 0u64..64,
    ) {
        let g = Digraph::random_strongly_connected(n, extra, seed);
        let group = g.automorphisms();
        prop_assert!(!group.is_empty());
        assert_is_group(&g, &group);
    }

    /// The setwise stabilizer of the greedy leader set — the subgroup the
    /// model checker quotients by — is itself a group.
    #[test]
    fn leader_stabilizers_form_a_group(
        n in 3u32..7,
        extra in 0usize..4,
        seed in 0u64..32,
    ) {
        let g = Digraph::random_strongly_connected(n, extra, seed);
        let leaders = g.greedy_feedback_vertex_set();
        let stabilizer = g.automorphisms_stabilizing(&leaders);
        prop_assert!(!stabilizer.is_empty());
        assert_is_group(&g, &stabilizer);
        // Every member maps the leader set onto itself.
        for perm in &stabilizer {
            let image: BTreeSet<Vertex> = leaders.iter().map(|v| perm[v]).collect();
            prop_assert_eq!(&image, &leaders);
        }
    }

    /// Closed forms: a directed cycle has exactly the `n` rotations, and
    /// the complete digraph all `n!` permutations; stabilizing a clique's
    /// `n-1`-vertex leader set keeps `(n-1)!`.
    #[test]
    fn cycle_and_clique_closed_forms(n in 2u32..7) {
        prop_assert_eq!(Digraph::cycle(n).automorphisms().len(), n as usize);
        let factorial = |k: u32| (1..=k as usize).product::<usize>();
        let clique = Digraph::complete(n);
        prop_assert_eq!(clique.automorphisms().len(), factorial(n));
        let leaders: BTreeSet<Vertex> = (0..n - 1).collect();
        prop_assert_eq!(
            clique.automorphisms_stabilizing(&leaders).len(),
            factorial(n - 1)
        );
    }
}
