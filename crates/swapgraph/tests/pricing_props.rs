//! Property-based tests for premium formulas: the Cox-Ross-Rubinstein
//! pricer of §4 (no-arbitrage bounds and the monotonicities that make the
//! premium formula economically sensible — a longer lock-up or a more
//! volatile asset can only justify a larger premium) and the §7 protocol
//! premiums of Equations (1)–(2) over generated digraphs.

use proptest::prelude::*;
use swapgraph::premiums::{
    escrow_premium_table, leader_redemption_premium, premium_summary, redemption_premium,
    redemption_premium_table,
};
use swapgraph::pricing::{crr_price, lockup_premium, CrrParams, ExerciseStyle, OptionKind};
use swapgraph::Digraph;

/// Draws a spot price in a numerically comfortable range.
fn spot_from(raw: u64) -> f64 {
    10.0 + (raw % 10_000) as f64 / 10.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Option prices stay within the no-arbitrage envelope:
    /// `0 <= price` and an American call is worth at least its intrinsic
    /// value but never more than the spot itself.
    #[test]
    fn american_call_respects_no_arbitrage_bounds(
        raw_spot in 0u64..10_000,
        raw_strike in 0u64..10_000,
        vol_bps in 1u32..300,
        expiry_days in 1u32..365,
    ) {
        let spot = spot_from(raw_spot);
        let strike = spot_from(raw_strike);
        let params = CrrParams {
            spot,
            strike,
            rate: 0.0,
            volatility: f64::from(vol_bps) / 100.0,
            expiry: f64::from(expiry_days) / 365.0,
            steps: 64,
            kind: OptionKind::Call,
            style: ExerciseStyle::American,
        };
        let price = crr_price(&params).unwrap();
        prop_assert!(price >= 0.0, "negative premium {price}");
        prop_assert!(price >= (spot - strike).max(0.0) - 1e-9, "below intrinsic: {price}");
        prop_assert!(price <= spot + 1e-9, "call worth more than the asset: {price}");
    }

    /// An American option is worth at least the European option on the same
    /// terms (extra exercise rights cannot have negative value).
    #[test]
    fn american_dominates_european(
        raw_spot in 0u64..10_000,
        vol_bps in 10u32..200,
        expiry_days in 1u32..180,
    ) {
        let spot = spot_from(raw_spot);
        let mut params = CrrParams {
            spot,
            strike: spot,
            rate: 0.01,
            volatility: f64::from(vol_bps) / 100.0,
            expiry: f64::from(expiry_days) / 365.0,
            steps: 64,
            kind: OptionKind::Put,
            style: ExerciseStyle::European,
        };
        let european = crr_price(&params).unwrap();
        params.style = ExerciseStyle::American;
        let american = crr_price(&params).unwrap();
        prop_assert!(american >= european - 1e-9, "american {american} < european {european}");
    }

    /// The lock-up premium grows (weakly) with the lock-up duration: holding
    /// someone's asset longer can only be worth more to walk away from.
    #[test]
    fn premium_is_monotone_in_lockup_duration(
        raw_value in 0u64..10_000,
        vol_bps in 10u32..250,
        blocks_a in 1u64..5_000,
        extra_blocks in 0u64..5_000,
    ) {
        let value = spot_from(raw_value);
        let volatility = f64::from(vol_bps) / 100.0;
        let blocks_per_year = 52_560; // ~10-minute blocks
        let short = lockup_premium(value, volatility, blocks_a, blocks_per_year).unwrap();
        let long =
            lockup_premium(value, volatility, blocks_a + extra_blocks, blocks_per_year).unwrap();
        prop_assert!(
            long >= short - 1e-9,
            "premium shrank with a longer lock-up: {short} -> {long}"
        );
    }

    /// The lock-up premium grows (weakly) with volatility.
    #[test]
    fn premium_is_monotone_in_volatility(
        raw_value in 0u64..10_000,
        vol_lo_bps in 10u32..200,
        vol_extra_bps in 0u32..200,
        blocks in 1u64..10_000,
    ) {
        let value = spot_from(raw_value);
        let blocks_per_year = 52_560;
        let lo = f64::from(vol_lo_bps) / 100.0;
        let hi = f64::from(vol_lo_bps + vol_extra_bps) / 100.0;
        let calm = lockup_premium(value, lo, blocks, blocks_per_year).unwrap();
        let wild = lockup_premium(value, hi, blocks, blocks_per_year).unwrap();
        prop_assert!(
            wild >= calm - 1e-9,
            "premium shrank with higher volatility: {calm} -> {wild}"
        );
    }

    /// §7, Equations (1)–(2) on generated strongly-connected digraphs: the
    /// escrow premium on an arc covers every single redemption-premium
    /// obligation that can arise on that arc, for every leader and every
    /// simple path — a sender's escrow deposit can therefore always
    /// compensate a receiver abandoned mid-redemption.
    #[test]
    fn escrow_premium_dominates_every_redemption_path(
        n in 3u32..7,
        extra in 0usize..8,
        seed in 0u64..10_000,
        p in 1u128..1_000,
    ) {
        let g = Digraph::random_strongly_connected(n, extra, seed);
        let leaders = g.greedy_feedback_vertex_set();
        prop_assert!(g.validate_leaders(&leaders).is_ok());
        let escrow = escrow_premium_table(&g, &leaders, p).unwrap();
        for &leader in &leaders {
            for entry in redemption_premium_table(&g, leader, p) {
                prop_assert!(
                    escrow[&entry.arc] >= entry.amount,
                    "E{:?} = {} < R = {} (leader {leader}, path {:?}, seed {seed})",
                    entry.arc,
                    escrow[&entry.arc],
                    entry.amount,
                    entry.path
                );
            }
        }
    }

    /// §7 premium positivity: on generated digraphs every escrow premium and
    /// every redemption obligation is at least the base premium `p` — never
    /// zero, never negative (trivially, `u128`), and never wrapped by the
    /// recursion for the graph sizes the protocol targets.
    #[test]
    fn generated_digraph_premiums_are_positive_and_bounded(
        n in 2u32..7,
        extra in 0usize..6,
        seed in 0u64..10_000,
        p in 1u128..1_000,
    ) {
        let g = Digraph::random_strongly_connected(n, extra, seed);
        let leaders = g.greedy_feedback_vertex_set();
        let escrow = escrow_premium_table(&g, &leaders, p).unwrap();
        for (&arc, &amount) in &escrow {
            prop_assert!(amount >= p, "escrow premium on {arc:?} below p: {amount}");
        }
        for &leader in &leaders {
            prop_assert!(leader_redemption_premium(&g, leader, p) >= p);
            for entry in redemption_premium_table(&g, leader, p) {
                // A sender already on the path closes a non-simple extension:
                // Equation (1) assigns it exactly zero. Every other entry is
                // a real obligation of at least the base premium.
                if entry.path.contains(&entry.arc.0) && entry.arc.0 != leader {
                    prop_assert_eq!(entry.amount, 0, "non-simple extension: {:?}", entry);
                } else {
                    prop_assert!(entry.amount >= p, "redemption entry below p: {entry:?}");
                }
                prop_assert!(entry.path.last() == Some(&leader));
            }
        }
        // The aggregate summary is internally consistent and finite: maxima
        // bound the per-arc entries, totals bound the maxima.
        let summary = premium_summary(&g, &leaders, p).unwrap();
        prop_assert!(summary.max_escrow >= p && summary.total_escrow >= summary.max_escrow);
        prop_assert!(summary.max_redemption >= p);
        prop_assert!(summary.total_redemption >= summary.max_redemption);
    }

    /// Equation (1) scales linearly in the base premium `p`, so computing
    /// with `p = 1` and scaling (as the protocol layer does) is exact.
    #[test]
    fn redemption_premium_is_linear_in_p(
        n in 2u32..6,
        extra in 0usize..5,
        seed in 0u64..10_000,
        p in 2u128..500,
    ) {
        let g = Digraph::random_strongly_connected(n, extra, seed);
        let leaders = g.greedy_feedback_vertex_set();
        for &leader in &leaders {
            for u in g.in_neighbors(leader) {
                let unit = redemption_premium(&g, 1, &[leader], u);
                let scaled = redemption_premium(&g, p, &[leader], u);
                prop_assert_eq!(scaled, unit * p, "Eq. (1) not linear in p");
            }
        }
        let unit = escrow_premium_table(&g, &leaders, 1).unwrap();
        let scaled = escrow_premium_table(&g, &leaders, p).unwrap();
        for (arc, amount) in unit {
            prop_assert_eq!(scaled[&arc], amount * p, "Eq. (2) not linear in p");
        }
    }

    /// The premium scales linearly in the asset value: pricing is
    /// homogeneous of degree one (scale invariance of CRR).
    #[test]
    fn premium_scales_linearly_in_value(
        raw_value in 10u64..10_000,
        vol_bps in 10u32..200,
        blocks in 1u64..10_000,
        scale in 2u64..50,
    ) {
        let value = spot_from(raw_value);
        let volatility = f64::from(vol_bps) / 100.0;
        let blocks_per_year = 52_560;
        let unit = lockup_premium(value, volatility, blocks, blocks_per_year).unwrap();
        let scaled =
            lockup_premium(value * scale as f64, volatility, blocks, blocks_per_year).unwrap();
        let expected = unit * scale as f64;
        prop_assert!(
            (scaled - expected).abs() <= 1e-6 * expected.max(1.0),
            "not homogeneous: {scaled} vs {expected}"
        );
    }
}
