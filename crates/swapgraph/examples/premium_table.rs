//! Prints the C3 premium-scaling table (used to cross-check EXPERIMENTS.md).
use swapgraph::bootstrap::rounds_needed;
use swapgraph::{premiums, Digraph};

fn main() {
    for n in 2..=6u32 {
        let cycle = premiums::leader_redemption_premium(&Digraph::cycle(n), 0, 1);
        let complete = premiums::leader_redemption_premium(&Digraph::complete(n), 0, 1);
        let rounds = rounds_needed(complete, u128::from(n), 10);
        println!("n={n} cycle={cycle} complete={complete} rounds={rounds}");
    }
}
