//! Swap digraphs, premium formulas and premium-sizing mathematics.
//!
//! A multi-party swap (§7 of Xue & Herlihy, PODC 2021) is described by a
//! strongly-connected directed graph whose vertices are parties and whose
//! arcs are proposed asset transfers. This crate provides:
//!
//! * [`Digraph`] — the swap-graph data structure with the graph algorithms
//!   the protocols need (strong connectivity, diameter, feedback vertex
//!   sets, simple-path enumeration);
//! * [`premiums`] — the redemption-premium formula (Eq. 1), the
//!   escrow-premium formula (Eq. 2), leader premiums, and the broker
//!   protocol's trading premiums;
//! * [`bootstrap`] — the premium-bootstrapping arithmetic of §6 (how many
//!   rounds of premium exchange are needed so that the initial lock-up risk
//!   is acceptably small);
//! * [`pricing`] — a Cox-Ross-Rubinstein binomial option pricer used to
//!   estimate economically sensible premiums (§4).
//!
//! # Examples
//!
//! Reproducing Figure 3a of the paper and computing the leader's premium:
//!
//! ```
//! use swapgraph::{premiums, Digraph};
//!
//! // Vertices: 0 = Alice (leader), 1 = Bob, 2 = Carol.
//! let mut g = Digraph::new();
//! g.add_arc(0, 1); // (A, B)
//! g.add_arc(1, 0); // (B, A)
//! g.add_arc(1, 2); // (B, C)
//! g.add_arc(2, 0); // (C, A)
//! assert!(g.is_strongly_connected());
//!
//! // With unit base premium p = 1 the leader deposits 5p (2p on (B,A), 3p on (C,A)).
//! assert_eq!(premiums::leader_redemption_premium(&g, 0, 1), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bootstrap;
mod digraph;
pub mod premiums;
pub mod pricing;

pub use digraph::{Automorphism, Digraph, GraphError, Vertex};
