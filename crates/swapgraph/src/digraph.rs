//! The swap digraph and the graph algorithms the protocols rely on.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use thiserror::Error;

/// A swap-graph vertex. Protocol crates map these small integers onto party
/// identifiers.
pub type Vertex = u32;

/// A vertex relabeling: an arc-preserving permutation of a digraph's
/// vertices, stored as the map from each vertex to its image. Returned by
/// [`Digraph::automorphisms`]; vertices absent from the map are fixed.
pub type Automorphism = BTreeMap<Vertex, Vertex>;

/// Errors raised by digraph queries.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum GraphError {
    /// The digraph must be strongly connected for the requested operation.
    #[error("digraph is not strongly connected")]
    NotStronglyConnected,
    /// The provided leader set is not a feedback vertex set.
    #[error("leader set is not a feedback vertex set")]
    NotFeedbackVertexSet,
    /// The digraph has no vertices.
    #[error("digraph is empty")]
    Empty,
}

/// A directed graph of proposed asset transfers.
///
/// Each vertex is a party and each arc `(u, v)` is a transfer from `u` to
/// `v` (§7 of the paper). The structure is deliberately small and dense in
/// functionality rather than generic: swaps involve a handful of parties,
/// so all algorithms favour clarity over asymptotic cleverness.
///
/// # Examples
///
/// ```
/// use swapgraph::Digraph;
///
/// let g = Digraph::cycle(3);
/// assert!(g.is_strongly_connected());
/// assert_eq!(g.diameter().unwrap(), 2);
/// assert_eq!(g.arc_count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Digraph {
    vertices: BTreeSet<Vertex>,
    arcs: BTreeSet<(Vertex, Vertex)>,
}

impl Digraph {
    /// Creates an empty digraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the directed cycle `0 → 1 → ⋯ → n-1 → 0`.
    ///
    /// Cycles are the paper's "unique path between any two parties" case,
    /// where leader premiums are linear in `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn cycle(n: u32) -> Self {
        assert!(n >= 2, "a cycle needs at least two vertices");
        let mut g = Digraph::new();
        for i in 0..n {
            g.add_arc(i, (i + 1) % n);
        }
        g
    }

    /// Creates the complete digraph on `n` vertices (every ordered pair is
    /// an arc). This is the paper's worst case, where leader premiums grow
    /// exponentially in `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: u32) -> Self {
        assert!(n >= 2, "a complete digraph needs at least two vertices");
        let mut g = Digraph::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_arc(i, j);
                }
            }
        }
        g
    }

    /// Creates a random strongly-connected digraph on `n` vertices.
    ///
    /// The construction first lays a directed Hamiltonian cycle through a
    /// seeded random permutation of the vertices (guaranteeing strong
    /// connectivity), then sprinkles up to `extra_arcs` additional distinct
    /// arcs. Identical `(n, extra_arcs, seed)` triples always produce the
    /// identical digraph, so generated scenarios are reproducible across
    /// runs and across machines.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn random_strongly_connected(n: u32, extra_arcs: usize, seed: u64) -> Self {
        assert!(n >= 2, "a strongly connected digraph needs at least two vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<Vertex> = (0..n).collect();
        // Fisher-Yates over the vertex order.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        let mut g = Digraph::new();
        for (k, &u) in order.iter().enumerate() {
            g.add_arc(u, order[(k + 1) % order.len()]);
        }
        // Extra arcs; rejection-sampled with a bounded attempt budget so the
        // call terminates even when `extra_arcs` exceeds the free slots.
        let mut added = 0usize;
        let mut attempts = 0usize;
        let budget = extra_arcs.saturating_mul(20) + 64;
        while added < extra_arcs && attempts < budget {
            attempts += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !g.contains_arc(u, v) {
                g.add_arc(u, v);
                added += 1;
            }
        }
        g
    }

    /// The three-party digraph of Figure 3a: arcs (A,B), (B,A), (B,C), (C,A)
    /// with A = 0, B = 1, C = 2.
    pub fn figure3() -> Self {
        let mut g = Digraph::new();
        g.add_arc(0, 1);
        g.add_arc(1, 0);
        g.add_arc(1, 2);
        g.add_arc(2, 0);
        g
    }

    /// Adds a vertex without any arcs.
    pub fn add_vertex(&mut self, v: Vertex) {
        self.vertices.insert(v);
    }

    /// Adds the arc `(u, v)` (and both endpoints). Self-loops are ignored.
    pub fn add_arc(&mut self, u: Vertex, v: Vertex) {
        self.vertices.insert(u);
        self.vertices.insert(v);
        if u == v {
            return;
        }
        self.arcs.insert((u, v));
    }

    /// Returns `true` if `(u, v)` is an arc.
    pub fn contains_arc(&self, u: Vertex, v: Vertex) -> bool {
        self.arcs.contains(&(u, v))
    }

    /// All vertices in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.vertices.iter().copied()
    }

    /// All arcs in ascending order.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.arcs.iter().copied()
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Vertices `w` with an arc `v → w`.
    pub fn out_neighbors(&self, v: Vertex) -> Vec<Vertex> {
        self.arcs.iter().filter(|(u, _)| *u == v).map(|(_, w)| *w).collect()
    }

    /// Vertices `u` with an arc `u → v`.
    pub fn in_neighbors(&self, v: Vertex) -> Vec<Vertex> {
        self.arcs.iter().filter(|(_, w)| *w == v).map(|(u, _)| *u).collect()
    }

    /// Arcs leaving `v`.
    pub fn out_arcs(&self, v: Vertex) -> Vec<(Vertex, Vertex)> {
        self.arcs.iter().filter(|(u, _)| *u == v).copied().collect()
    }

    /// Arcs entering `v`.
    pub fn in_arcs(&self, v: Vertex) -> Vec<(Vertex, Vertex)> {
        self.arcs.iter().filter(|(_, w)| *w == v).copied().collect()
    }

    /// Returns `true` if every vertex can reach every other vertex.
    ///
    /// An empty or single-vertex digraph is vacuously strongly connected.
    pub fn is_strongly_connected(&self) -> bool {
        let Some(&start) = self.vertices.iter().next() else { return true };
        let forward = self.reachable_from(start, false);
        let backward = self.reachable_from(start, true);
        forward.len() == self.vertices.len() && backward.len() == self.vertices.len()
    }

    fn reachable_from(&self, start: Vertex, reverse: bool) -> BTreeSet<Vertex> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let next = if reverse { self.in_neighbors(v) } else { self.out_neighbors(v) };
            for w in next {
                if seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// Shortest-path distances (in arcs) from `start` to every reachable vertex.
    pub fn distances_from(&self, start: Vertex) -> BTreeMap<Vertex, u64> {
        let mut dist = BTreeMap::new();
        let mut queue = VecDeque::new();
        dist.insert(start, 0u64);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            for w in self.out_neighbors(v) {
                if let Entry::Vacant(entry) = dist.entry(w) {
                    entry.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The diameter of the digraph: the greatest shortest-path distance over
    /// all ordered vertex pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for an empty digraph and
    /// [`GraphError::NotStronglyConnected`] if some vertex cannot reach
    /// another (the diameter is then undefined).
    pub fn diameter(&self) -> Result<u64, GraphError> {
        if self.vertices.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut diameter = 0;
        for &v in &self.vertices {
            let dist = self.distances_from(v);
            if dist.len() != self.vertices.len() {
                return Err(GraphError::NotStronglyConnected);
            }
            diameter = diameter.max(dist.values().copied().max().unwrap_or(0));
        }
        Ok(diameter)
    }

    /// Returns `true` if removing `set` leaves the digraph acyclic, i.e.
    /// `set` is a feedback vertex set.
    pub fn is_feedback_vertex_set(&self, set: &BTreeSet<Vertex>) -> bool {
        // Kahn's algorithm on the digraph restricted to vertices outside `set`.
        let remaining: Vec<Vertex> =
            self.vertices.iter().copied().filter(|v| !set.contains(v)).collect();
        let mut indegree: BTreeMap<Vertex, usize> = remaining.iter().map(|&v| (v, 0)).collect();
        for &(u, v) in &self.arcs {
            if !set.contains(&u) && !set.contains(&v) {
                *indegree.get_mut(&v).expect("vertex present") += 1;
            }
        }
        let mut queue: VecDeque<Vertex> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(&v, _)| v).collect();
        let mut removed = 0usize;
        while let Some(v) = queue.pop_front() {
            removed += 1;
            for w in self.out_neighbors(v) {
                if set.contains(&w) || set.contains(&v) {
                    continue;
                }
                let d = indegree.get_mut(&w).expect("vertex present");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(w);
                }
            }
        }
        removed == remaining.len()
    }

    /// Computes a (not necessarily minimum) feedback vertex set greedily:
    /// repeatedly add the vertex with the largest total degree among the
    /// vertices still involved in a cycle.
    ///
    /// The result is suitable as the leader set of the multi-party swap
    /// protocol (§7), which only requires *some* feedback vertex set.
    pub fn greedy_feedback_vertex_set(&self) -> BTreeSet<Vertex> {
        let mut set = BTreeSet::new();
        while !self.is_feedback_vertex_set(&set) {
            let candidate = self
                .vertices
                .iter()
                .copied()
                .filter(|v| !set.contains(v))
                .max_by_key(|&v| self.out_neighbors(v).len() + self.in_neighbors(v).len())
                .expect("non-empty digraph with a cycle has a candidate");
            set.insert(candidate);
        }
        set
    }

    /// Enumerates every simple path from `from` to `to` that follows arc
    /// directions, each returned as the vertex sequence `from, …, to`.
    ///
    /// Hashkey paths (§7) are exactly these: a hashkey presented on arc
    /// `(u, v)` carries a simple path from `v` to the leader.
    pub fn simple_paths(&self, from: Vertex, to: Vertex) -> Vec<Vec<Vertex>> {
        let mut paths = Vec::new();
        let mut current = vec![from];
        let mut on_path: BTreeSet<Vertex> = BTreeSet::from([from]);
        self.simple_paths_rec(from, to, &mut current, &mut on_path, &mut paths);
        paths.sort();
        paths
    }

    /// Returns `true` iff `path` is a simple directed path of this digraph
    /// from `from` to `to`.
    ///
    /// Equivalent to `self.simple_paths(from, to).contains(&path.to_vec())`
    /// but `O(path)` instead of enumerating every simple path — contract
    /// validation calls this on every premium deposit of a sweep.
    pub fn is_simple_path(&self, from: Vertex, to: Vertex, path: &[Vertex]) -> bool {
        if path.first() != Some(&from) || path.last() != Some(&to) {
            return false;
        }
        let mut seen: BTreeSet<Vertex> = BTreeSet::new();
        for &v in path {
            if !self.vertices.contains(&v) || !seen.insert(v) {
                return false;
            }
        }
        path.windows(2).all(|pair| self.arcs.contains(&(pair[0], pair[1])))
    }

    fn simple_paths_rec(
        &self,
        at: Vertex,
        to: Vertex,
        current: &mut Vec<Vertex>,
        on_path: &mut BTreeSet<Vertex>,
        paths: &mut Vec<Vec<Vertex>>,
    ) {
        if at == to {
            paths.push(current.clone());
            return;
        }
        for w in self.out_neighbors(at) {
            if on_path.contains(&w) {
                continue;
            }
            current.push(w);
            on_path.insert(w);
            self.simple_paths_rec(w, to, current, on_path, paths);
            current.pop();
            on_path.remove(&w);
        }
    }

    /// The automorphism group of the digraph: every vertex permutation `π`
    /// with `(u, v)` an arc iff `(π(u), π(v))` is an arc.
    ///
    /// Directed cycles and complete digraphs take closed-form paths (the
    /// `n` rotations along the cycle and all `n!` permutations
    /// respectively); other digraphs run a degree-signature-refined
    /// backtracking search. Swap digraphs have a handful of vertices, so
    /// the search is never asked to scale.
    ///
    /// The group is returned in a deterministic order (sorted by the
    /// permutation's image sequence), always contains the identity, and is
    /// closed under composition and inverse (pinned by property tests).
    ///
    /// # Examples
    ///
    /// ```
    /// use swapgraph::Digraph;
    ///
    /// assert_eq!(Digraph::cycle(5).automorphisms().len(), 5);
    /// assert_eq!(Digraph::complete(4).automorphisms().len(), 24);
    /// assert_eq!(Digraph::figure3().automorphisms().len(), 1);
    /// ```
    pub fn automorphisms(&self) -> Vec<Automorphism> {
        self.automorphisms_stabilizing(&BTreeSet::new())
    }

    /// The subgroup of [`Digraph::automorphisms`] whose elements map
    /// `stabilize` onto itself (the setwise stabilizer).
    ///
    /// This is the symmetry group of a *swap configuration*: relabeling
    /// parties by an arc-preserving permutation that also preserves the
    /// leader set leaves every premium table, endowment and deadline
    /// schedule invariant, so protocol runs commute with the relabeling.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::collections::BTreeSet;
    /// use swapgraph::Digraph;
    ///
    /// // Pinning one cycle vertex kills every nontrivial rotation...
    /// let rotations = Digraph::cycle(5).automorphisms_stabilizing(&BTreeSet::from([0]));
    /// assert_eq!(rotations.len(), 1);
    /// // ...while a clique keeps the permutations of each side of the split.
    /// let split = Digraph::complete(4).automorphisms_stabilizing(&BTreeSet::from([0, 1, 2]));
    /// assert_eq!(split.len(), 6, "3! relabelings of the stabilized set, vertex 3 pinned");
    /// ```
    pub fn automorphisms_stabilizing(&self, stabilize: &BTreeSet<Vertex>) -> Vec<Automorphism> {
        let verts: Vec<Vertex> = self.vertices.iter().copied().collect();
        let n = verts.len();
        if n == 0 {
            return vec![Automorphism::default()];
        }
        let mut group = if self.is_directed_cycle() {
            self.cycle_rotations()
        } else if self.arc_count() == n * (n - 1) {
            // Complete digraph: every permutation preserves arcs.
            let mut perms = Vec::new();
            let mut image = verts.clone();
            permutations(&mut image, 0, &mut |image| {
                perms.push(verts.iter().copied().zip(image.iter().copied()).collect());
            });
            perms
        } else {
            self.automorphism_search()
        };
        group.retain(|perm: &Automorphism| {
            stabilize.iter().all(|v| match perm.get(v) {
                Some(image) => stabilize.contains(image),
                // Vertices outside the digraph are fixed by convention.
                None => stabilize.contains(v),
            })
        });
        group.sort_by(|a, b| a.values().cmp(b.values()));
        group
    }

    /// `true` iff the digraph is a single directed cycle: strongly
    /// connected with every vertex of in- and out-degree one.
    fn is_directed_cycle(&self) -> bool {
        self.vertex_count() >= 2
            && self.arc_count() == self.vertex_count()
            && self.vertices().all(|v| self.out_neighbors(v).len() == 1)
            && self.is_strongly_connected()
    }

    /// The `n` rotations of a directed cycle, in closed form: walk the
    /// cycle once and map it onto itself shifted by every offset.
    fn cycle_rotations(&self) -> Vec<Automorphism> {
        let start = *self.vertices.iter().next().expect("cycle is non-empty");
        let mut order = vec![start];
        let mut at = start;
        loop {
            let next = self.out_neighbors(at)[0];
            if next == start {
                break;
            }
            order.push(next);
            at = next;
        }
        (0..order.len())
            .map(|shift| {
                (0..order.len()).map(|k| (order[k], order[(k + shift) % order.len()])).collect()
            })
            .collect()
    }

    /// Backtracking automorphism search, refined by degree signatures: a
    /// vertex may only map to a vertex with the same in- and out-degree,
    /// and every assignment is checked for arc consistency against the
    /// vertices already assigned.
    fn automorphism_search(&self) -> Vec<Automorphism> {
        let verts: Vec<Vertex> = self.vertices.iter().copied().collect();
        let signature = |v: Vertex| (self.in_neighbors(v).len(), self.out_neighbors(v).len());
        let signatures: BTreeMap<Vertex, (usize, usize)> =
            verts.iter().map(|&v| (v, signature(v))).collect();
        let mut found = Vec::new();
        let mut assignment: BTreeMap<Vertex, Vertex> = BTreeMap::new();
        let mut used: BTreeSet<Vertex> = BTreeSet::new();
        self.search_rec(&verts, &signatures, 0, &mut assignment, &mut used, &mut found);
        found
    }

    fn search_rec(
        &self,
        verts: &[Vertex],
        signatures: &BTreeMap<Vertex, (usize, usize)>,
        depth: usize,
        assignment: &mut BTreeMap<Vertex, Vertex>,
        used: &mut BTreeSet<Vertex>,
        found: &mut Vec<Automorphism>,
    ) {
        if depth == verts.len() {
            found.push(assignment.clone());
            return;
        }
        let v = verts[depth];
        for &candidate in verts {
            if used.contains(&candidate) || signatures[&v] != signatures[&candidate] {
                continue;
            }
            // Arc consistency against everything assigned so far.
            let consistent = assignment.iter().all(|(&u, &iu)| {
                self.contains_arc(u, v) == self.contains_arc(iu, candidate)
                    && self.contains_arc(v, u) == self.contains_arc(candidate, iu)
            });
            if !consistent {
                continue;
            }
            assignment.insert(v, candidate);
            used.insert(candidate);
            self.search_rec(verts, signatures, depth + 1, assignment, used, found);
            assignment.remove(&v);
            used.remove(&candidate);
        }
    }

    /// Validates that `leaders` is a suitable leader set: non-empty and a
    /// feedback vertex set of a strongly connected digraph.
    ///
    /// # Errors
    ///
    /// Returns the specific [`GraphError`] describing which requirement
    /// fails.
    pub fn validate_leaders(&self, leaders: &BTreeSet<Vertex>) -> Result<(), GraphError> {
        if self.vertices.is_empty() {
            return Err(GraphError::Empty);
        }
        if !self.is_strongly_connected() {
            return Err(GraphError::NotStronglyConnected);
        }
        if leaders.is_empty() || !self.is_feedback_vertex_set(leaders) {
            return Err(GraphError::NotFeedbackVertexSet);
        }
        Ok(())
    }
}

/// Visits every permutation of `items[at..]` in place (Heap-style swap
/// recursion); `visit` sees the full `items` slice for each arrangement.
fn permutations(items: &mut Vec<Vertex>, at: usize, visit: &mut impl FnMut(&[Vertex])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for k in at..items.len() {
        items.swap(at, k);
        permutations(items, at + 1, visit);
        items.swap(at, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: every permutation of the vertex set checked
    /// for arc preservation directly.
    fn brute_force_automorphisms(g: &Digraph) -> Vec<Automorphism> {
        let verts: Vec<Vertex> = g.vertices().collect();
        let mut found = Vec::new();
        let mut image = verts.clone();
        permutations(&mut image, 0, &mut |image| {
            let perm: Automorphism = verts.iter().copied().zip(image.iter().copied()).collect();
            let preserves = verts.iter().all(|&u| {
                verts.iter().all(|&v| g.contains_arc(u, v) == g.contains_arc(perm[&u], perm[&v]))
            });
            if preserves {
                found.push(perm);
            }
        });
        found.sort_by(|a, b| a.values().cmp(b.values()));
        found
    }

    #[test]
    fn automorphisms_match_brute_force_on_small_graphs() {
        let graphs = [
            Digraph::figure3(),
            Digraph::cycle(3),
            Digraph::cycle(5),
            Digraph::complete(3),
            Digraph::complete(4),
            Digraph::random_strongly_connected(4, 3, 7),
            Digraph::random_strongly_connected(5, 4, 2),
            Digraph::random_strongly_connected(5, 4, 4),
        ];
        for g in graphs {
            assert_eq!(g.automorphisms(), brute_force_automorphisms(&g), "{g:?}");
        }
    }

    #[test]
    fn automorphism_group_orders_match_the_closed_forms() {
        for n in 2..=7u32 {
            assert_eq!(Digraph::cycle(n).automorphisms().len(), n as usize, "cycle rotations");
        }
        let mut factorial = 1usize;
        for n in 2..=5u32 {
            factorial *= n as usize;
            assert_eq!(Digraph::complete(n).automorphisms().len(), factorial, "clique S_n");
        }
    }

    #[test]
    fn stabilizer_subgroups() {
        // Any single pinned vertex reduces a cycle to the identity.
        let pinned = Digraph::cycle(6).automorphisms_stabilizing(&BTreeSet::from([0]));
        assert_eq!(pinned.len(), 1);
        assert!(pinned[0].iter().all(|(v, image)| v == image), "identity");
        // A clique's leader set (all but one vertex) keeps (n-1)!.
        let split = Digraph::complete(5).automorphisms_stabilizing(&BTreeSet::from([0, 1, 2, 3]));
        assert_eq!(split.len(), 24);
        assert!(split.iter().all(|p| p[&4] == 4), "the non-leader is pinned");
        // Stabilizing the whole vertex set is no constraint at all.
        let all: BTreeSet<Vertex> = Digraph::cycle(4).vertices().collect();
        assert_eq!(Digraph::cycle(4).automorphisms_stabilizing(&all).len(), 4);
    }

    #[test]
    fn chorded_cycle_breaks_rotational_symmetry() {
        // A chord turns the cycle's fast path off and exercises the
        // backtracking search: only rotations mapping the chord onto
        // itself survive.
        let mut g = Digraph::cycle(6);
        g.add_arc(0, 3);
        let group = g.automorphisms();
        assert_eq!(group, brute_force_automorphisms(&g));
        for perm in &group {
            assert!(g.contains_arc(perm[&0], perm[&3]), "chord must map onto a chord");
        }
    }

    #[test]
    fn figure3_shape() {
        let g = Digraph::figure3();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.arc_count(), 4);
        assert!(g.contains_arc(1, 2));
        assert!(!g.contains_arc(2, 1));
        assert!(g.is_strongly_connected());
        assert_eq!(g.diameter().unwrap(), 2);
        assert_eq!(g.out_neighbors(1), vec![0, 2]);
        assert_eq!(g.in_neighbors(0), vec![1, 2]);
        assert_eq!(g.in_arcs(0), vec![(1, 0), (2, 0)]);
        assert_eq!(g.out_arcs(1), vec![(1, 0), (1, 2)]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Digraph::new();
        g.add_arc(1, 1);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn cycle_and_complete_constructors() {
        let c = Digraph::cycle(4);
        assert_eq!(c.arc_count(), 4);
        assert_eq!(c.diameter().unwrap(), 3);
        let k = Digraph::complete(4);
        assert_eq!(k.arc_count(), 12);
        assert_eq!(k.diameter().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn cycle_rejects_tiny_n() {
        let _ = Digraph::cycle(1);
    }

    #[test]
    fn strong_connectivity_detects_missing_return_path() {
        let mut g = Digraph::new();
        g.add_arc(0, 1);
        g.add_arc(1, 2);
        assert!(!g.is_strongly_connected());
        assert_eq!(g.diameter(), Err(GraphError::NotStronglyConnected));
        g.add_arc(2, 0);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Digraph::new();
        assert!(g.is_strongly_connected());
        assert_eq!(g.diameter(), Err(GraphError::Empty));
        assert_eq!(g.validate_leaders(&BTreeSet::from([0])), Err(GraphError::Empty));
    }

    #[test]
    fn feedback_vertex_sets() {
        let g = Digraph::figure3();
        // Alice alone breaks every cycle: cycles are A-B and A-B-C... actually
        // cycles are (A,B,A) and (B,C,A,B); both contain A and B.
        assert!(g.is_feedback_vertex_set(&BTreeSet::from([0])));
        assert!(g.is_feedback_vertex_set(&BTreeSet::from([1])));
        assert!(!g.is_feedback_vertex_set(&BTreeSet::new()));
        // Carol alone does not break the A-B cycle.
        assert!(!g.is_feedback_vertex_set(&BTreeSet::from([2])));
        let greedy = g.greedy_feedback_vertex_set();
        assert!(g.is_feedback_vertex_set(&greedy));
        assert!(!greedy.is_empty());
    }

    #[test]
    fn complete_graph_needs_all_but_one_leader() {
        let g = Digraph::complete(4);
        let fvs = g.greedy_feedback_vertex_set();
        assert!(g.is_feedback_vertex_set(&fvs));
        assert_eq!(fvs.len(), 3, "complete digraph on n vertices needs n-1 leaders");
    }

    #[test]
    fn simple_paths_match_figure3b() {
        let g = Digraph::figure3();
        // Paths used by hashkeys for k_A: from each arc's receiver to A.
        assert_eq!(g.simple_paths(0, 0), vec![vec![0]]); // arcs entering A: path (A)
        assert_eq!(g.simple_paths(2, 0), vec![vec![2, 0]]); // arc (B,C): path (C,A)
        assert_eq!(
            g.simple_paths(1, 0),
            vec![vec![1, 0], vec![1, 2, 0]] // arc (A,B): paths (B,A) and (B,C,A)
        );
    }

    #[test]
    fn is_simple_path_agrees_with_enumeration() {
        for g in [Digraph::figure3(), Digraph::complete(4), Digraph::cycle(5)] {
            for from in g.vertices() {
                for to in g.vertices() {
                    let enumerated = g.simple_paths(from, to);
                    for path in &enumerated {
                        assert!(g.is_simple_path(from, to, path), "{from}->{to} {path:?}");
                    }
                    // Non-paths are rejected.
                    assert!(!g.is_simple_path(from, to, &[]));
                    assert!(!g.is_simple_path(from, to, &[from, from, to]));
                    assert!(!g.is_simple_path(from, to, &[from, 99, to]));
                }
            }
        }
    }

    #[test]
    fn simple_paths_with_no_route() {
        let mut g = Digraph::new();
        g.add_arc(0, 1);
        g.add_vertex(2);
        assert!(g.simple_paths(1, 2).is_empty());
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn validate_leaders_checks_everything() {
        let g = Digraph::figure3();
        assert!(g.validate_leaders(&BTreeSet::from([0])).is_ok());
        assert_eq!(g.validate_leaders(&BTreeSet::from([2])), Err(GraphError::NotFeedbackVertexSet));
        assert_eq!(g.validate_leaders(&BTreeSet::new()), Err(GraphError::NotFeedbackVertexSet));
        let mut disconnected = Digraph::new();
        disconnected.add_arc(0, 1);
        assert_eq!(
            disconnected.validate_leaders(&BTreeSet::from([0])),
            Err(GraphError::NotStronglyConnected)
        );
    }

    #[test]
    fn random_digraphs_are_strongly_connected_and_deterministic() {
        for n in 2..=7u32 {
            for seed in 0..8u64 {
                let extra = (seed as usize) % 5;
                let g = Digraph::random_strongly_connected(n, extra, seed);
                assert!(g.is_strongly_connected(), "n={n}, seed={seed}");
                assert_eq!(g.vertex_count(), n as usize);
                assert!(g.arc_count() >= n as usize, "the Hamiltonian cycle is present");
                assert!(g.arc_count() <= n as usize + extra);
                // Reproducible: the same parameters give the same digraph.
                assert_eq!(g, Digraph::random_strongly_connected(n, extra, seed));
                // The greedy feedback vertex set is always usable as leaders.
                let leaders = g.greedy_feedback_vertex_set();
                assert!(g.validate_leaders(&leaders).is_ok());
            }
        }
    }

    #[test]
    fn random_digraph_extra_arc_budget_saturates() {
        // Asking for more extra arcs than free slots must still terminate.
        let g = Digraph::random_strongly_connected(3, 100, 42);
        assert!(g.arc_count() <= 6, "n(n-1) is the arc capacity");
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn distances_from_are_shortest() {
        let g = Digraph::figure3();
        let d = g.distances_from(0);
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&2], 2);
    }
}
