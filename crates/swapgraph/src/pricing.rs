//! Cox-Ross-Rubinstein premium estimation (§4 of the paper).
//!
//! The paper notes that premiums "can be estimated using formulas such as
//! the Cox-Ross-Rubinstein option pricing model": by walking away from a
//! swap a party is effectively exercising an option, so the fair
//! compensation for the counterparty's lock-up is the value of that option
//! over the lock-up period. This module provides a standard CRR binomial
//! pricer plus a convenience wrapper that turns a lock-up duration and an
//! asset volatility into a premium.

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// The kind of option being priced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptionKind {
    /// The right to buy at the strike.
    Call,
    /// The right to sell at the strike.
    Put,
}

/// The exercise style of the option.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExerciseStyle {
    /// Exercisable only at expiry.
    European,
    /// Exercisable at any step, which is the style that models "walk away
    /// whenever it becomes profitable" (the paper calls the counterparty's
    /// position an American call option).
    American,
}

/// Parameters of a Cox-Ross-Rubinstein binomial pricing run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrrParams {
    /// Current price of the underlying asset.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Continuously compounded risk-free rate per year.
    pub rate: f64,
    /// Annualised volatility (standard deviation of log returns).
    pub volatility: f64,
    /// Time to expiry in years (the lock-up duration).
    pub expiry: f64,
    /// Number of binomial steps.
    pub steps: u32,
    /// Call or put.
    pub kind: OptionKind,
    /// European or American exercise.
    pub style: ExerciseStyle,
}

/// Errors from the CRR pricer.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum PricingError {
    /// A parameter was non-finite, negative or otherwise out of range.
    #[error("invalid pricing parameter: {reason}")]
    InvalidParameter {
        /// Which constraint was violated.
        reason: String,
    },
}

impl CrrParams {
    fn validate(&self) -> Result<(), PricingError> {
        let check = |ok: bool, reason: &str| {
            if ok {
                Ok(())
            } else {
                Err(PricingError::InvalidParameter { reason: reason.to_owned() })
            }
        };
        check(self.spot.is_finite() && self.spot > 0.0, "spot must be positive")?;
        check(self.strike.is_finite() && self.strike > 0.0, "strike must be positive")?;
        check(self.rate.is_finite(), "rate must be finite")?;
        check(self.volatility.is_finite() && self.volatility > 0.0, "volatility must be positive")?;
        check(self.expiry.is_finite() && self.expiry > 0.0, "expiry must be positive")?;
        check(self.steps >= 1, "at least one binomial step is required")?;
        Ok(())
    }
}

/// Prices an option with the Cox-Ross-Rubinstein binomial lattice.
///
/// # Errors
///
/// Returns [`PricingError::InvalidParameter`] if any parameter is out of
/// range (non-positive spot/strike/volatility/expiry, zero steps).
///
/// # Examples
///
/// ```
/// use swapgraph::pricing::{crr_price, CrrParams, ExerciseStyle, OptionKind};
///
/// let price = crr_price(&CrrParams {
///     spot: 100.0,
///     strike: 100.0,
///     rate: 0.01,
///     volatility: 0.5,
///     expiry: 48.0 / (24.0 * 365.0), // a 48-hour lock-up
///     steps: 64,
///     kind: OptionKind::Call,
///     style: ExerciseStyle::American,
/// })?;
/// assert!(price > 0.0 && price < 10.0);
/// # Ok::<(), swapgraph::pricing::PricingError>(())
/// ```
pub fn crr_price(params: &CrrParams) -> Result<f64, PricingError> {
    params.validate()?;
    let n = params.steps as usize;
    let dt = params.expiry / params.steps as f64;
    let up = (params.volatility * dt.sqrt()).exp();
    let down = 1.0 / up;
    let growth = (params.rate * dt).exp();
    let q = (growth - down) / (up - down);
    // With extreme parameters q can leave [0, 1]; clamp to keep the lattice
    // a valid probability measure (standard practical fix).
    let q = q.clamp(0.0, 1.0);
    let discount = (-params.rate * dt).exp();

    let intrinsic = |spot: f64| -> f64 {
        match params.kind {
            OptionKind::Call => (spot - params.strike).max(0.0),
            OptionKind::Put => (params.strike - spot).max(0.0),
        }
    };

    // Terminal payoffs.
    let mut values: Vec<f64> = (0..=n)
        .map(|j| {
            let spot = params.spot * up.powi(j as i32) * down.powi((n - j) as i32);
            intrinsic(spot)
        })
        .collect();

    // Backward induction.
    for step in (0..n).rev() {
        for j in 0..=step {
            let continuation = discount * (q * values[j + 1] + (1.0 - q) * values[j]);
            let value = match params.style {
                ExerciseStyle::European => continuation,
                ExerciseStyle::American => {
                    let spot = params.spot * up.powi(j as i32) * down.powi((step - j) as i32);
                    continuation.max(intrinsic(spot))
                }
            };
            values[j] = value;
        }
    }
    Ok(values[0])
}

/// Estimates a fair premium for locking up an asset worth `asset_value` for
/// `lockup_blocks` blocks, assuming `blocks_per_year` blocks per year and
/// the given annualised `volatility`.
///
/// The premium is the value of an at-the-money American call over the
/// lock-up window — the option the counterparty effectively holds while the
/// asset is escrowed.
///
/// # Errors
///
/// Propagates [`PricingError`] for out-of-range parameters.
pub fn lockup_premium(
    asset_value: f64,
    volatility: f64,
    lockup_blocks: u64,
    blocks_per_year: u64,
) -> Result<f64, PricingError> {
    if blocks_per_year == 0 {
        return Err(PricingError::InvalidParameter {
            reason: "blocks_per_year must be positive".to_owned(),
        });
    }
    let expiry = lockup_blocks as f64 / blocks_per_year as f64;
    crr_price(&CrrParams {
        spot: asset_value,
        strike: asset_value,
        rate: 0.0,
        volatility,
        expiry: expiry.max(f64::EPSILON),
        steps: 128,
        kind: OptionKind::Call,
        style: ExerciseStyle::American,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_params() -> CrrParams {
        CrrParams {
            spot: 100.0,
            strike: 100.0,
            rate: 0.02,
            volatility: 0.4,
            expiry: 0.25,
            steps: 200,
            kind: OptionKind::Call,
            style: ExerciseStyle::European,
        }
    }

    #[test]
    fn european_call_matches_black_scholes_ballpark() {
        // Black-Scholes value for these parameters is ≈ 8.21.
        let price = crr_price(&base_params()).unwrap();
        assert!((price - 8.21).abs() < 0.15, "got {price}");
    }

    #[test]
    fn put_call_parity_holds_for_european_options() {
        let call = crr_price(&base_params()).unwrap();
        let put = crr_price(&CrrParams { kind: OptionKind::Put, ..base_params() }).unwrap();
        let p = base_params();
        let parity = call - put - (p.spot - p.strike * (-p.rate * p.expiry).exp());
        assert!(parity.abs() < 1e-6, "put-call parity violated by {parity}");
    }

    #[test]
    fn american_options_are_worth_at_least_european() {
        for kind in [OptionKind::Call, OptionKind::Put] {
            let eu = crr_price(&CrrParams { kind, ..base_params() }).unwrap();
            let am =
                crr_price(&CrrParams { kind, style: ExerciseStyle::American, ..base_params() })
                    .unwrap();
            assert!(am >= eu - 1e-9, "american {am} < european {eu}");
        }
    }

    #[test]
    fn american_put_carries_early_exercise_premium() {
        let params = CrrParams { kind: OptionKind::Put, rate: 0.10, expiry: 1.0, ..base_params() };
        let eu = crr_price(&params).unwrap();
        let am = crr_price(&CrrParams { style: ExerciseStyle::American, ..params }).unwrap();
        assert!(am > eu + 1e-3, "deep discounting should make early exercise valuable");
    }

    #[test]
    fn price_increases_with_volatility_and_expiry() {
        let low = crr_price(&CrrParams { volatility: 0.2, ..base_params() }).unwrap();
        let high = crr_price(&CrrParams { volatility: 0.8, ..base_params() }).unwrap();
        assert!(high > low);
        let short = crr_price(&CrrParams { expiry: 0.05, ..base_params() }).unwrap();
        let long = crr_price(&CrrParams { expiry: 1.0, ..base_params() }).unwrap();
        assert!(long > short);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        for params in [
            CrrParams { spot: -1.0, ..base_params() },
            CrrParams { strike: 0.0, ..base_params() },
            CrrParams { volatility: 0.0, ..base_params() },
            CrrParams { expiry: 0.0, ..base_params() },
            CrrParams { steps: 0, ..base_params() },
            CrrParams { rate: f64::NAN, ..base_params() },
        ] {
            assert!(crr_price(&params).is_err(), "{params:?} should be rejected");
        }
    }

    #[test]
    fn lockup_premium_is_small_fraction_of_value() {
        // A 48-hour lock-up (Δ = 12 hours, 4Δ) of a 100-unit asset at 50%
        // annualised volatility costs on the order of 1 unit — the "premium
        // ≪ principal" regime the paper relies on.
        let premium = lockup_premium(100.0, 0.5, 48, 24 * 365).unwrap();
        assert!(premium > 0.1 && premium < 5.0, "got {premium}");
    }

    #[test]
    fn lockup_premium_scales_with_duration() {
        let short = lockup_premium(100.0, 0.5, 12, 24 * 365).unwrap();
        let long = lockup_premium(100.0, 0.5, 96, 24 * 365).unwrap();
        assert!(long > short);
    }

    #[test]
    fn lockup_premium_rejects_zero_blocks_per_year() {
        assert!(lockup_premium(100.0, 0.5, 48, 0).is_err());
    }
}
