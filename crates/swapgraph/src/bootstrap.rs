//! Premium bootstrapping arithmetic (§6 of the paper).
//!
//! When the asset being escrowed is valuable, the premium a party would
//! demand as lock-up compensation may exceed what the counterparty is
//! willing to put at risk. §6 resolves the mismatch by *bootstrapping*:
//! running extra rounds of (hedged) premium deposits in which smaller
//! premiums protect the distribution of larger premiums. With premium ratio
//! `P > 1` per round, `r` rounds shrink the unprotected initial risk by a
//! factor of `P^r`.

use serde::{Deserialize, Serialize};

/// The deposits made in one bootstrapping level.
///
/// Level `0` holds the principals themselves (value `A` for Alice, `B` for
/// Bob); level `k ≥ 1` holds the premiums protecting the level `k-1`
/// deposits. At each level one party deposits the "large" premium
/// `(kA + B) / P^k` and the other the "small" premium `A / P^k`; the roles
/// alternate because the leader of each premium round is the party that
/// wants the *other* side's next deposit protected (see Figure 2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootstrapLevel {
    /// The level index (`0` = principals, `1..=rounds` = premiums).
    pub level: u32,
    /// Alice's deposit at this level, in value units.
    pub alice_deposit: u128,
    /// Bob's deposit at this level, in value units.
    pub bob_deposit: u128,
}

/// A complete bootstrapping plan for a two-party swap.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootstrapPlan {
    /// Value of Alice's principal (`A`).
    pub alice_principal: u128,
    /// Value of Bob's principal (`B`).
    pub bob_principal: u128,
    /// The per-round premium ratio `P`.
    pub ratio: u128,
    /// Deposits per level, from principals (level 0) up to the first-round
    /// premiums (level `rounds`).
    pub levels: Vec<BootstrapLevel>,
}

impl BootstrapPlan {
    /// The number of premium rounds in the plan.
    pub fn rounds(&self) -> u32 {
        (self.levels.len() as u32).saturating_sub(1)
    }

    /// The initial, unprotected lock-up risk: the largest deposit made in
    /// the outermost round (the first deposit of the whole protocol).
    pub fn initial_risk(&self) -> u128 {
        self.levels.last().map(|l| l.alice_deposit.max(l.bob_deposit)).unwrap_or(0)
    }

    /// Total value Alice has locked up across all levels simultaneously in
    /// the worst case (principals plus every premium level).
    pub fn alice_total_exposure(&self) -> u128 {
        self.levels.iter().map(|l| l.alice_deposit).sum()
    }

    /// Total value Bob has locked up across all levels simultaneously in the
    /// worst case.
    pub fn bob_total_exposure(&self) -> u128 {
        self.levels.iter().map(|l| l.bob_deposit).sum()
    }
}

/// Returns the number of bootstrapping rounds needed so that the initial
/// lock-up risk is at most `acceptable_risk`, when hedging a swap of total
/// value `total_value = A + B` with per-round premium ratio `ratio = P`.
///
/// This is `⌈log_P(total_value / acceptable_risk)⌉`, computed with integer
/// arithmetic. Zero rounds are needed when the total value is already within
/// the acceptable risk.
///
/// # Panics
///
/// Panics if `ratio < 2` or `acceptable_risk == 0`.
///
/// # Examples
///
/// The paper's headline example: with 1% premiums (`P = 100`) and a $4
/// initial lock-up risk, 3 rounds suffice to hedge a $1,000,000 swap.
///
/// ```
/// assert_eq!(swapgraph::bootstrap::rounds_needed(1_000_000, 4, 100), 3);
/// ```
pub fn rounds_needed(total_value: u128, acceptable_risk: u128, ratio: u128) -> u32 {
    assert!(ratio >= 2, "premium ratio P must be at least 2");
    assert!(acceptable_risk > 0, "acceptable risk must be positive");
    let mut rounds = 0u32;
    let mut covered = acceptable_risk;
    while covered < total_value {
        covered = covered.saturating_mul(ratio);
        rounds += 1;
    }
    rounds
}

/// Builds the full bootstrapping deposit plan for a swap of `A` against `B`
/// with premium ratio `P` and `rounds` premium rounds.
///
/// Per §6, with `r` rounds the first-mover's initial premium is
/// `(rA + B) / P^r` and the counterparty's is `A / P^r`; inner level `k`
/// holds `(kA + B) / P^k` and `A / P^k`. Which of Alice and Bob posts the
/// large deposit alternates per level: at level 1 Alice posts the large
/// premium `(A + B)/P` (she is the swap leader), at level 2 Bob does, and so
/// on.
///
/// # Panics
///
/// Panics if `ratio < 2`.
pub fn bootstrap_plan(
    alice_principal: u128,
    bob_principal: u128,
    ratio: u128,
    rounds: u32,
) -> BootstrapPlan {
    assert!(ratio >= 2, "premium ratio P must be at least 2");
    let mut levels = vec![BootstrapLevel {
        level: 0,
        alice_deposit: alice_principal,
        bob_deposit: bob_principal,
    }];
    let mut divisor: u128 = 1;
    for k in 1..=rounds {
        divisor = divisor.saturating_mul(ratio);
        let large = (u128::from(k) * alice_principal + bob_principal) / divisor;
        let small = alice_principal / divisor;
        // Odd levels: Alice posts the large premium (she leads the swap
        // itself); even levels: Bob posts the large premium (he leads the
        // previous premium round, per Figure 2).
        let (alice_deposit, bob_deposit) = if k % 2 == 1 { (large, small) } else { (small, large) };
        levels.push(BootstrapLevel { level: k, alice_deposit, bob_deposit });
    }
    BootstrapPlan { alice_principal, bob_principal, ratio, levels }
}

/// The lock-up risk duration in Δ-steps for a bootstrapped swap.
///
/// §6 observes that the *duration* of premium lock-up risk is one atomic
/// swap execution plus Δ, independent of the number of bootstrapping
/// rounds; only the total protocol length grows with `rounds`. This helper
/// returns `(risk_duration_steps, total_protocol_steps)` for a swap whose
/// un-bootstrapped hedged execution takes `base_steps` Δ-steps.
pub fn lockup_durations(base_steps: u64, rounds: u32) -> (u64, u64) {
    let risk_duration = base_steps + 1;
    // Each bootstrapping round adds one premium-deposit exchange (2 steps).
    let total = base_steps + 2 * u64::from(rounds);
    (risk_duration, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_three_rounds_hedge_a_million() {
        assert_eq!(rounds_needed(1_000_000, 4, 100), 3);
    }

    #[test]
    fn rounds_needed_basics() {
        // Already acceptable: zero rounds.
        assert_eq!(rounds_needed(100, 100, 10), 0);
        assert_eq!(rounds_needed(50, 100, 10), 0);
        // One round divides the exposure by P.
        assert_eq!(rounds_needed(1_000, 100, 10), 1);
        assert_eq!(rounds_needed(1_001, 100, 10), 2);
        // Monotone in the total value.
        assert!(rounds_needed(10_000_000, 4, 100) >= rounds_needed(1_000_000, 4, 100));
    }

    #[test]
    #[should_panic(expected = "ratio P must be at least 2")]
    fn rounds_needed_rejects_ratio_one() {
        let _ = rounds_needed(100, 1, 1);
    }

    #[test]
    #[should_panic(expected = "acceptable risk must be positive")]
    fn rounds_needed_rejects_zero_risk() {
        let _ = rounds_needed(100, 0, 10);
    }

    #[test]
    fn plan_levels_match_section_6_formulas() {
        // A = B = 500_000, P = 100, 3 rounds.
        let plan = bootstrap_plan(500_000, 500_000, 100, 3);
        assert_eq!(plan.rounds(), 3);
        assert_eq!(plan.levels[0].alice_deposit, 500_000);
        assert_eq!(plan.levels[0].bob_deposit, 500_000);
        // Level 1: (A + B)/P = 10_000 (Alice), A/P = 5_000 (Bob).
        assert_eq!(plan.levels[1].alice_deposit, 10_000);
        assert_eq!(plan.levels[1].bob_deposit, 5_000);
        // Level 2: (2A + B)/P^2 = 150 (Bob), A/P^2 = 50 (Alice).
        assert_eq!(plan.levels[2].bob_deposit, 150);
        assert_eq!(plan.levels[2].alice_deposit, 50);
        // Level 3: (3A + B)/P^3 = 2 (Alice), A/P^3 = 0 (Bob, rounded down).
        assert_eq!(plan.levels[3].alice_deposit, 2);
        assert_eq!(plan.levels[3].bob_deposit, 0);
        // Initial risk is a few dollars, as in the paper's $4 example.
        assert!(plan.initial_risk() <= 4);
    }

    #[test]
    fn plan_with_zero_rounds_is_just_principals() {
        let plan = bootstrap_plan(10, 20, 100, 0);
        assert_eq!(plan.rounds(), 0);
        assert_eq!(plan.levels.len(), 1);
        assert_eq!(plan.initial_risk(), 20);
    }

    #[test]
    fn premiums_shrink_geometrically() {
        let plan = bootstrap_plan(1_000_000, 1_000_000, 10, 5);
        for window in plan.levels.windows(2) {
            let outer = window[1].alice_deposit.max(window[1].bob_deposit);
            let inner = window[0].alice_deposit.max(window[0].bob_deposit);
            assert!(outer <= inner, "each level's deposits are no larger than the previous");
        }
        assert!(plan.initial_risk() < 1_000_000 / 10u128.pow(4));
    }

    #[test]
    fn exposure_totals_are_consistent() {
        let plan = bootstrap_plan(100, 200, 10, 2);
        assert_eq!(
            plan.alice_total_exposure(),
            plan.levels.iter().map(|l| l.alice_deposit).sum::<u128>()
        );
        assert!(plan.alice_total_exposure() >= 100);
        assert!(plan.bob_total_exposure() >= 200);
    }

    #[test]
    fn risk_duration_is_independent_of_rounds() {
        let (risk0, total0) = lockup_durations(6, 0);
        let (risk5, total5) = lockup_durations(6, 5);
        assert_eq!(risk0, risk5, "lock-up risk duration does not grow with rounds");
        assert!(total5 > total0, "total protocol length does grow with rounds");
    }

    #[test]
    fn rounds_needed_then_plan_yields_acceptable_risk() {
        // Property-style spot check across a grid: building a plan with the
        // computed number of rounds indeed brings the initial risk within
        // the acceptable bound (up to integer rounding).
        for &(a, b, p, risk) in &[
            (1_000_000u128, 1_000_000u128, 100u128, 4u128),
            (10_000, 50_000, 10, 100),
            (777, 333, 2, 5),
        ] {
            let rounds = rounds_needed(a + b, risk, p);
            let plan = bootstrap_plan(a, b, p, rounds);
            // The outermost deposit is (rA + B)/P^r, which the paper bounds
            // as "approximately" the acceptable risk; check it against the
            // exact formula and make sure it is far below the principal.
            let formula = (u128::from(rounds) * a + b) / p.pow(rounds);
            assert!(
                plan.initial_risk() <= risk.max(formula),
                "a={a} b={b} p={p} risk={risk} rounds={rounds} got {}",
                plan.initial_risk()
            );
            assert!(plan.initial_risk() * p <= a + b || rounds == 0);
        }
    }
}
