//! Chain shards: worker-owned worlds plus batched cross-shard delivery.
//!
//! A [`Shard`] owns one [`chainsim::World`] with a single chain, the home
//! deals scheduled on it, and two message queues. During a round a shard
//! executes entirely on its own state: it drains the inbox (messages other
//! shards emitted last round), spawns and steps its home deals, and pushes
//! every cross-shard action into its outbox. The driver then merges all
//! outboxes into inboxes in shard-id order at the round boundary — a batched
//! delivery that both preserves Δ-synchrony (an emission in round `r`
//! executes remotely at height `(r + 1)·Δ`, i.e. within one Δ) and makes the
//! whole run deterministic by construction: no shard ever observes another
//! shard mid-round, so the worker count cannot change any interleaving a
//! contract can see.

use std::collections::BTreeMap;

use chainsim::{
    Amount, AssetId, Blockchain, ChainId, Contract, ContractAddr, FinalityParams, PartyId,
    ReorgEvent, ReorgPolicy, ReorgStats, World,
};
use contracts::{AuctionCoinContract, AuctionCoinMsg, AuctionTicketMsg, HedgedEscrowMsg, HtlcMsg};

use super::deals::Deal;
use super::MarketConfig;

/// Every shard world registers its assets in the same order, so the ids are
/// constants across shards: the chain's auto-registered native currency…
pub const NATIVE_ASSET: AssetId = AssetId(0);
/// …and the shard token that principals are denominated in.
pub const TOKEN_ASSET: AssetId = AssetId(1);

/// How many call failures a shard records verbatim before only counting.
const MAX_RECORDED_FAILURES: usize = 8;

/// A typed contract call routed through the market engine.
///
/// Calls address contracts by `(deal, leg)` instead of by [`ContractAddr`]:
/// the publishing shard assigns the concrete address when the `Publish`
/// message executes, so planned actions can be built before any contract
/// exists.
#[derive(Clone, Debug)]
pub enum MarketCall {
    /// A call on a §5.2 hedged escrow leg.
    Hedged(HedgedEscrowMsg),
    /// A call on a plain HTLC leg (cycles and brokered sales).
    Htlc(HtlcMsg),
    /// A call on the auction's coin-chain contract.
    Coin(AuctionCoinMsg),
    /// A call on the auction's ticket-chain contract.
    Ticket(AuctionTicketMsg),
}

impl MarketCall {
    fn desc(&self) -> &'static str {
        match self {
            MarketCall::Hedged(_) => "market hedged-escrow call",
            MarketCall::Htlc(_) => "market htlc call",
            MarketCall::Coin(_) => "market auction-coin call",
            MarketCall::Ticket(_) => "market auction-ticket call",
        }
    }
}

/// One unit of work a shard executes on its own chain.
#[derive(Debug)]
pub enum MarketMsg {
    /// Publish a deal leg's contract and record its address.
    Publish {
        /// The deal the leg belongs to.
        deal: u32,
        /// The leg index within the deal.
        leg: u8,
        /// The publishing party.
        publisher: PartyId,
        /// The contract instance to publish.
        contract: Box<dyn Contract>,
    },
    /// Call a previously published leg.
    Call {
        /// The deal the leg belongs to.
        deal: u32,
        /// The leg index within the deal.
        leg: u8,
        /// The calling party.
        caller: PartyId,
        /// The typed message.
        call: MarketCall,
    },
}

/// An outbound message queued for delivery to another shard (or back to the
/// emitting shard — self-targeted envelopes still wait for the round
/// boundary, which is what gives every remote action its uniform one-round
/// delivery latency).
#[derive(Debug)]
pub struct Envelope {
    /// The destination shard.
    pub target: u32,
    /// The message to execute there next round.
    pub msg: MarketMsg,
}

/// One chain shard: a private world, the home deals scheduled on it, and the
/// batched message queues.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    world: World,
    chain: ChainId,
    deals: Vec<Deal>,
    spawned: usize,
    live_lo: usize,
    leg_addrs: BTreeMap<(u32, u8), ContractAddr>,
    inbox: Vec<MarketMsg>,
    outbox: Vec<Envelope>,
    calls: u64,
    failed_calls: u64,
    failures: Vec<String>,
    minted_per_asset: u128,
    reorg_seed: u64,
    reorg_interval: u32,
    reorg_depth: u32,
}

impl Shard {
    /// Builds shard `id`: one chain, the shared token, and every pooled
    /// account endowed with both assets. `contract_estimate` pre-allocates
    /// ledger rows for the contracts the run is expected to publish.
    pub fn new(id: u32, cfg: &MarketConfig, contract_estimate: usize) -> Self {
        let mut world = World::with_trace(cfg.delta_blocks, cfg.trace);
        let chain = world.add_chain(format!("shard-{id}"));
        let native = world.chain(chain).native_asset();
        let token = world.register_asset("shard-token");
        assert_eq!(native, NATIVE_ASSET, "native asset must be the first registered");
        assert_eq!(token, TOKEN_ASSET, "shard token must be the second registered");

        let accounts = cfg.accounts as usize;
        let endowment = Amount::new(cfg.endowment);
        let chain_mut = world.chain_mut(chain);
        chain_mut.ledger_mut().reserve(accounts, contract_estimate, 2);
        for p in 0..cfg.accounts {
            chain_mut.mint(PartyId(p), TOKEN_ASSET, endowment);
            chain_mut.mint(PartyId(p), NATIVE_ASSET, endowment);
        }
        if cfg.reorg_depth > 0 {
            // `delta: 0` inherits the world Δ, so confirmation lag scales
            // with the run's synchrony bound.
            world.set_finality(chain, FinalityParams { depth: cfg.reorg_depth, delta: 0 });
        }

        Shard {
            id,
            world,
            chain,
            deals: Vec::new(),
            spawned: 0,
            live_lo: 0,
            leg_addrs: BTreeMap::new(),
            inbox: Vec::new(),
            outbox: Vec::new(),
            calls: 0,
            failed_calls: 0,
            failures: Vec::new(),
            minted_per_asset: u128::from(cfg.accounts) * cfg.endowment,
            reorg_seed: cfg.seed,
            reorg_interval: cfg.reorg_interval,
            reorg_depth: cfg.reorg_depth,
        }
    }

    /// Assigns this shard's home deals (must be sorted by `start_round`).
    pub fn assign_deals(&mut self, deals: Vec<Deal>) {
        debug_assert!(deals.windows(2).all(|w| w[0].start_round <= w[1].start_round));
        self.deals = deals;
    }

    /// This shard's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's chain state (ledger, contracts, gas meter).
    pub fn chain(&self) -> &Blockchain {
        self.world.chain(self.chain)
    }

    /// The home deals scheduled on this shard.
    pub fn deals(&self) -> &[Deal] {
        &self.deals
    }

    /// The address a deal leg was published at on this shard, if it has been.
    pub fn leg_addr(&self, deal: u32, leg: u8) -> Option<ContractAddr> {
        self.leg_addrs.get(&(deal, leg)).copied()
    }

    /// Total contract calls executed on this shard.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Calls that returned an error (a correct run has none).
    pub fn failed_calls(&self) -> u64 {
        self.failed_calls
    }

    /// The first few recorded failure descriptions.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// Units minted per asset during setup (the conservation baseline).
    pub fn minted_per_asset(&self) -> u128 {
        self.minted_per_asset
    }

    /// Takes the round's outbound batch (driver barrier only).
    pub fn take_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }

    /// Enqueues a message delivered at the last round boundary.
    pub fn push_inbox(&mut self, msg: MarketMsg) {
        self.inbox.push(msg);
    }

    /// Executes one driver round on this shard: drain the inbox, spawn home
    /// deals starting now, step live deals, then advance the chain by Δ.
    pub fn run_round(&mut self, round: u32) {
        for msg in std::mem::take(&mut self.inbox) {
            self.apply(msg);
        }

        while self.spawned < self.deals.len() && self.deals[self.spawned].start_round <= round {
            self.spawned += 1;
        }

        // Split borrow: the deal list is taken out of `self` while stepping
        // so actions can execute against the shard's world.
        let mut deals = std::mem::take(&mut self.deals);
        for deal in &mut deals[self.live_lo..self.spawned] {
            let offset = round - deal.start_round;
            self.step_deal(deal, offset);
        }
        while self.live_lo < self.spawned && deals[self.live_lo].is_done() {
            self.live_lo += 1;
        }
        self.deals = deals;

        if self.reorg_due(round) {
            // Fires inside `advance_delta` at this round's close: the chain
            // rewinds its speculative window and re-delivers the rewound
            // calls in order. The decision is a pure function of
            // `(seed, shard, round)`, so injection cannot depend on the
            // worker count.
            self.world.schedule_reorg(ReorgEvent {
                chain: self.chain,
                at_round: self.world.rounds_elapsed(),
                depth: self.reorg_depth,
                policy: ReorgPolicy::Redeliver,
            });
        }
        self.world.advance_delta();
    }

    /// Whether the seed-pinned injector fires a reorg on this shard this
    /// round. Round 0 is exempt so endowment setup is never rewound into a
    /// half-open window.
    fn reorg_due(&self, round: u32) -> bool {
        if self.reorg_interval == 0 || round == 0 {
            return false;
        }
        let stream = self.reorg_seed ^ (u64::from(self.id) << 32) ^ u64::from(round);
        super::SplitMix64::new(stream).below(u64::from(self.reorg_interval)) == 0
    }

    /// Reorg counters of this shard's chain (all zero when injection is off).
    pub fn reorg_stats(&self) -> ReorgStats {
        self.chain().reorg_stats()
    }

    fn step_deal(&mut self, deal: &mut Deal, offset: u32) {
        while let Some(action) = deal.take_action_due(offset) {
            if action.target == self.id {
                self.apply(action.msg);
            } else {
                self.outbox.push(Envelope { target: action.target, msg: action.msg });
            }
        }
        if let Some(declare) = deal.take_declare_due(offset) {
            self.run_declare(deal.id, declare);
        }
    }

    /// The auction's dynamic step: read the winning bid off this shard's
    /// coin contract and submit the matching hashkey on both chains.
    fn run_declare(&mut self, deal: u32, declare: super::deals::AuctionDeclare) {
        let Some(coin_addr) = self.leg_addr(deal, declare.coin_leg) else {
            self.record_failure(format!("deal {deal}: declare before coin contract published"));
            return;
        };
        let high = self
            .world
            .chain(self.chain)
            .contract_as::<AuctionCoinContract>(coin_addr.contract)
            .and_then(|c| c.high_bidder());
        let Some((winner, _)) = high else {
            self.record_failure(format!("deal {deal}: auction has no bids to declare on"));
            return;
        };
        let Some((_, secret)) = declare.secrets.iter().find(|(p, _)| *p == winner).cloned() else {
            self.record_failure(format!("deal {deal}: no secret for declared winner {winner}"));
            return;
        };
        self.apply(MarketMsg::Call {
            deal,
            leg: declare.coin_leg,
            caller: declare.caller,
            call: MarketCall::Coin(AuctionCoinMsg::SubmitHashkey {
                winner,
                secret: secret.clone(),
            }),
        });
        self.outbox.push(Envelope {
            target: declare.ticket_shard,
            msg: MarketMsg::Call {
                deal,
                leg: declare.ticket_leg,
                caller: declare.caller,
                call: MarketCall::Ticket(AuctionTicketMsg::SubmitHashkey { winner, secret }),
            },
        });
    }

    fn apply(&mut self, msg: MarketMsg) {
        match msg {
            MarketMsg::Publish { deal, leg, publisher, contract } => {
                let id = self.world.chain_mut(self.chain).publish(publisher, contract);
                let replaced =
                    self.leg_addrs.insert((deal, leg), ContractAddr::new(self.chain, id));
                debug_assert!(replaced.is_none(), "deal {deal} leg {leg} published twice");
            }
            MarketMsg::Call { deal, leg, caller, call } => {
                let Some(addr) = self.leg_addr(deal, leg) else {
                    self.record_failure(format!("deal {deal} leg {leg}: call before publish"));
                    return;
                };
                self.calls += 1;
                let desc = call.desc();
                let result = match &call {
                    MarketCall::Hedged(m) => self.world.call(caller, addr, m, desc),
                    MarketCall::Htlc(m) => self.world.call(caller, addr, m, desc),
                    MarketCall::Coin(m) => self.world.call(caller, addr, m, desc),
                    MarketCall::Ticket(m) => self.world.call(caller, addr, m, desc),
                };
                if let Err(err) = result {
                    self.record_failure(format!("deal {deal} leg {leg}: {err}"));
                }
            }
        }
    }

    fn record_failure(&mut self, detail: String) {
        self.failed_calls += 1;
        if self.failures.len() < MAX_RECORDED_FAILURES {
            self.failures.push(detail);
        }
    }
}
