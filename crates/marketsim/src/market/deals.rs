//! Deal instances and their compiled action plans.
//!
//! A deal is generated once, up front, from a seed-pinned SplitMix64 stream:
//! its kind, participants, shards, amounts and (for hedged swaps) scripted
//! deviation are all functions of `(seed, deal id)` alone. Generation
//! compiles each deal into a list of [`PlannedAction`]s keyed by *emission
//! offset*: the round (relative to the deal's start) at which the home shard
//! either executes the action locally or queues it for the target shard.
//! Remote actions are emitted one round before their execution offset, so
//! the batched round-boundary delivery lands them exactly on schedule.
//!
//! The timelines below are verified against the contract deadline semantics
//! (`ensure_before` is strict, `has_reached` is `>=`); every scripted call
//! of a correct run succeeds, and the driver treats any failed call as a
//! violation.

use chainsim::{Amount, PartyId, Time};
use contracts::{
    AuctionCoinContract, AuctionCoinMsg, AuctionParams, AuctionTicketContract, AuctionTicketMsg,
    HedgedEscrow, HedgedEscrowMsg, HtlcEscrow, HtlcMsg,
};
use cryptosim::Secret;
use protocols::market::{AccountPool, HedgedSwapSchedule, HedgedSwapSpec};

use super::shard::{MarketCall, MarketMsg, NATIVE_ASSET, TOKEN_ASSET};
use super::{MarketConfig, SplitMix64};
use crate::PricePath;

/// The largest settle offset any deal kind reaches (the hedged walk-away
/// paths settle their home leg 7 rounds after the deal starts).
pub const MAX_SETTLE_OFFSET: u32 = 7;

/// The kind of a generated deal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DealKind {
    /// A §5.2 two-party hedged swap across two shards.
    HedgedSwap,
    /// A three-party HTLC cycle (A→B→C→A) across up to three shards.
    Cycle3,
    /// A §9 hedged auction: coin contract home, ticket contract remote.
    Auction,
    /// A §8-style brokered sale: commission, payment and item legs.
    Brokered,
}

impl DealKind {
    /// A stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DealKind::HedgedSwap => "hedged_swap",
            DealKind::Cycle3 => "cycle3",
            DealKind::Auction => "auction",
            DealKind::Brokered => "brokered",
        }
    }
}

/// The scripted deviation of a hedged swap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HedgedDeviation {
    /// Both parties comply; principals are swapped.
    Clean,
    /// The follower deposits its premium but never escrows: the paper's
    /// first sore-loser case. The compliant leader nets `+p_b`.
    FollowerWalks,
    /// The leader escrows are in place but the leader never redeems: the
    /// compliant follower nets `+p_a`.
    LeaderWalks,
}

/// Where a deal leg lives: the shard it was published on plus its leg index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LegRef {
    /// The shard holding the leg's contract.
    pub shard: u32,
    /// The leg index within the deal.
    pub leg: u8,
}

/// One scheduled action: at `offset` rounds after the deal starts, the home
/// shard executes `msg` locally (if `target` is home) or queues it for
/// `target`'s next round.
#[derive(Debug)]
pub struct PlannedAction {
    /// Emission offset in rounds from the deal's start round.
    pub offset: u32,
    /// The shard the message must execute on.
    pub target: u32,
    /// The message.
    pub msg: MarketMsg,
}

/// The auction's one dynamic step: at `offset` the home shard reads the
/// coin contract's high bidder and submits that bidder's hashkey on both
/// chains.
#[derive(Debug)]
pub struct AuctionDeclare {
    /// Emission offset in rounds from the deal's start round.
    pub offset: u32,
    /// The coin contract's leg index (on the home shard).
    pub coin_leg: u8,
    /// The ticket contract's leg index.
    pub ticket_leg: u8,
    /// The shard holding the ticket contract.
    pub ticket_shard: u32,
    /// The declaring party (the auctioneer).
    pub caller: PartyId,
    /// The per-bidder secrets the auctioneer generated.
    pub secrets: Vec<(PartyId, Secret)>,
}

/// The end-state a deal must reach for the run to count it settled.
#[derive(Debug)]
pub enum Expected {
    /// Hedged swap: leg 0 is the leader (home) leg, leg 1 the follower leg;
    /// the deviation decides which terminal states are correct.
    Hedged {
        /// The scripted deviation.
        deviation: HedgedDeviation,
        /// Leader leg, then follower leg.
        legs: [LegRef; 2],
    },
    /// Every HTLC leg of a cycle or brokered sale must end `Redeemed`.
    Ring {
        /// All legs of the ring.
        legs: Vec<LegRef>,
    },
    /// The auction must complete with exactly this winner and bid.
    Auction {
        /// The coin contract.
        coin: LegRef,
        /// The ticket contract.
        ticket: LegRef,
        /// The expected winner (highest bid, ties to the lower party id).
        winner: PartyId,
        /// The expected winning bid.
        winning_bid: Amount,
    },
}

/// A generated deal: identity, schedule and compiled plan.
#[derive(Debug)]
pub struct Deal {
    /// The deal's global id (generation order).
    pub id: u32,
    /// The deal kind.
    pub kind: DealKind,
    /// The driver round the deal starts in.
    pub start_round: u32,
    /// The home shard (where the deal is stepped).
    pub home: u32,
    /// Offset of the round in which the deal's last contract settles.
    pub settle_offset: u32,
    /// The compiled plan, sorted by emission offset; drained during the run.
    actions: std::collections::VecDeque<PlannedAction>,
    /// The auction's dynamic declaration step, if any.
    declare: Option<AuctionDeclare>,
    /// The end-state the verifier checks.
    pub expected: Expected,
}

impl Deal {
    /// Pops the next action if it is due at `offset` (or overdue, which the
    /// driver's round loop never produces).
    pub fn take_action_due(&mut self, offset: u32) -> Option<PlannedAction> {
        if self.actions.front().is_some_and(|a| a.offset <= offset) {
            self.actions.pop_front()
        } else {
            None
        }
    }

    /// Takes the declare hook if it is due at `offset`.
    pub fn take_declare_due(&mut self, offset: u32) -> Option<AuctionDeclare> {
        if self.declare.as_ref().is_some_and(|d| d.offset <= offset) {
            self.declare.take()
        } else {
            None
        }
    }

    /// Whether every scheduled action has been emitted.
    pub fn is_done(&self) -> bool {
        self.actions.is_empty() && self.declare.is_none()
    }

    /// The deal's settlement latency in rounds (start round inclusive).
    pub fn latency_rounds(&self) -> u32 {
        self.settle_offset + 1
    }
}

/// Generates the full deal list for `cfg`, sizing amounts from the shared
/// price path (one sample per driver round). Deal `i` starts in round
/// `i / deals_per_round`.
pub fn generate(cfg: &MarketConfig, path: &PricePath) -> Vec<Deal> {
    let pool = AccountPool::new(0, cfg.accounts);
    (0..cfg.deals)
        .map(|id| {
            let mut rng = SplitMix64::new(
                cfg.seed ^ (u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(1),
            );
            let start_round = id / cfg.deals_per_round.max(1);
            let price = path.at_strict(start_round as usize);
            let unit = (price.max(1.0)) as u128;
            let roll = rng.below(100);
            if roll < 40 {
                build_hedged(id, start_round, unit, cfg, &pool, &mut rng)
            } else if roll < 60 {
                build_cycle3(id, start_round, unit, cfg, &pool, &mut rng)
            } else if roll < 80 {
                build_auction(id, start_round, unit, cfg, &pool, &mut rng)
            } else {
                build_brokered(id, start_round, unit, cfg, &pool, &mut rng)
            }
        })
        .collect()
}

/// Splits the generated deals into per-home-shard queues (id order within a
/// shard, which is also start-round order).
pub fn split_by_home(deals: Vec<Deal>, shards: u32) -> Vec<Vec<Deal>> {
    let mut per_shard: Vec<Vec<Deal>> = (0..shards).map(|_| Vec::new()).collect();
    for deal in deals {
        per_shard[deal.home as usize].push(deal);
    }
    per_shard
}

fn pick_shard(rng: &mut SplitMix64, shards: u32) -> u32 {
    rng.below(u64::from(shards)) as u32
}

fn pick_other_shard(rng: &mut SplitMix64, shards: u32, home: u32) -> u32 {
    if shards == 1 {
        return home;
    }
    loop {
        let s = pick_shard(rng, shards);
        if s != home {
            return s;
        }
    }
}

/// Emission offset for an action executing at `exec` rounds after the deal
/// start: remote actions ride the round-boundary batch, so they are emitted
/// one round early.
fn emit_offset(home: u32, target: u32, exec: u32) -> u32 {
    if target == home {
        exec
    } else {
        debug_assert!(exec > 0, "a remote action cannot execute in the spawn round");
        exec - 1
    }
}

struct Plan {
    home: u32,
    actions: Vec<PlannedAction>,
}

impl Plan {
    fn new(home: u32) -> Self {
        Plan { home, actions: Vec::new() }
    }

    fn publish(
        &mut self,
        exec: u32,
        target: u32,
        deal: u32,
        leg: u8,
        publisher: PartyId,
        contract: Box<dyn chainsim::Contract>,
    ) {
        self.actions.push(PlannedAction {
            offset: emit_offset(self.home, target, exec),
            target,
            msg: MarketMsg::Publish { deal, leg, publisher, contract },
        });
    }

    fn call(
        &mut self,
        exec: u32,
        target: u32,
        deal: u32,
        leg: u8,
        caller: PartyId,
        call: MarketCall,
    ) {
        self.actions.push(PlannedAction {
            offset: emit_offset(self.home, target, exec),
            target,
            msg: MarketMsg::Call { deal, leg, caller, call },
        });
    }

    fn finish(mut self) -> std::collections::VecDeque<PlannedAction> {
        // Stable by emission offset: actions at equal offsets keep plan
        // order, which is what sequences publish-before-call pairs.
        self.actions.sort_by_key(|a| a.offset);
        self.actions.into()
    }
}

/// §5.2 hedged swap. Deadlines are anchored at `(start_round + 1)·Δ` — the
/// height at which the first *executed* step (both premium deposits) runs —
/// so the contract schedule matches the conformance-tested two-party setup
/// exactly, just shifted in time.
fn build_hedged(
    id: u32,
    start_round: u32,
    unit: u128,
    cfg: &MarketConfig,
    pool: &AccountPool,
    rng: &mut SplitMix64,
) -> Deal {
    let parties = pool.draw_distinct(2, || rng.next_u64());
    let (leader, follower) = (parties[0], parties[1]);
    let home = pick_shard(rng, cfg.shards);
    let remote = pick_other_shard(rng, cfg.shards, home);
    let secret = Secret::from_seed(rng.next_u64());

    let leader_amount = Amount::new(unit * (1 + rng.below(40)) as u128);
    let follower_amount = Amount::new(unit * (1 + rng.below(40)) as u128);
    let premium_leader = Amount::new(leader_amount.value() / 20 + 1);
    let premium_follower = Amount::new(follower_amount.value() / 25 + 1);

    let deviation = {
        let walk = u64::from(cfg.walkaway_percent);
        let roll = rng.below(100);
        if roll < walk {
            HedgedDeviation::FollowerWalks
        } else if roll < walk * 2 {
            HedgedDeviation::LeaderWalks
        } else {
            HedgedDeviation::Clean
        }
    };

    let spec = HedgedSwapSpec {
        leader,
        follower,
        leader_token: TOKEN_ASSET,
        follower_token: TOKEN_ASSET,
        leader_native: NATIVE_ASSET,
        follower_native: NATIVE_ASSET,
        leader_amount,
        follower_amount,
        premium_leader,
        premium_follower,
        hashlock: secret.hashlock(),
    };
    let delta = cfg.delta_blocks;
    let anchor = Time(u64::from(start_round + 1) * delta);
    let schedule = HedgedSwapSchedule::PAPER;
    let leader_leg = spec.leader_leg(anchor, delta, &schedule);
    let follower_leg = spec.follower_leg(anchor, delta, &schedule);

    let mut plan = Plan::new(home);
    // Leader (home) leg: publish at spawn, follower's premium at 1, leader's
    // escrow at 2.
    plan.publish(0, home, id, 0, leader, Box::new(HedgedEscrow::new(leader_leg)));
    plan.call(1, home, id, 0, follower, MarketCall::Hedged(HedgedEscrowMsg::DepositPremium));
    plan.call(2, home, id, 0, leader, MarketCall::Hedged(HedgedEscrowMsg::EscrowPrincipal));
    // Follower (remote) leg: publish + leader's premium execute at 1.
    plan.publish(1, remote, id, 1, follower, Box::new(HedgedEscrow::new(follower_leg)));
    plan.call(1, remote, id, 1, leader, MarketCall::Hedged(HedgedEscrowMsg::DepositPremium));

    let settle_offset = match deviation {
        HedgedDeviation::Clean => {
            // Follower escrows at 3; leader redeems remotely at 4 (revealing
            // the secret), follower redeems at home at 5.
            plan.call(
                3,
                remote,
                id,
                1,
                follower,
                MarketCall::Hedged(HedgedEscrowMsg::EscrowPrincipal),
            );
            plan.call(
                4,
                remote,
                id,
                1,
                leader,
                MarketCall::Hedged(HedgedEscrowMsg::Redeem { secret: secret.clone() }),
            );
            plan.call(
                5,
                home,
                id,
                0,
                follower,
                MarketCall::Hedged(HedgedEscrowMsg::Redeem { secret }),
            );
            5
        }
        HedgedDeviation::FollowerWalks => {
            // No follower escrow: the remote leg settles at its escrow
            // deadline (anchor + 4Δ, exec offset 5) refunding the leader's
            // premium; the home leg settles at its redeem deadline
            // (anchor + 6Δ, exec offset 7) paying `p_b` to the leader.
            plan.call(5, remote, id, 1, leader, MarketCall::Hedged(HedgedEscrowMsg::Settle));
            plan.call(7, home, id, 0, follower, MarketCall::Hedged(HedgedEscrowMsg::Settle));
            7
        }
        HedgedDeviation::LeaderWalks => {
            // Escrows complete but the leader never reveals: both legs time
            // out at their redeem deadlines and the premiums compensate the
            // escrowers (the follower nets `+p_a`).
            plan.call(
                3,
                remote,
                id,
                1,
                follower,
                MarketCall::Hedged(HedgedEscrowMsg::EscrowPrincipal),
            );
            plan.call(6, remote, id, 1, follower, MarketCall::Hedged(HedgedEscrowMsg::Settle));
            plan.call(7, home, id, 0, leader, MarketCall::Hedged(HedgedEscrowMsg::Settle));
            7
        }
    };

    Deal {
        id,
        kind: DealKind::HedgedSwap,
        start_round,
        home,
        settle_offset,
        actions: plan.finish(),
        declare: None,
        expected: Expected::Hedged {
            deviation,
            legs: [LegRef { shard: home, leg: 0 }, LegRef { shard: remote, leg: 1 }],
        },
    }
}

struct RingLeg {
    shard: u32,
    sender: PartyId,
    recipient: PartyId,
    asset: chainsim::AssetId,
    amount: Amount,
}

/// Shared builder for cycles and brokered sales: every leg escrows up
/// front, then the secret holder starts a redemption cascade in
/// `redeem_order` — each later redeemer observed the secret revealed one
/// round (one Δ) earlier.
fn build_ring(
    id: u32,
    kind: DealKind,
    start_round: u32,
    cfg: &MarketConfig,
    rng: &mut SplitMix64,
    legs: Vec<RingLeg>,
    redeem_order: Vec<usize>,
) -> Deal {
    debug_assert_eq!(legs.len(), redeem_order.len());
    let secret = Secret::from_seed(rng.next_u64());
    let delta = cfg.delta_blocks;
    let t0 = u64::from(start_round) * delta;
    let home = legs[0].shard;

    // Redemption position of each leg decides its timelock: the redeem at
    // position `p` executes at offset `2 + p` (height `t0 + (2 + p)·Δ`),
    // three Δ before the leg's timelock.
    let mut position = vec![0usize; legs.len()];
    for (p, leg) in redeem_order.iter().enumerate() {
        position[*leg] = p;
    }

    let mut plan = Plan::new(home);
    for (i, leg) in legs.iter().enumerate() {
        let timelock = Time(t0 + (5 + position[i] as u64) * delta);
        let contract = HtlcEscrow::new(
            leg.sender,
            leg.recipient,
            leg.asset,
            leg.amount,
            secret.hashlock(),
            timelock,
        );
        // Home legs publish + escrow at spawn; remote legs at offset 1.
        let exec = if leg.shard == home { 0 } else { 1 };
        plan.publish(exec, leg.shard, id, i as u8, leg.sender, Box::new(contract));
        plan.call(exec, leg.shard, id, i as u8, leg.sender, MarketCall::Htlc(HtlcMsg::Escrow));
    }
    for (p, leg_idx) in redeem_order.iter().enumerate() {
        let leg = &legs[*leg_idx];
        plan.call(
            2 + p as u32,
            leg.shard,
            id,
            *leg_idx as u8,
            leg.recipient,
            MarketCall::Htlc(HtlcMsg::Redeem { secret: secret.clone() }),
        );
    }

    let settle_offset = 2 + (legs.len() as u32 - 1);
    let expected_legs =
        legs.iter().enumerate().map(|(i, l)| LegRef { shard: l.shard, leg: i as u8 }).collect();
    Deal {
        id,
        kind,
        start_round,
        home,
        settle_offset,
        actions: plan.finish(),
        declare: None,
        expected: Expected::Ring { legs: expected_legs },
    }
}

/// A three-party token cycle P0→P1→P2→P0; P0 holds the secret and redeems
/// the incoming leg first.
fn build_cycle3(
    id: u32,
    start_round: u32,
    unit: u128,
    cfg: &MarketConfig,
    pool: &AccountPool,
    rng: &mut SplitMix64,
) -> Deal {
    let parties = pool.draw_distinct(3, || rng.next_u64());
    let home = pick_shard(rng, cfg.shards);
    let shards = [home, pick_shard(rng, cfg.shards), pick_shard(rng, cfg.shards)];
    let legs = (0..3)
        .map(|i| RingLeg {
            shard: shards[i],
            sender: parties[i],
            recipient: parties[(i + 1) % 3],
            asset: TOKEN_ASSET,
            amount: Amount::new(unit * (1 + rng.below(10)) as u128),
        })
        .collect();
    // P0 is the recipient of leg 2; the cascade unwinds the cycle backwards.
    build_ring(id, DealKind::Cycle3, start_round, cfg, rng, legs, vec![2, 1, 0])
}

/// A brokered sale: the buyer's commission (native, home shard) unlocks
/// first, then the payment and the item legs.
fn build_brokered(
    id: u32,
    start_round: u32,
    unit: u128,
    cfg: &MarketConfig,
    pool: &AccountPool,
    rng: &mut SplitMix64,
) -> Deal {
    let parties = pool.draw_distinct(3, || rng.next_u64());
    let (buyer, seller, broker) = (parties[0], parties[1], parties[2]);
    let home = pick_shard(rng, cfg.shards);
    let payment_shard = pick_shard(rng, cfg.shards);
    let item_shard = pick_shard(rng, cfg.shards);
    let price = Amount::new(unit * (2 + rng.below(30)) as u128);
    let commission = Amount::new(price.value() / 10 + 1);
    let legs = vec![
        RingLeg {
            shard: home,
            sender: buyer,
            recipient: broker,
            asset: NATIVE_ASSET,
            amount: commission,
        },
        RingLeg {
            shard: payment_shard,
            sender: buyer,
            recipient: seller,
            asset: NATIVE_ASSET,
            amount: price,
        },
        RingLeg {
            shard: item_shard,
            sender: seller,
            recipient: buyer,
            asset: TOKEN_ASSET,
            amount: Amount::new(unit),
        },
    ];
    // The broker (recipient of the commission leg) holds the secret.
    build_ring(id, DealKind::Brokered, start_round, cfg, rng, legs, vec![0, 1, 2])
}

/// A §9 hedged auction with three bidders: coin contract home, ticket
/// contract remote; bid deadline `t0 + 2Δ`, challenge deadline `t0 + 4Δ`.
fn build_auction(
    id: u32,
    start_round: u32,
    unit: u128,
    cfg: &MarketConfig,
    pool: &AccountPool,
    rng: &mut SplitMix64,
) -> Deal {
    let parties = pool.draw_distinct(4, || rng.next_u64());
    let auctioneer = parties[0];
    let bidders = vec![parties[1], parties[2], parties[3]];
    let home = pick_shard(rng, cfg.shards);
    let remote = pick_other_shard(rng, cfg.shards, home);
    let delta = cfg.delta_blocks;
    let t0 = u64::from(start_round) * delta;

    let secrets: Vec<(PartyId, Secret)> =
        bidders.iter().map(|b| (*b, Secret::from_seed(rng.next_u64()))).collect();
    let bids: Vec<(PartyId, Amount)> =
        bidders.iter().map(|b| (*b, Amount::new(unit * (10 + rng.below(90)) as u128))).collect();
    // Replicates `AuctionCoinContract::high_bidder`: highest amount, ties to
    // the lower party id. `bids` is drawn in pool order, not id order, so
    // a strictly-greater comparison alone is not enough.
    let (winner, winning_bid) = bids
        .iter()
        .copied()
        .max_by(|(pa, aa), (pb, ab)| aa.cmp(ab).then(pb.cmp(pa)))
        .expect("three bids");

    let params = AuctionParams {
        auctioneer,
        bidders: bidders.clone(),
        coin_asset: NATIVE_ASSET,
        ticket_asset: TOKEN_ASSET,
        ticket_amount: Amount::new(unit),
        premium_per_bidder: Amount::new(unit / 2 + 1),
        hashlocks: secrets.iter().map(|(b, s)| (*b, s.hashlock())).collect(),
        bid_deadline: Time(t0 + 2 * delta),
        challenge_deadline: Time(t0 + 4 * delta),
    };

    let mut plan = Plan::new(home);
    plan.publish(0, home, id, 0, auctioneer, Box::new(AuctionCoinContract::new(params.clone())));
    plan.call(0, home, id, 0, auctioneer, MarketCall::Coin(AuctionCoinMsg::DepositPremium));
    plan.publish(1, remote, id, 1, auctioneer, Box::new(AuctionTicketContract::new(params)));
    plan.call(1, remote, id, 1, auctioneer, MarketCall::Ticket(AuctionTicketMsg::EscrowTickets));
    for (bidder, amount) in &bids {
        plan.call(
            1,
            home,
            id,
            0,
            *bidder,
            MarketCall::Coin(AuctionCoinMsg::PlaceBid { amount: *amount }),
        );
    }
    // Declaration is dynamic (offset 2): the home shard reads the coin
    // contract's high bidder at the bid deadline and submits the hashkey on
    // both chains (ticket side lands at offset 3, inside the challenge
    // window).
    plan.call(4, home, id, 0, auctioneer, MarketCall::Coin(AuctionCoinMsg::Settle));
    plan.call(5, remote, id, 1, auctioneer, MarketCall::Ticket(AuctionTicketMsg::Settle));

    Deal {
        id,
        kind: DealKind::Auction,
        start_round,
        home,
        settle_offset: 5,
        actions: plan.finish(),
        declare: Some(AuctionDeclare {
            offset: 2,
            coin_leg: 0,
            ticket_leg: 1,
            ticket_shard: remote,
            caller: auctioneer,
            secrets,
        }),
        expected: Expected::Auction {
            coin: LegRef { shard: home, leg: 0 },
            ticket: LegRef { shard: remote, leg: 1 },
            winner,
            winning_bid,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MarketConfig {
        MarketConfig {
            accounts: 64,
            deals: 48,
            deals_per_round: 8,
            shards: 3,
            ..MarketConfig::default()
        }
    }

    fn path_for(cfg: &MarketConfig) -> PricePath {
        PricePath::gbm(100.0, 0.0, 0.5, 1.0 / 365.0, cfg.rounds() as usize, cfg.seed)
    }

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let cfg = small_cfg();
        let path = path_for(&cfg);
        let a = generate(&cfg, &path);
        let b = generate(&cfg, &path);
        assert_eq!(a.len(), 48);
        for (da, db) in a.iter().zip(&b) {
            assert_eq!(da.id, db.id);
            assert_eq!(da.kind, db.kind);
            assert_eq!(da.home, db.home);
            assert_eq!(da.start_round, db.start_round);
            assert_eq!(da.settle_offset, db.settle_offset);
            assert!(da.settle_offset <= MAX_SETTLE_OFFSET);
            assert!(da.home < cfg.shards);
            assert_eq!(da.start_round, da.id / cfg.deals_per_round);
        }
    }

    #[test]
    fn mix_covers_all_deal_kinds() {
        let cfg = MarketConfig { deals: 200, ..small_cfg() };
        let path = path_for(&cfg);
        let deals = generate(&cfg, &path);
        for kind in [DealKind::HedgedSwap, DealKind::Cycle3, DealKind::Auction, DealKind::Brokered]
        {
            assert!(
                deals.iter().any(|d| d.kind == kind),
                "no {} deals in a 200-deal mix",
                kind.label()
            );
        }
    }

    #[test]
    fn plans_are_sorted_and_remote_actions_are_emitted_early() {
        let cfg = small_cfg();
        let path = path_for(&cfg);
        for mut deal in generate(&cfg, &path) {
            let mut last = 0;
            while let Some(action) = deal.take_action_due(u32::MAX) {
                assert!(action.offset >= last, "plan out of order for deal {}", deal.id);
                last = action.offset;
                assert!(action.offset <= deal.settle_offset);
            }
            assert!(deal.declare.is_none() || deal.kind == DealKind::Auction);
        }
    }

    #[test]
    fn split_by_home_partitions_all_deals() {
        let cfg = small_cfg();
        let path = path_for(&cfg);
        let deals = generate(&cfg, &path);
        let total = deals.len();
        let per_shard = split_by_home(deals, cfg.shards);
        assert_eq!(per_shard.len(), 3);
        assert_eq!(per_shard.iter().map(Vec::len).sum::<usize>(), total);
        for (s, queue) in per_shard.iter().enumerate() {
            assert!(queue.iter().all(|d| d.home == s as u32));
            assert!(queue.windows(2).all(|w| w[0].start_round <= w[1].start_round));
        }
    }
}
