//! The canonical settlement report.
//!
//! A report captures everything a market run produced *except* wall-clock
//! timing: settlement counts, latency percentiles, gas and fee totals, and
//! per-shard accounting. Its [`MarketReport::canonical_string`] is a
//! line-oriented rendering of every field in a fixed order, and the digest
//! is FNV-1a 64 over those bytes — so "byte-identical reports" is a single
//! string (or digest) comparison. Worker count and trace mode are
//! deliberately absent: the engine promises they cannot change any of this.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Per-shard slice of the report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// The shard id.
    pub shard: u32,
    /// Home deals scheduled on this shard.
    pub deals_home: u32,
    /// Home deals that settled correctly.
    pub settled_home: u32,
    /// Total gas metered on the shard's chain.
    pub gas: u64,
    /// Virtual fees (`gas × gas_price`).
    pub fees: u128,
    /// Contract calls executed on the shard.
    pub calls: u64,
    /// Failed contract calls (zero on a correct run).
    pub failed_calls: u64,
    /// End-of-run token supply (equals the minted endowment).
    pub token_supply: u128,
    /// End-of-run native supply (equals the minted endowment).
    pub native_supply: u128,
    /// Units stranded in contract accounts (zero on a correct run).
    pub contract_residue: u128,
}

/// Settled-deal counts by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SettledByKind {
    /// §5.2 hedged swaps (including scripted walk-aways, which settle via
    /// the premium machinery).
    pub hedged_swap: u32,
    /// Three-party HTLC cycles.
    pub cycle3: u32,
    /// §9 hedged auctions.
    pub auction: u32,
    /// Brokered sales.
    pub brokered: u32,
}

/// The settlement report of one market run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketReport {
    /// The run's seed.
    pub seed: u64,
    /// Number of chain shards.
    pub shards: u32,
    /// Size of the shared account pool (per shard).
    pub accounts: u32,
    /// Deals scheduled.
    pub deals: u32,
    /// Deals started per round.
    pub deals_per_round: u32,
    /// The synchrony bound Δ in blocks.
    pub delta_blocks: u64,
    /// Fee per gas unit.
    pub gas_price: u64,
    /// Scripted walk-away share of hedged swaps, in percent.
    pub walkaway_percent: u8,
    /// Mean rounds between injected reorgs per shard (0 = injection off).
    #[serde(default)]
    pub reorg_interval: u32,
    /// Finality-window depth of every shard chain and of each injected
    /// reorg (0 = instant finality).
    #[serde(default)]
    pub reorg_depth: u32,
    /// Driver rounds executed.
    pub rounds: u32,
    /// Deals that reached their expected terminal state.
    pub settled: u32,
    /// Settled deals by kind.
    pub settled_by_kind: SettledByKind,
    /// Deals (or shards) that broke an invariant; zero on a correct run.
    pub violations: u32,
    /// The first few violation descriptions.
    pub violation_details: Vec<String>,
    /// Median settlement latency, in rounds.
    pub latency_p50_rounds: u32,
    /// 99th-percentile settlement latency, in rounds.
    pub latency_p99_rounds: u32,
    /// Worst settlement latency, in rounds.
    pub latency_max_rounds: u32,
    /// Total gas metered across shards.
    pub gas_total: u64,
    /// Average gas per scheduled deal.
    pub gas_per_deal: u64,
    /// Total virtual fees across shards.
    pub fees_total: u128,
    /// Total contract calls.
    pub calls: u64,
    /// Total failed contract calls.
    pub failed_calls: u64,
    /// Reorgs fired across all shards.
    #[serde(default)]
    pub reorgs: u64,
    /// Calls rewound out of speculative rounds by those reorgs.
    #[serde(default)]
    pub reorg_rewound_calls: u64,
    /// Rewound calls that re-applied successfully on the rebuilt chain.
    #[serde(default)]
    pub reorg_redelivered_calls: u64,
    /// Rewound calls whose re-application failed (counted, never silent).
    #[serde(default)]
    pub reorg_redelivery_failures: u64,
    /// Per-shard accounting.
    pub shard_summaries: Vec<ShardSummary>,
}

impl MarketReport {
    /// Renders every field in a fixed, line-oriented order. Two runs settle
    /// byte-identically exactly when these strings are equal.
    pub fn canonical_string(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "market seed={} shards={} accounts={} deals={} deals_per_round={} delta={} \
             gas_price={} walkaway={} reorg_interval={} reorg_depth={}",
            self.seed,
            self.shards,
            self.accounts,
            self.deals,
            self.deals_per_round,
            self.delta_blocks,
            self.gas_price,
            self.walkaway_percent,
            self.reorg_interval,
            self.reorg_depth
        );
        let _ = writeln!(
            s,
            "rounds={} settled={} hedged={} cycle3={} auction={} brokered={} violations={}",
            self.rounds,
            self.settled,
            self.settled_by_kind.hedged_swap,
            self.settled_by_kind.cycle3,
            self.settled_by_kind.auction,
            self.settled_by_kind.brokered,
            self.violations
        );
        for v in &self.violation_details {
            let _ = writeln!(s, "violation: {v}");
        }
        let _ = writeln!(
            s,
            "latency p50={} p99={} max={}",
            self.latency_p50_rounds, self.latency_p99_rounds, self.latency_max_rounds
        );
        let _ = writeln!(
            s,
            "gas total={} per_deal={} fees={} calls={} failed={}",
            self.gas_total, self.gas_per_deal, self.fees_total, self.calls, self.failed_calls
        );
        let _ = writeln!(
            s,
            "reorgs fired={} rewound={} redelivered={} redelivery_failures={}",
            self.reorgs,
            self.reorg_rewound_calls,
            self.reorg_redelivered_calls,
            self.reorg_redelivery_failures
        );
        for sh in &self.shard_summaries {
            let _ = writeln!(
                s,
                "shard {} deals={} settled={} gas={} fees={} calls={} failed={} token={} \
                 native={} residue={}",
                sh.shard,
                sh.deals_home,
                sh.settled_home,
                sh.gas,
                sh.fees,
                sh.calls,
                sh.failed_calls,
                sh.token_supply,
                sh.native_supply,
                sh.contract_residue
            );
        }
        s
    }

    /// FNV-1a 64 digest of [`MarketReport::canonical_string`], as a
    /// fixed-width hex string.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_string().as_bytes()))
    }
}

/// FNV-1a 64-bit over `bytes` (dependency-free stable hashing; `DefaultHasher`
/// makes no cross-version guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Nearest-rank percentile of an ascending-sorted slice; zero when empty.
pub fn percentile(sorted: &[u32], pct: u32) -> u32 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * u64::from(pct)).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let lat = [5, 5, 6, 6, 6, 8];
        assert_eq!(percentile(&lat, 50), 6);
        assert_eq!(percentile(&lat, 99), 8);
        assert_eq!(percentile(&lat, 100), 8);
        assert_eq!(percentile(&lat, 1), 5);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn canonical_string_distinguishes_reports() {
        let base = MarketReport {
            seed: 1,
            shards: 2,
            accounts: 100,
            deals: 10,
            deals_per_round: 5,
            delta_blocks: 2,
            gas_price: 3,
            walkaway_percent: 10,
            reorg_interval: 0,
            reorg_depth: 0,
            rounds: 11,
            settled: 10,
            settled_by_kind: SettledByKind::default(),
            violations: 0,
            violation_details: Vec::new(),
            latency_p50_rounds: 5,
            latency_p99_rounds: 8,
            latency_max_rounds: 8,
            gas_total: 1000,
            gas_per_deal: 100,
            fees_total: 3000,
            calls: 80,
            failed_calls: 0,
            reorgs: 0,
            reorg_rewound_calls: 0,
            reorg_redelivered_calls: 0,
            reorg_redelivery_failures: 0,
            shard_summaries: Vec::new(),
        };
        let mut other = base.clone();
        assert_eq!(base.canonical_string(), other.canonical_string());
        assert_eq!(base.digest(), other.digest());
        other.settled = 9;
        assert_ne!(base.digest(), other.digest());
        other.settled = base.settled;
        other.reorgs = 3;
        assert_ne!(base.digest(), other.digest());
    }
}
