//! The market driver: fork-join round loop, verification and reporting.
//!
//! Each round has two phases. In the parallel phase, workers own disjoint
//! shard chunks (`std::thread::scope`, no locks, no external dependencies)
//! and run every shard one round forward — inbox drain, deal spawns, deal
//! steps, then `advance_delta`. At the barrier, the single-threaded driver
//! merges every shard's outbox into the target inboxes *in shard-id order*,
//! so the messages a shard sees next round are a pure function of the round
//! number — never of worker scheduling. That is the whole determinism
//! argument: reports are byte-identical across worker counts by
//! construction, and the determinism suite checks it.

// staticcheck: allow-file(SC301) — the driver times its own phases
// (wall-clock throughput numbers in the market report); timing feeds the
// perf columns only, never simulated outcomes.
use std::time::{Duration, Instant};

use chainsim::ContractAddr;
use contracts::{
    AuctionCoinContract, AuctionOutcome, AuctionTicketContract, HedgedEscrow, HedgedPremiumState,
    HedgedPrincipalState, HtlcEscrow, HtlcState,
};

use super::deals::{self, Deal, DealKind, Expected, HedgedDeviation, LegRef};
use super::metering::{self, ShardMetering};
use super::report::{percentile, MarketReport, SettledByKind, ShardSummary};
use super::shard::Shard;
use super::MarketConfig;
use crate::PricePath;

/// How many violation descriptions the report keeps verbatim.
const MAX_REPORTED_VIOLATIONS: usize = 8;

/// A finished market run: the canonical report plus wall-clock timings
/// (kept outside the report so timing never perturbs determinism checks).
#[derive(Debug)]
pub struct MarketRun {
    /// The canonical settlement report.
    pub report: MarketReport,
    /// Time spent building shards and minting endowments.
    pub setup: Duration,
    /// Time spent executing rounds (the throughput denominator).
    pub execute: Duration,
}

impl MarketRun {
    /// Settled deals per second of round execution.
    pub fn settled_per_sec(&self) -> f64 {
        let secs = self.execute.as_secs_f64();
        if secs > 0.0 {
            f64::from(self.report.settled) / secs
        } else {
            0.0
        }
    }
}

/// Runs one market to completion.
///
/// The worker count and trace mode in `cfg` affect only wall-clock time;
/// the returned report is byte-identical for any values of either.
pub fn run_market(cfg: &MarketConfig) -> MarketRun {
    cfg.validate();
    let rounds = cfg.rounds();
    // One price sample per round sizes each deal from its start round; the
    // strict accessor turns a mis-computed horizon into an immediate panic.
    let path = PricePath::gbm(100.0, 0.0, 0.6, 1.0 / 365.0, rounds as usize, cfg.seed);
    let all_deals = deals::generate(cfg, &path);
    let per_shard = deals::split_by_home(all_deals, cfg.shards);
    // Worst case two contracts per deal land on one shard.
    let contract_estimate = 2 * cfg.deals as usize;

    let setup_start = Instant::now();
    let mut shards: Vec<Shard> =
        (0..cfg.shards).map(|id| Shard::new(id, cfg, contract_estimate)).collect();
    for (shard, deals) in shards.iter_mut().zip(per_shard) {
        shard.assign_deals(deals);
    }
    let setup = setup_start.elapsed();

    let execute_start = Instant::now();
    let workers = cfg.workers.max(1) as usize;
    for round in 0..rounds {
        run_on_workers(&mut shards, workers, |shard| shard.run_round(round));
        deliver_batches(&mut shards);
    }
    let execute = execute_start.elapsed();

    MarketRun { report: build_report(cfg, rounds, &shards), setup, execute }
}

/// Runs `f` once per shard, fanned out over at most `workers` scoped
/// threads owning disjoint chunks. One worker runs inline on the caller's
/// thread path to keep the sequential baseline allocation-free.
fn run_on_workers<F>(shards: &mut [Shard], workers: usize, f: F)
where
    F: Fn(&mut Shard) + Sync,
{
    let workers = workers.clamp(1, shards.len().max(1));
    if workers == 1 {
        for shard in shards.iter_mut() {
            f(shard);
        }
        return;
    }
    let chunk = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for slice in shards.chunks_mut(chunk) {
            scope.spawn(|| {
                for shard in slice {
                    f(shard);
                }
            });
        }
    });
}

/// The round barrier: moves every outbox message into its target inbox.
/// Source shards drain in id order and each outbox preserves emission
/// order, so inbox contents are deterministic regardless of which worker
/// ran which shard.
fn deliver_batches(shards: &mut [Shard]) {
    for source in 0..shards.len() {
        for envelope in shards[source].take_outbox() {
            shards[envelope.target as usize].push_inbox(envelope.msg);
        }
    }
}

fn leg_addr(shards: &[Shard], deal: u32, leg: LegRef) -> Result<ContractAddr, String> {
    shards.get(leg.shard as usize).and_then(|s| s.leg_addr(deal, leg.leg)).ok_or_else(|| {
        format!("deal {deal}: leg {} never published on shard {}", leg.leg, leg.shard)
    })
}

fn hedged_leg_state(
    shards: &[Shard],
    deal: u32,
    leg: LegRef,
) -> Result<(HedgedPremiumState, HedgedPrincipalState), String> {
    let addr = leg_addr(shards, deal, leg)?;
    let contract = shards[leg.shard as usize]
        .chain()
        .contract_as::<HedgedEscrow>(addr.contract)
        .ok_or_else(|| format!("deal {deal}: leg {} is not a hedged escrow", leg.leg))?;
    Ok((contract.premium_state(), contract.principal_state()))
}

/// Checks one deal's terminal state; `Err` carries the violation.
fn verify_deal(shards: &[Shard], deal: &Deal) -> Result<(), String> {
    match &deal.expected {
        Expected::Hedged { deviation, legs } => {
            let leader = hedged_leg_state(shards, deal.id, legs[0])?;
            let follower = hedged_leg_state(shards, deal.id, legs[1])?;
            let expect = |name: &str,
                          got: (HedgedPremiumState, HedgedPrincipalState),
                          premium: HedgedPremiumState,
                          principal: HedgedPrincipalState|
             -> Result<(), String> {
                if got != (premium, principal) {
                    return Err(format!(
                        "deal {} ({deviation:?}): {name} leg ended {:?}/{:?}, expected \
                         {premium:?}/{principal:?}",
                        deal.id, got.0, got.1
                    ));
                }
                Ok(())
            };
            match deviation {
                HedgedDeviation::Clean => {
                    expect(
                        "leader",
                        leader,
                        HedgedPremiumState::Refunded,
                        HedgedPrincipalState::Redeemed,
                    )?;
                    expect(
                        "follower",
                        follower,
                        HedgedPremiumState::Refunded,
                        HedgedPrincipalState::Redeemed,
                    )
                }
                HedgedDeviation::FollowerWalks => {
                    // The sore loser's unfunded leg refunds the leader's
                    // premium; the leader's locked leg pays `p_b` out as
                    // compensation — the hedged-theorem payoff.
                    expect(
                        "follower",
                        follower,
                        HedgedPremiumState::Refunded,
                        HedgedPrincipalState::NotEscrowed,
                    )?;
                    expect(
                        "leader",
                        leader,
                        HedgedPremiumState::PaidToEscrower,
                        HedgedPrincipalState::Refunded,
                    )
                }
                HedgedDeviation::LeaderWalks => {
                    expect(
                        "leader",
                        leader,
                        HedgedPremiumState::PaidToEscrower,
                        HedgedPrincipalState::Refunded,
                    )?;
                    expect(
                        "follower",
                        follower,
                        HedgedPremiumState::PaidToEscrower,
                        HedgedPrincipalState::Refunded,
                    )
                }
            }
        }
        Expected::Ring { legs } => {
            for leg in legs {
                let addr = leg_addr(shards, deal.id, *leg)?;
                let state = shards[leg.shard as usize]
                    .chain()
                    .contract_as::<HtlcEscrow>(addr.contract)
                    .ok_or_else(|| format!("deal {}: leg {} is not an HTLC", deal.id, leg.leg))?
                    .state();
                if state != HtlcState::Redeemed {
                    return Err(format!(
                        "deal {}: ring leg {} ended {state:?}, expected Redeemed",
                        deal.id, leg.leg
                    ));
                }
            }
            Ok(())
        }
        Expected::Auction { coin, ticket, winner, winning_bid } => {
            let coin_addr = leg_addr(shards, deal.id, *coin)?;
            let outcome = shards[coin.shard as usize]
                .chain()
                .contract_as::<AuctionCoinContract>(coin_addr.contract)
                .ok_or_else(|| format!("deal {}: coin leg missing", deal.id))?
                .outcome();
            let expected = AuctionOutcome::Completed { winner: *winner, winning_bid: *winning_bid };
            if outcome != Some(expected) {
                return Err(format!(
                    "deal {}: auction ended {outcome:?}, expected {expected:?}",
                    deal.id
                ));
            }
            let ticket_addr = leg_addr(shards, deal.id, *ticket)?;
            let tickets = shards[ticket.shard as usize]
                .chain()
                .contract_as::<AuctionTicketContract>(ticket_addr.contract)
                .ok_or_else(|| format!("deal {}: ticket leg missing", deal.id))?;
            if !tickets.settled() || tickets.winner() != Some(*winner) {
                return Err(format!(
                    "deal {}: tickets went to {:?}, expected {winner}",
                    deal.id,
                    tickets.winner()
                ));
            }
            Ok(())
        }
    }
}

fn build_report(cfg: &MarketConfig, rounds: u32, shards: &[Shard]) -> MarketReport {
    let mut settled = 0u32;
    let mut settled_by_kind = SettledByKind::default();
    let mut settled_per_shard = vec![0u32; shards.len()];
    let mut latencies: Vec<u32> = Vec::new();
    let mut violations = 0u32;
    let mut violation_details: Vec<String> = Vec::new();
    let record = |violation: String, violations: &mut u32, details: &mut Vec<String>| {
        *violations += 1;
        if details.len() < MAX_REPORTED_VIOLATIONS {
            details.push(violation);
        }
    };

    for shard in shards {
        for deal in shard.deals() {
            match verify_deal(shards, deal) {
                Ok(()) => {
                    settled += 1;
                    settled_per_shard[shard.id() as usize] += 1;
                    latencies.push(deal.latency_rounds());
                    match deal.kind {
                        DealKind::HedgedSwap => settled_by_kind.hedged_swap += 1,
                        DealKind::Cycle3 => settled_by_kind.cycle3 += 1,
                        DealKind::Auction => settled_by_kind.auction += 1,
                        DealKind::Brokered => settled_by_kind.brokered += 1,
                    }
                }
                Err(detail) => record(detail, &mut violations, &mut violation_details),
            }
        }
        for failure in shard.failures() {
            record(failure.clone(), &mut violations, &mut violation_details);
        }
    }

    let meterings: Vec<ShardMetering> =
        shards.iter().map(|s| metering::meter_shard(s, cfg.endowment, cfg.gas_price)).collect();
    for (shard, m) in shards.iter().zip(&meterings) {
        for violation in metering::conservation_violations(m, shard.minted_per_asset()) {
            record(violation, &mut violations, &mut violation_details);
        }
    }

    latencies.sort_unstable();
    let gas_total: u64 = meterings.iter().map(|m| m.gas).sum();
    let reorg_stats: Vec<chainsim::ReorgStats> = shards.iter().map(Shard::reorg_stats).collect();
    MarketReport {
        seed: cfg.seed,
        shards: cfg.shards,
        accounts: cfg.accounts,
        deals: cfg.deals,
        deals_per_round: cfg.deals_per_round,
        delta_blocks: cfg.delta_blocks,
        gas_price: cfg.gas_price,
        walkaway_percent: cfg.walkaway_percent,
        reorg_interval: cfg.reorg_interval,
        reorg_depth: cfg.reorg_depth,
        rounds,
        settled,
        settled_by_kind,
        violations,
        violation_details,
        latency_p50_rounds: percentile(&latencies, 50),
        latency_p99_rounds: percentile(&latencies, 99),
        latency_max_rounds: latencies.last().copied().unwrap_or(0),
        gas_total,
        gas_per_deal: gas_total / u64::from(cfg.deals.max(1)),
        fees_total: meterings.iter().map(|m| m.fees).sum(),
        calls: meterings.iter().map(|m| m.calls).sum(),
        failed_calls: meterings.iter().map(|m| m.failed_calls).sum(),
        reorgs: reorg_stats.iter().map(|r| r.reorgs).sum(),
        reorg_rewound_calls: reorg_stats.iter().map(|r| r.rewound_calls).sum(),
        reorg_redelivered_calls: reorg_stats.iter().map(|r| r.redelivered_calls).sum(),
        reorg_redelivery_failures: reorg_stats.iter().map(|r| r.redelivery_failures).sum(),
        shard_summaries: shards
            .iter()
            .zip(&meterings)
            .map(|(shard, m)| ShardSummary {
                shard: shard.id(),
                deals_home: shard.deals().len() as u32,
                settled_home: settled_per_shard[shard.id() as usize],
                gas: m.gas,
                fees: m.fees,
                calls: m.calls,
                failed_calls: m.failed_calls,
                token_supply: m.token_supply,
                native_supply: m.native_supply,
                contract_residue: m.contract_residue,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsim::TraceMode;

    fn smoke_cfg() -> MarketConfig {
        MarketConfig {
            seed: 11,
            shards: 3,
            accounts: 200,
            deals: 60,
            deals_per_round: 10,
            workers: 1,
            trace: TraceMode::Off,
            ..MarketConfig::default()
        }
    }

    #[test]
    fn smoke_market_settles_every_deal() {
        let run = run_market(&smoke_cfg());
        let report = &run.report;
        assert_eq!(report.violations, 0, "violations: {:?}", report.violation_details);
        assert_eq!(report.settled, 60);
        assert_eq!(report.failed_calls, 0);
        assert!(report.gas_total > 0);
        assert!(report.latency_p50_rounds >= 5);
        assert!(report.latency_max_rounds <= 8);
        let by_kind = report.settled_by_kind;
        assert_eq!(by_kind.hedged_swap + by_kind.cycle3 + by_kind.auction + by_kind.brokered, 60);
    }

    #[test]
    fn single_shard_market_settles() {
        let cfg = MarketConfig { shards: 1, deals: 30, ..smoke_cfg() };
        let run = run_market(&cfg);
        assert_eq!(run.report.violations, 0, "{:?}", run.report.violation_details);
        assert_eq!(run.report.settled, 30);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let base = run_market(&smoke_cfg()).report;
        for workers in [2, 4] {
            let cfg = MarketConfig { workers, ..smoke_cfg() };
            let run = run_market(&cfg);
            assert_eq!(run.report, base, "workers={workers} diverged");
            assert_eq!(run.report.canonical_string(), base.canonical_string());
        }
    }

    #[test]
    fn trace_mode_does_not_change_the_report() {
        let base = run_market(&smoke_cfg()).report;
        let cfg = MarketConfig { trace: TraceMode::Full, workers: 2, ..smoke_cfg() };
        assert_eq!(run_market(&cfg).report.digest(), base.digest());
    }

    fn reorg_cfg() -> MarketConfig {
        MarketConfig { reorg_interval: 3, reorg_depth: 1, ..smoke_cfg() }
    }

    #[test]
    fn depth_one_reorgs_are_observationally_harmless() {
        // A depth-1 redelivering reorg rewinds only the open round and
        // replays it verbatim, so settlement must match the no-reorg
        // baseline exactly — only the reorg counters (and the config echo)
        // may differ.
        let baseline = run_market(&smoke_cfg()).report;
        let report = run_market(&reorg_cfg()).report;
        assert!(report.reorgs > 0, "the injector never fired");
        assert_eq!(report.reorg_redelivered_calls, report.reorg_rewound_calls);
        assert_eq!(report.reorg_redelivery_failures, 0);
        assert_eq!(report.violations, 0, "violations: {:?}", report.violation_details);
        assert_eq!(report.settled, baseline.settled);
        assert_eq!(report.settled_by_kind, baseline.settled_by_kind);
        assert_eq!(report.latency_p50_rounds, baseline.latency_p50_rounds);
        assert_eq!(report.latency_max_rounds, baseline.latency_max_rounds);
        assert_eq!(report.shard_summaries, baseline.shard_summaries);
    }

    #[test]
    fn depth_two_reorgs_degrade_unmargined_deals_deterministically() {
        // Market deal plans are compiled without a finality margin, so a
        // depth-2 reorg re-delivers deadline-tight calls up to one round
        // late and some deals miss their windows — the market-scale echo of
        // the zero-margin sore-loser-by-reorg violation the sampled tier
        // pins (and that `finality_margin ≥ depth − 1` repairs there). The
        // degradation must be loud (counted, reported) and reproducible.
        let cfg = MarketConfig { reorg_depth: 2, ..reorg_cfg() };
        let report = run_market(&cfg).report;
        assert!(report.reorgs > 0);
        assert!(report.reorg_rewound_calls > 0, "depth-2 reorgs must rewind work");
        assert!(report.reorg_redelivery_failures > 0, "late re-delivery must miss deadlines");
        assert!(report.violations > 0, "missed deadlines must surface as violations");
        assert!(report.settled < 60 && report.settled > 0, "settled {}", report.settled);
        // Deterministic degradation: the same seed reproduces the same report.
        assert_eq!(run_market(&cfg).report, report);
    }

    #[test]
    fn worker_count_does_not_change_the_report_under_reorgs() {
        let cfg = MarketConfig { reorg_depth: 2, ..reorg_cfg() };
        let base = run_market(&cfg).report;
        assert!(base.reorgs > 0, "the injector never fired");
        for workers in [2, 4, 8] {
            let run = run_market(&MarketConfig { workers, ..cfg.clone() });
            assert_eq!(run.report, base, "workers={workers} diverged under reorgs");
            assert_eq!(run.report.canonical_string(), base.canonical_string());
        }
    }

    #[test]
    fn different_seeds_produce_different_markets() {
        let a = run_market(&smoke_cfg()).report;
        let b = run_market(&MarketConfig { seed: 12, ..smoke_cfg() }).report;
        assert_ne!(a.digest(), b.digest());
    }
}
