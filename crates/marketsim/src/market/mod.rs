//! Market-scale settlement engine: thousands of interleaved deals on shared,
//! per-chain-sharded ledgers.
//!
//! Every sweep family in this workspace builds a private [`chainsim::World`]
//! per scenario. Production cross-chain markets are the opposite: many
//! overlapping hedged swaps, multi-party cycles, auctions and brokered sales
//! contend on the *same* ledgers with hundreds of thousands of accounts.
//! This module is that workload:
//!
//! * [`shard`] — one worker-owned [`chainsim::World`] per chain shard.
//!   Cross-chain emissions are queued into per-round batches and delivered
//!   at round boundaries in shard-id order, preserving the Δ-synchronous
//!   semantics (an action emitted in round `r` lands on the remote chain in
//!   round `r + 1`, within Δ) while keeping execution deterministic by
//!   construction for every worker count.
//! * [`deals`] — deal instances drawn from a seed-pinned SplitMix64 mix:
//!   two-party hedged swaps (§5.2, including scripted sore-loser
//!   walk-aways), three-party HTLC cycles, hedged auctions (§9) and
//!   brokered sales, each compiled at spawn into a per-round action plan.
//! * [`driver`] — the round loop: fork-join workers over disjoint shard
//!   chunks, then a single-threaded batch merge.
//! * [`metering`] — gas → fees → payoffs: per-shard gas totals folded into
//!   fee-adjusted conservation checks.
//! * [`report`] — the canonical settlement report: settled-deals count,
//!   latency percentiles, gas-per-deal and a digest that must be
//!   byte-identical across worker counts at the same seed.

pub mod deals;
pub mod driver;
pub mod metering;
pub mod report;
pub mod shard;

pub use driver::run_market;
pub use report::{MarketReport, ShardSummary};

use chainsim::TraceMode;
use serde::{Deserialize, Serialize};

/// Configuration of one market run.
///
/// Every field except `workers` and `trace` participates in the settlement
/// report's canonical string; those two are execution knobs the engine
/// guarantees cannot change the report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Seed of the SplitMix64 streams that draw the deal mix.
    pub seed: u64,
    /// Number of chain shards (one chain, one world, one owning worker slot
    /// per shard).
    pub shards: u32,
    /// Size of the shared account pool; every account is materialised on
    /// every shard with both endowments.
    pub accounts: u32,
    /// Total number of deal instances to schedule.
    pub deals: u32,
    /// How many deals start per round (spread deals over time to create
    /// sustained contention instead of one burst).
    pub deals_per_round: u32,
    /// The synchrony bound Δ in blocks; one driver round advances every
    /// shard by Δ.
    pub delta_blocks: u64,
    /// Worker threads executing shard rounds. Must not change the report.
    pub workers: u32,
    /// Event tracing mode of the shard worlds. Must not change the report.
    pub trace: TraceMode,
    /// Fee per unit of gas, folded into party payoffs by [`metering`].
    pub gas_price: u64,
    /// Per-account endowment of both the shard token and the shard native
    /// currency, on every shard. Large enough that overlapping deals never
    /// fail on balance.
    pub endowment: u128,
    /// Percent (0–100) of hedged swaps whose follower walks away after the
    /// premium phase, and the same share whose leader walks away after
    /// escrow — the scripted sore-loser load.
    pub walkaway_percent: u8,
    /// Mean rounds between reorgs per shard (0 = no reorg injection). When
    /// non-zero, each shard fires a redelivering reorg in any round where a
    /// pure hash of `(seed, shard, round)` lands in the `1/reorg_interval`
    /// bucket — a function of nothing else, so injection is byte-identical
    /// across worker counts by construction.
    #[serde(default)]
    pub reorg_interval: u32,
    /// Finality-window depth of every shard chain, and the depth of each
    /// injected reorg (0 = instant finality, required when
    /// `reorg_interval` is 0-free). Depth 1 rewinds and replays only the
    /// open round — observationally identical settlement with non-zero
    /// reorg counters; deeper reorgs re-deliver earlier rounds' calls up to
    /// `depth − 1` rounds late.
    #[serde(default)]
    pub reorg_depth: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            seed: 0xC0FFEE,
            shards: 4,
            accounts: 4_000,
            deals: 200,
            deals_per_round: 16,
            delta_blocks: 2,
            workers: 1,
            trace: TraceMode::Off,
            gas_price: 3,
            endowment: 1_000_000_000,
            walkaway_percent: 10,
            reorg_interval: 0,
            reorg_depth: 0,
        }
    }
}

impl MarketConfig {
    /// The number of driver rounds a run with this config executes: enough
    /// for the last-spawned deal to finish its longest possible plan.
    pub fn rounds(&self) -> u32 {
        let last_start =
            if self.deals == 0 { 0 } else { (self.deals - 1) / self.deals_per_round.max(1) };
        last_start + deals::MAX_SETTLE_OFFSET + 2
    }

    /// Validates the knobs that the engine's invariants rely on.
    ///
    /// # Panics
    ///
    /// Panics on an empty market (zero shards or accounts), a pool too small
    /// to draw distinct parties from, or a walk-away share above 100%.
    pub fn validate(&self) {
        assert!(self.shards > 0, "market needs at least one shard");
        assert!(self.accounts >= 8, "market needs at least 8 pooled accounts");
        assert!(self.delta_blocks > 0, "Δ must be at least one block");
        assert!(self.walkaway_percent <= 100, "walk-away share is a percent");
        assert!(self.endowment > 0, "parties need endowments");
        assert!(
            self.reorg_interval == 0 || self.reorg_depth > 0,
            "reorg injection needs a non-zero reorg depth"
        );
    }
}

/// The SplitMix64 finalizer: the same stream generator the sampled
/// model-checking tier pins its seeds with, reused so market mixes are
/// reproducible from `(seed, deal index)` alone.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_stream() {
        // First values of SplitMix64 with seed 0, as published by Vigna.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn rounds_cover_the_last_deal() {
        let cfg = MarketConfig { deals: 100, deals_per_round: 10, ..MarketConfig::default() };
        assert!(cfg.rounds() > 9 + deals::MAX_SETTLE_OFFSET);
        let one = MarketConfig { deals: 1, deals_per_round: 10, ..MarketConfig::default() };
        assert_eq!(one.rounds(), deals::MAX_SETTLE_OFFSET + 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn validate_rejects_zero_shards() {
        MarketConfig { shards: 0, ..MarketConfig::default() }.validate();
    }
}
