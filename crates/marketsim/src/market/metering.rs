//! Gas → fees → conservation: the per-shard accounting pass.
//!
//! Gas is metered by [`chainsim`] per contract call (a pure function of the
//! call's semantics) and folded into party payoffs here as virtual fees at
//! the configured gas price. Fees are *metered, never ledger-deducted*, so
//! two conservation laws must hold on every shard after a run:
//!
//! * raw conservation — per asset, the ledger's total supply still equals
//!   what setup minted, and no contract account retains a balance once all
//!   deals have settled;
//! * fee-adjusted conservation — the parties' aggregate ledger position is
//!   zero-sum (transfers only move value), so their aggregate *fee-adjusted*
//!   payoff is exactly `-fees`: the market as a whole pays the chains, and
//!   nothing else leaks.

use chainsim::AccountRef;

use super::shard::{Shard, NATIVE_ASSET, TOKEN_ASSET};

/// The accounting summary of one shard after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMetering {
    /// The shard id.
    pub shard: u32,
    /// Total gas metered on the shard's chain.
    pub gas: u64,
    /// `gas × gas_price`: the virtual fees charged to this shard's callers.
    pub fees: u128,
    /// Contract calls executed.
    pub calls: u64,
    /// Contract calls that failed (zero on a correct run).
    pub failed_calls: u64,
    /// End-of-run total supply of the shard token.
    pub token_supply: u128,
    /// End-of-run total supply of the native currency.
    pub native_supply: u128,
    /// Units (any asset) still sitting in contract accounts.
    pub contract_residue: u128,
    /// Net aggregate party position in the shard token (must be zero).
    pub net_token: i128,
    /// Net aggregate party position in the native currency (must be zero).
    pub net_native: i128,
}

impl ShardMetering {
    /// The parties' aggregate fee-adjusted payoff: ledger position net of
    /// the virtual fees. Equals `-fees` exactly when transfers conserved.
    pub fn fee_adjusted_net(&self) -> i128 {
        self.net_token + self.net_native - self.fees as i128
    }
}

/// Measures one shard: gas totals, supplies and aggregate party positions
/// relative to the minted endowment.
pub fn meter_shard(shard: &Shard, endowment: u128, gas_price: u64) -> ShardMetering {
    let chain = shard.chain();
    let ledger = chain.ledger();
    let gas = chain.gas_meter().total();

    let mut contract_residue: u128 = 0;
    let mut net_token: i128 = 0;
    let mut net_native: i128 = 0;
    for (account, asset, amount) in ledger.iter() {
        match account {
            AccountRef::Contract(_) => contract_residue += amount.value(),
            AccountRef::Party(_) => {
                let delta = amount.value() as i128 - endowment as i128;
                if asset == TOKEN_ASSET {
                    net_token += delta;
                } else if asset == NATIVE_ASSET {
                    net_native += delta;
                }
            }
        }
    }

    ShardMetering {
        shard: shard.id(),
        gas,
        fees: u128::from(gas) * u128::from(gas_price),
        calls: shard.calls(),
        failed_calls: shard.failed_calls(),
        token_supply: ledger.total_supply(TOKEN_ASSET).value(),
        native_supply: ledger.total_supply(NATIVE_ASSET).value(),
        contract_residue,
        net_token,
        net_native,
    }
}

/// Checks both conservation laws against the shard's minted baseline,
/// returning one violation string per broken invariant.
pub fn conservation_violations(m: &ShardMetering, minted_per_asset: u128) -> Vec<String> {
    let mut violations = Vec::new();
    if m.token_supply != minted_per_asset {
        violations.push(format!(
            "shard {}: token supply {} != minted {minted_per_asset}",
            m.shard, m.token_supply
        ));
    }
    if m.native_supply != minted_per_asset {
        violations.push(format!(
            "shard {}: native supply {} != minted {minted_per_asset}",
            m.shard, m.native_supply
        ));
    }
    if m.contract_residue != 0 {
        violations.push(format!(
            "shard {}: {} units stranded in contract accounts",
            m.shard, m.contract_residue
        ));
    }
    if m.net_token != 0 || m.net_native != 0 {
        violations.push(format!(
            "shard {}: party positions not zero-sum (token {}, native {})",
            m.shard, m.net_token, m.net_native
        ));
    }
    if m.fee_adjusted_net() != -(m.fees as i128) {
        violations.push(format!(
            "shard {}: fee-adjusted net {} != -fees {}",
            m.shard,
            m.fee_adjusted_net(),
            m.fees
        ));
    }
    if m.failed_calls != 0 {
        violations.push(format!("shard {}: {} failed contract calls", m.shard, m.failed_calls));
    }
    violations
}
