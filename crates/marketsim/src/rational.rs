//! Rational (price-driven) sore losers: base vs hedged swap success rates.
//!
//! A rational counterparty does not deviate out of spite; it deviates when
//! the market has moved against the deal by more than the deviation costs.
//! In the unhedged base protocol the cost of walking away is zero, so any
//! adverse move triggers an abort. In the hedged protocol walking away
//! forfeits a premium, so only moves larger than the premium do. This module
//! quantifies that difference, in the spirit of the game-theoretic analyses
//! the paper cites (Xu et al.).

use serde::{Deserialize, Serialize};

use crate::PricePath;
use protocols::script::Strategy;
use protocols::two_party::{run_base_swap, run_hedged_swap, TwoPartyConfig};

/// Parameters of a rational-agent experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RationalExperiment {
    /// Number of simulated swaps.
    pub trials: usize,
    /// Annualised volatility of Bob's (banana) asset relative to Alice's.
    pub volatility: f64,
    /// Duration of one protocol step (Δ) in years.
    pub step_years: f64,
    /// Premium charged in the hedged protocol, as a fraction of the
    /// principal (e.g. `0.02` for 2%).
    pub premium_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RationalExperiment {
    fn default() -> Self {
        RationalExperiment {
            trials: 200,
            volatility: 0.8,
            step_years: 12.0 / 24.0 / 365.0, // Δ = 12 hours
            premium_fraction: 0.02,
            seed: 42,
        }
    }
}

/// Results of a rational-agent experiment for one protocol variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RationalOutcome {
    /// Fraction of swaps that completed.
    pub success_rate: f64,
    /// Average payoff (in token units) of the compliant party per aborted swap.
    pub mean_compliant_payoff_on_abort: f64,
    /// Number of aborted swaps.
    pub aborts: usize,
}

/// Results for both protocol variants side by side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RationalComparison {
    /// The unhedged §5.1 baseline.
    pub base: RationalOutcome,
    /// The hedged §5.2 protocol.
    pub hedged: RationalOutcome,
}

/// Runs the experiment: in each trial the relative price of Bob's asset
/// follows a GBM over the protocol steps; Bob walks away (at his escrow
/// step) when the value he would receive has dropped by more than his
/// deviation cost (zero in the base protocol, the premium in the hedged
/// protocol). Alice stays compliant throughout.
pub fn compare_protocols(experiment: &RationalExperiment) -> RationalComparison {
    let principal = 100u128;
    let premium = ((principal as f64) * experiment.premium_fraction).round().max(1.0) as u128;
    let config = TwoPartyConfig {
        alice_tokens: chainsim::Amount::new(principal),
        bob_tokens: chainsim::Amount::new(principal),
        premium_a: chainsim::Amount::new(premium),
        premium_b: chainsim::Amount::new(premium),
        delta_blocks: 2,
        ..TwoPartyConfig::default()
    };

    let mut base = RationalOutcome::default();
    let mut hedged = RationalOutcome::default();
    let mut base_successes = 0usize;
    let mut hedged_successes = 0usize;
    let mut base_abort_payoff = 0.0;
    let mut hedged_abort_payoff = 0.0;

    for trial in 0..experiment.trials {
        // Price of Alice's asset in units of Bob's asset, observed by Bob at
        // his decision point (protocol step 3 of 6).
        let path = PricePath::gbm(
            1.0,
            0.0,
            experiment.volatility,
            experiment.step_years,
            6,
            experiment.seed.wrapping_add(trial as u64),
        );
        let drop = -path.relative_return(0, 3);

        // Base protocol: Bob aborts on any adverse move (he loses nothing).
        let bob_aborts_base = drop > 0.0;
        let report = if bob_aborts_base {
            run_base_swap(&config, Strategy::compliant(), Strategy::stop_after(0))
        } else {
            run_base_swap(&config, Strategy::compliant(), Strategy::compliant())
        };
        if report.swap_completed {
            base_successes += 1;
        } else {
            base.aborts += 1;
            base_abort_payoff += (report.alice_premium_payoff + report.alice_banana_payoff) as f64;
        }

        // Hedged protocol: walking away costs Bob p_b, so he only aborts when
        // the adverse move exceeds the premium fraction.
        let bob_aborts_hedged = drop > experiment.premium_fraction;
        let report = if bob_aborts_hedged {
            run_hedged_swap(&config, Strategy::compliant(), Strategy::stop_after(1))
        } else {
            run_hedged_swap(&config, Strategy::compliant(), Strategy::compliant())
        };
        if report.swap_completed {
            hedged_successes += 1;
        } else {
            hedged.aborts += 1;
            hedged_abort_payoff +=
                (report.alice_premium_payoff + report.alice_banana_payoff) as f64;
        }
    }

    base.success_rate = base_successes as f64 / experiment.trials as f64;
    hedged.success_rate = hedged_successes as f64 / experiment.trials as f64;
    base.mean_compliant_payoff_on_abort =
        if base.aborts > 0 { base_abort_payoff / base.aborts as f64 } else { 0.0 };
    hedged.mean_compliant_payoff_on_abort =
        if hedged.aborts > 0 { hedged_abort_payoff / hedged.aborts as f64 } else { 0.0 };
    RationalComparison { base, hedged }
}

/// The result of a [`best_response`] hill-climb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClimbOutcome<S> {
    /// The best state found (the initial state if nothing improved on it).
    pub best: S,
    /// The score of `best`.
    pub best_score: i128,
    /// Total score evaluations performed (initial state + every proposal).
    pub evaluations: usize,
    /// Number of proposals that strictly improved the incumbent.
    pub improvements: usize,
}

/// Deterministic seeded hill-climbing best-response search over an abstract
/// deviation space.
///
/// Starting from `initial`, draws `budget` mutations from `propose` (each
/// fed the current incumbent and the shared seeded RNG) and keeps every one
/// that strictly improves `score`. The caller supplies the deviation space
/// and the deviator's utility; this module supplies the rational-adversary
/// loop, so the model checker can climb over delay/outage vectors with the
/// same machinery the price-driven experiments use for abort decisions.
///
/// Strict improvement keeps the climb deterministic and terminating for any
/// scoring function; ties stay with the incumbent (earliest-found wins),
/// so identical `(initial, seed, budget)` inputs always reproduce the same
/// trajectory.
pub fn best_response<S: Clone>(
    initial: S,
    seed: u64,
    budget: usize,
    mut score: impl FnMut(&S) -> i128,
    mut propose: impl FnMut(&S, &mut rand::rngs::StdRng) -> S,
) -> ClimbOutcome<S> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut best = initial;
    let mut best_score = score(&best);
    let mut evaluations = 1usize;
    let mut improvements = 0usize;
    for _ in 0..budget {
        let candidate = propose(&best, &mut rng);
        let candidate_score = score(&candidate);
        evaluations += 1;
        if candidate_score > best_score {
            best = candidate;
            best_score = candidate_score;
            improvements += 1;
        }
    }
    ClimbOutcome { best, best_score, evaluations, improvements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_response_climbs_to_the_peak_and_is_deterministic() {
        // Score is a tent function over 0..=100 peaking at 63; proposals
        // nudge by ±1..=8. The climb must reach the peak from any start.
        let climb = |seed: u64| {
            best_response(
                0i128,
                seed,
                400,
                |&x| -(x - 63).abs(),
                |&x, rng| {
                    use rand::Rng;
                    let step = rng.gen_range(1..9i128);
                    if rng.gen_bool(0.5) {
                        (x + step).min(100)
                    } else {
                        (x - step).max(0)
                    }
                },
            )
        };
        let outcome = climb(7);
        assert_eq!(outcome.best, 63);
        assert_eq!(outcome.best_score, 0);
        assert_eq!(outcome.evaluations, 401);
        assert!(outcome.improvements > 0);
        // Seed-pinned determinism: the same climb twice is bit-identical.
        let again = climb(7);
        assert_eq!(outcome, again);
    }

    #[test]
    fn hedging_improves_success_rate_and_compensates_aborts() {
        let comparison =
            compare_protocols(&RationalExperiment { trials: 60, ..RationalExperiment::default() });
        assert!(
            comparison.hedged.success_rate >= comparison.base.success_rate,
            "hedging must not reduce the success rate: {comparison:?}"
        );
        // With zero deviation cost, roughly half of all trials abort.
        assert!(comparison.base.success_rate < 0.95);
        // When hedged swaps do abort, the compliant party is compensated.
        if comparison.hedged.aborts > 0 {
            assert!(comparison.hedged.mean_compliant_payoff_on_abort > 0.0);
        }
        // Base-protocol aborts leave the compliant party with nothing.
        if comparison.base.aborts > 0 {
            assert!(comparison.base.mean_compliant_payoff_on_abort.abs() < f64::EPSILON);
        }
    }

    #[test]
    fn higher_volatility_lowers_base_success_rate() {
        let calm = compare_protocols(&RationalExperiment {
            trials: 60,
            volatility: 0.1,
            ..RationalExperiment::default()
        });
        let wild = compare_protocols(&RationalExperiment {
            trials: 60,
            volatility: 2.5,
            ..RationalExperiment::default()
        });
        assert!(wild.hedged.success_rate <= calm.hedged.success_rate + 0.2);
        assert!(calm.base.success_rate <= 1.0);
    }
}
