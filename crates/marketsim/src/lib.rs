//! Market simulation: price paths, rational sore losers and premium adequacy.
//!
//! The sore-loser attack is only interesting because asset prices move while
//! a swap is in flight (§1 of the paper): a party walks away when the deal
//! has become unfavourable. This crate provides the synthetic market the
//! evaluation needs:
//!
//! * [`PricePath`] — geometric-Brownian-motion price paths;
//! * [`rational`] — rational (price-driven) deviation experiments comparing
//!   the unhedged base swap with the hedged swap: how often does a rational
//!   counterparty walk away, and what does the compliant party lose?
//! * [`adequacy`] — Cox-Ross-Rubinstein premium adequacy: how large a
//!   premium is economically justified for a given lock-up and volatility.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub mod adequacy;
pub mod market;
pub mod rational;

/// A simulated price path for one asset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PricePath {
    prices: Vec<f64>,
}

impl PricePath {
    /// Simulates a geometric Brownian motion with `steps + 1` samples.
    ///
    /// `drift` and `volatility` are per-year; `step_years` is the duration
    /// of one step in years. The path is deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `initial <= 0`, `volatility < 0` or `step_years <= 0`.
    pub fn gbm(
        initial: f64,
        drift: f64,
        volatility: f64,
        step_years: f64,
        steps: usize,
        seed: u64,
    ) -> Self {
        assert!(initial > 0.0, "initial price must be positive");
        assert!(volatility >= 0.0, "volatility must be non-negative");
        assert!(step_years > 0.0, "step duration must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prices = Vec::with_capacity(steps + 1);
        let mut price = initial;
        prices.push(price);
        for _ in 0..steps {
            // Box-Muller from two uniforms keeps the dependency surface small.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let exponent = (drift - 0.5 * volatility * volatility) * step_years
                + volatility * step_years.sqrt() * z;
            price *= exponent.exp();
            prices.push(price);
        }
        PricePath { prices }
    }

    /// The price at step `index` (clamped to the final sample).
    ///
    /// Clamping suits open-ended evaluation loops ("the price after the
    /// horizon stays at the final sample"); code that derives `index` from a
    /// bounded schedule should prefer [`PricePath::at_strict`], where an
    /// out-of-range index is a bug and fails loudly instead of silently
    /// repeating the last price.
    pub fn at(&self, index: usize) -> f64 {
        let idx = index.min(self.prices.len() - 1);
        self.prices[idx]
    }

    /// The price at step `index`, or `None` if the path has no such sample.
    pub fn try_at(&self, index: usize) -> Option<f64> {
        self.prices.get(index).copied()
    }

    /// The price at step `index`, panicking on out-of-range indices.
    ///
    /// The market driver sizes deals from the price at each deal's start
    /// round; an index past the simulated horizon there means the horizon
    /// was computed wrong, which this surfaces immediately.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn at_strict(&self, index: usize) -> f64 {
        self.try_at(index).unwrap_or_else(|| {
            panic!("price index {index} out of range for a path of {} samples", self.prices.len())
        })
    }

    /// The number of samples in the path.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Returns `true` if the path has no samples (never true for [`PricePath::gbm`]).
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// The relative return between two steps: `price(to) / price(from) - 1`.
    ///
    /// Both indices are clamped like [`PricePath::at`]; use
    /// [`PricePath::relative_return_strict`] when the indices come from a
    /// bounded schedule.
    pub fn relative_return(&self, from: usize, to: usize) -> f64 {
        self.at(to) / self.at(from) - 1.0
    }

    /// The relative return between two steps, panicking on out-of-range
    /// indices; see [`PricePath::at_strict`].
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn relative_return_strict(&self, from: usize, to: usize) -> f64 {
        self.at_strict(to) / self.at_strict(from) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbm_paths_are_deterministic_per_seed() {
        let a = PricePath::gbm(100.0, 0.0, 0.5, 1.0 / 365.0, 10, 7);
        let b = PricePath::gbm(100.0, 0.0, 0.5, 1.0 / 365.0, 10, 7);
        let c = PricePath::gbm(100.0, 0.0, 0.5, 1.0 / 365.0, 10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 11);
        assert!(!a.is_empty());
    }

    #[test]
    fn gbm_prices_stay_positive() {
        let path = PricePath::gbm(50.0, 0.0, 1.5, 1.0 / 52.0, 200, 3);
        for i in 0..path.len() {
            assert!(path.at(i) > 0.0);
        }
    }

    #[test]
    fn zero_volatility_paths_follow_drift() {
        let flat = PricePath::gbm(100.0, 0.0, 0.0, 1.0 / 365.0, 5, 1);
        assert!((flat.at(5) - 100.0).abs() < 1e-9);
        let up = PricePath::gbm(100.0, 1.0, 0.0, 1.0, 1, 1);
        assert!(up.at(1) > 100.0);
    }

    #[test]
    fn relative_return_and_clamping() {
        let path = PricePath::gbm(100.0, 0.0, 0.3, 1.0 / 365.0, 4, 9);
        assert_eq!(path.at(99), path.at(4));
        let r = path.relative_return(0, 4);
        assert!(r > -1.0);
    }

    #[test]
    fn strict_accessors_agree_in_range() {
        let path = PricePath::gbm(100.0, 0.0, 0.3, 1.0 / 365.0, 4, 9);
        for i in 0..path.len() {
            assert_eq!(path.at_strict(i), path.at(i));
            assert_eq!(path.try_at(i), Some(path.at(i)));
        }
        assert_eq!(path.try_at(path.len()), None);
        assert_eq!(path.relative_return_strict(0, 4), path.relative_return(0, 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_strict_rejects_out_of_range() {
        let path = PricePath::gbm(100.0, 0.0, 0.3, 1.0 / 365.0, 4, 9);
        let _ = path.at_strict(5);
    }

    #[test]
    #[should_panic(expected = "initial price must be positive")]
    fn gbm_rejects_nonpositive_initial() {
        let _ = PricePath::gbm(0.0, 0.0, 0.5, 1.0, 1, 1);
    }
}
