//! Premium adequacy: what premium is economically justified for a lock-up.
//!
//! §4 of the paper suggests sizing premiums with the Cox-Ross-Rubinstein
//! model: the counterparty of an escrow effectively holds an option on the
//! escrowed asset for the lock-up duration, so fair compensation is that
//! option's value. This module sweeps lock-up durations and volatilities and
//! reports premium sizes as a fraction of the principal, confirming the
//! "premium ≪ principal" regime the protocols rely on.

use serde::{Deserialize, Serialize};
use swapgraph::pricing::{lockup_premium, PricingError};

/// One row of the adequacy sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdequacyRow {
    /// Lock-up duration in blocks.
    pub lockup_blocks: u64,
    /// Annualised volatility.
    pub volatility: f64,
    /// Fair premium as an absolute value (for a 100-unit principal).
    pub premium: f64,
    /// Fair premium as a fraction of the principal.
    pub premium_fraction: f64,
}

/// Computes the fair premium for a grid of lock-up durations and
/// volatilities, for a principal worth 100 units.
///
/// # Errors
///
/// Propagates [`PricingError`] if a grid point has invalid parameters
/// (which only happens for zero/negative inputs).
pub fn premium_grid(
    lockups: &[u64],
    volatilities: &[f64],
    blocks_per_year: u64,
) -> Result<Vec<AdequacyRow>, PricingError> {
    let principal = 100.0;
    let mut rows = Vec::new();
    for &lockup_blocks in lockups {
        for &volatility in volatilities {
            let premium = lockup_premium(principal, volatility, lockup_blocks, blocks_per_year)?;
            rows.push(AdequacyRow {
                lockup_blocks,
                volatility,
                premium,
                premium_fraction: premium / principal,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premiums_are_small_fractions_and_monotone() {
        let rows = premium_grid(&[12, 24, 48, 96], &[0.25, 0.5, 1.0], 24 * 365).unwrap();
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert!(row.premium_fraction > 0.0);
            assert!(row.premium_fraction < 0.2, "premium stays well below the principal: {row:?}");
        }
        // Longer lock-ups and higher volatility both increase the premium.
        let short = rows.iter().find(|r| r.lockup_blocks == 12 && r.volatility == 0.5).unwrap();
        let long = rows.iter().find(|r| r.lockup_blocks == 96 && r.volatility == 0.5).unwrap();
        assert!(long.premium > short.premium);
        let calm = rows.iter().find(|r| r.lockup_blocks == 48 && r.volatility == 0.25).unwrap();
        let wild = rows.iter().find(|r| r.lockup_blocks == 48 && r.volatility == 1.0).unwrap();
        assert!(wild.premium > calm.premium);
    }

    #[test]
    fn grid_propagates_invalid_parameters() {
        assert!(premium_grid(&[12], &[0.5], 0).is_err());
    }
}
