//! Determinism and conservation suite for the market-scale settlement
//! engine.
//!
//! The engine promises two things no other test pins end-to-end:
//!
//! * the settlement report is **byte-identical** across worker counts and
//!   trace modes at the same seed — execution knobs must be unobservable;
//! * funds are conserved **fee-adjusted** on every shard: transfers are
//!   zero-sum on the ledger, gas fees are metered (never deducted), so the
//!   parties' aggregate fee-adjusted payoff per shard is exactly `-fees`.

use chainsim::TraceMode;
use marketsim::market::metering::{conservation_violations, meter_shard};
use marketsim::market::shard::Shard;
use marketsim::market::{deals, run_market, MarketConfig};
use marketsim::PricePath;

/// A mid-sized market: big enough that every deal kind, both walk-away
/// scripts and plenty of cross-shard legs occur, small enough to run in a
/// debug-mode test suite.
fn cfg() -> MarketConfig {
    MarketConfig {
        seed: 0xD15C_0DE5,
        shards: 4,
        accounts: 400,
        deals: 120,
        deals_per_round: 12,
        workers: 1,
        trace: TraceMode::Off,
        ..MarketConfig::default()
    }
}

#[test]
fn report_is_byte_identical_across_workers_and_trace_modes() {
    let base = run_market(&cfg()).report;
    assert_eq!(base.violations, 0, "base run violated: {:?}", base.violation_details);
    assert_eq!(base.settled, cfg().deals, "every deal must settle");

    let base_canonical = base.canonical_string();
    let base_digest = base.digest();
    for workers in [1u32, 2, 4] {
        for trace in [TraceMode::Off, TraceMode::Full] {
            let run = run_market(&MarketConfig { workers, trace, ..cfg() });
            assert_eq!(run.report, base, "report diverged at workers={workers} trace={trace:?}");
            assert_eq!(
                run.report.canonical_string(),
                base_canonical,
                "canonical string diverged at workers={workers} trace={trace:?}"
            );
            assert_eq!(run.report.digest(), base_digest);
        }
    }
}

#[test]
fn different_seed_changes_the_digest() {
    let a = run_market(&cfg()).report;
    let b = run_market(&MarketConfig { seed: 0xD15C_0DE6, ..cfg() }).report;
    assert_ne!(a.digest(), b.digest(), "seed must steer the settlement report");
}

/// Replays the driver's round loop through the public shard API so the
/// finished shards themselves (not just the report) can be metered, then
/// asserts both conservation laws per shard.
#[test]
fn funds_are_conserved_fee_adjusted_on_every_shard() {
    let cfg = cfg();
    let rounds = cfg.rounds();
    let path = PricePath::gbm(100.0, 0.0, 0.6, 1.0 / 365.0, rounds as usize, cfg.seed);
    let per_shard = deals::split_by_home(deals::generate(&cfg, &path), cfg.shards);

    let mut shards: Vec<Shard> =
        (0..cfg.shards).map(|id| Shard::new(id, &cfg, 2 * cfg.deals as usize)).collect();
    for (shard, deals) in shards.iter_mut().zip(per_shard) {
        shard.assign_deals(deals);
    }
    for round in 0..rounds {
        for shard in shards.iter_mut() {
            shard.run_round(round);
        }
        // The round barrier, in shard-id order exactly as the driver does it.
        for source in 0..shards.len() {
            for envelope in shards[source].take_outbox() {
                shards[envelope.target as usize].push_inbox(envelope.msg);
            }
        }
    }

    for shard in &shards {
        let m = meter_shard(shard, cfg.endowment, cfg.gas_price);
        let violations = conservation_violations(&m, shard.minted_per_asset());
        assert!(violations.is_empty(), "shard {}: {violations:?}", shard.id());

        // The fee-adjusted law spelled out, independent of the helper's own
        // phrasing: ledger positions are zero-sum, gas was actually burned,
        // and the market as a whole paid the chains exactly its fees.
        assert_eq!(m.net_token + m.net_native, 0, "shard {} not zero-sum", shard.id());
        assert!(m.gas > 0, "shard {} metered no gas", shard.id());
        assert_eq!(m.fees, u128::from(m.gas) * u128::from(cfg.gas_price));
        assert_eq!(
            m.fee_adjusted_net(),
            -(m.fees as i128),
            "shard {}: aggregate fee-adjusted payoff must be -fees",
            shard.id()
        );
        assert_eq!(m.contract_residue, 0, "shard {} stranded funds in contracts", shard.id());
    }
}
