//! Prints the C7/C8 tables (used to cross-check EXPERIMENTS.md).
use marketsim::adequacy::premium_grid;
use marketsim::rational::{compare_protocols, RationalExperiment};

fn main() {
    let rows = premium_grid(&[12, 24, 48, 96], &[0.25, 0.5, 1.0], 24 * 365).unwrap();
    let min = rows.iter().map(|r| r.premium).fold(f64::MAX, f64::min);
    let max = rows.iter().map(|r| r.premium).fold(0.0f64, f64::max);
    println!("premium range: {min:.2} .. {max:.2}");
    for volatility in [0.2, 0.5, 1.0, 2.0] {
        let c =
            compare_protocols(&RationalExperiment { volatility, ..RationalExperiment::default() });
        println!(
            "vol {volatility}: base {:.2} hedged {:.2} abort payoffs {:.2}/{:.2}",
            c.base.success_rate,
            c.hedged.success_rate,
            c.base.mean_compliant_payoff_on_abort,
            c.hedged.mean_compliant_payoff_on_abort
        );
    }
}
