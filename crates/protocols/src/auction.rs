//! The hedged auction protocol of §9.
//!
//! Alice auctions tickets to `n` bidders. Bids are placed on the coin chain;
//! Alice declares the winner by publishing that bidder's hashkey on both
//! chains; bidders cross-forward hashkeys during the challenge phase; after
//! the challenge deadline both contracts settle. Alice endows the coin
//! contract with `n·p` premiums that compensate the bidders if she walks
//! away or cheats (Lemmas 7–8).

use std::collections::BTreeMap;

use chainsim::{Action, Amount, AssetId, CallDesc, ContractAddr, PartyId, Time, World};
use contracts::{
    AuctionCoinContract, AuctionCoinMsg, AuctionOutcome, AuctionParams, AuctionTicketContract,
    AuctionTicketMsg,
};
use cryptosim::Secret;

use crate::outcome::{BalanceSnapshot, Payoffs};
use crate::script::{run_parties, DeviationTree, ScriptedParty, Step, StepOutcome, Strategy};

/// The auctioneer's party id.
pub const AUCTIONEER: PartyId = PartyId(0);

/// The number of scripted steps in every auction role (auctioneer:
/// endow/declare/settle; bidder: bid/challenge/settle).
pub const SCRIPT_STEPS: usize = 3;

/// Every distinct per-party strategy of the auction: the full
/// `stop_after × timing × faults` product over the three-step scripts (see
/// [`Strategy::all`] for the dedup rules).
pub fn strategy_space() -> Vec<Strategy> {
    Strategy::all(SCRIPT_STEPS)
}

/// How the auctioneer behaves in the declaration phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuctioneerBehaviour {
    /// Declare the true high bidder (honest).
    DeclareHighBidder,
    /// Declare the low bidder (cheating).
    DeclareLowBidder,
    /// Never declare anyone (abandon the auction).
    Abandon,
}

/// Configuration of an auction run.
#[derive(Clone, Debug)]
pub struct AuctionConfig {
    /// The bids each bidder will place (bidder `i` is `PartyId(i + 1)`); a
    /// `None` entry models a bidder that abstains.
    pub bids: Vec<Option<Amount>>,
    /// Number of tickets auctioned.
    pub tickets: Amount,
    /// The per-bidder premium `p`.
    pub premium: Amount,
    /// The synchrony bound Δ in blocks.
    pub delta_blocks: u64,
    /// The auctioneer's declaration behaviour.
    pub auctioneer: AuctioneerBehaviour,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            bids: vec![Some(Amount::new(60)), Some(Amount::new(40))],
            tickets: Amount::new(1),
            premium: Amount::new(2),
            delta_blocks: 2,
            auctioneer: AuctioneerBehaviour::DeclareHighBidder,
        }
    }
}

impl AuctionConfig {
    /// The bidder party ids.
    pub fn bidders(&self) -> Vec<PartyId> {
        (0..self.bids.len() as u32).map(|i| PartyId(i + 1)).collect()
    }
}

/// The outcome of an auction run.
#[derive(Clone, Debug)]
pub struct AuctionReport {
    /// The coin-chain settlement outcome (if the contract settled).
    pub outcome: Option<AuctionOutcome>,
    /// The bidder who received the tickets, if any.
    pub ticket_winner: Option<PartyId>,
    /// Per-bidder coin payoffs.
    pub bidder_coin_payoffs: BTreeMap<PartyId, i128>,
    /// Per-bidder ticket payoffs.
    pub bidder_ticket_payoffs: BTreeMap<PartyId, i128>,
    /// The auctioneer's coin payoff.
    pub auctioneer_coin_payoff: i128,
    /// True if no compliant bidder had its bid stolen (Lemma 8): every
    /// compliant bidder either got the tickets or a non-negative coin payoff.
    pub no_bid_stolen: bool,
    /// True if the auction aborted and every compliant bidder that bid was
    /// compensated with at least `p`.
    pub bidders_compensated: bool,
    /// Raw payoffs.
    pub payoffs: Payoffs,
    /// Rejected actions during the run.
    pub failed_actions: usize,
    /// Synchronous rounds executed.
    pub rounds: usize,
}

#[derive(Clone)]
struct AuctionSetup {
    coin_addr: ContractAddr,
    ticket_addr: ContractAddr,
    coin: AssetId,
    ticket: AssetId,
    secrets: BTreeMap<PartyId, Secret>,
    params: AuctionParams,
}

fn build(world: &mut World, config: &AuctionConfig) -> AuctionSetup {
    world.reset(1);
    let coin_chain = world.add_chain("coin-chain");
    let ticket_chain = world.add_chain("ticket-chain");
    let coin = world.register_asset("coin");
    let ticket = world.register_asset("ticket");

    let bidders = config.bidders();
    let total_premium = config.premium.scaled(bidders.len() as u128);
    world.chain_mut(coin_chain).mint(AUCTIONEER, coin, total_premium);
    world.chain_mut(ticket_chain).mint(AUCTIONEER, ticket, config.tickets);
    for (bidder, bid) in bidders.iter().zip(&config.bids) {
        if let Some(bid) = bid {
            world.chain_mut(coin_chain).mint(*bidder, coin, *bid);
        }
    }

    let mut secrets = BTreeMap::new();
    let mut hashlocks = Vec::new();
    for bidder in &bidders {
        let secret = Secret::from_seed(9000 + u64::from(bidder.0));
        hashlocks.push((*bidder, secret.hashlock()));
        secrets.insert(*bidder, secret);
    }

    let d = config.delta_blocks;
    let params = AuctionParams {
        auctioneer: AUCTIONEER,
        bidders: bidders.clone(),
        coin_asset: coin,
        ticket_asset: ticket,
        ticket_amount: config.tickets,
        premium_per_bidder: config.premium,
        hashlocks,
        bid_deadline: Time(d),
        challenge_deadline: Time(6 * d),
    };
    let coin_addr = world.publish_labeled(
        coin_chain,
        AUCTIONEER,
        "auction/coin",
        Box::new(AuctionCoinContract::new(params.clone())),
    );
    let ticket_addr = world.publish_labeled(
        ticket_chain,
        AUCTIONEER,
        "auction/ticket",
        Box::new(AuctionTicketContract::new(params.clone())),
    );
    AuctionSetup { coin_addr, ticket_addr, coin, ticket, secrets, params }
}

fn coin_contract(world: &World, addr: ContractAddr) -> &AuctionCoinContract {
    world
        .chain(addr.chain)
        .contract_as::<AuctionCoinContract>(addr.contract)
        .expect("coin contract")
}

fn ticket_contract(world: &World, addr: ContractAddr) -> &AuctionTicketContract {
    world
        .chain(addr.chain)
        .contract_as::<AuctionTicketContract>(addr.contract)
        .expect("ticket contract")
}

fn auctioneer_steps(config: &AuctionConfig, setup: &AuctionSetup) -> Vec<Step> {
    let coin_addr = setup.coin_addr;
    let ticket_addr = setup.ticket_addr;
    let behaviour = config.auctioneer;
    let delta = config.delta_blocks;
    let secrets = setup.secrets.clone();
    let bid_deadline = setup.params.bid_deadline;
    let challenge_deadline = setup.params.challenge_deadline;
    vec![
        Step::new("auctioneer: endow premium and escrow tickets", move |_world: &World| {
            StepOutcome::Complete(vec![
                Action::call(
                    coin_addr,
                    AuctionCoinMsg::DepositPremium,
                    "Alice endows n·p premiums",
                ),
                Action::call(
                    ticket_addr,
                    AuctionTicketMsg::EscrowTickets,
                    "Alice escrows the tickets",
                ),
            ])
        })
        // The endowment must leave bidders a full Δ to observe it and still
        // bid strictly before the deadline, so its own legal window ends one
        // Δ earlier.
        .with_deadline(Time(bid_deadline.height().saturating_sub(delta))),
        Step::new("auctioneer: declare the winner", move |world: &World| {
            if world.now().has_reached(challenge_deadline) {
                return StepOutcome::Complete(vec![]);
            }
            if !world.now().has_reached(bid_deadline) {
                return StepOutcome::WaitUntil(bid_deadline);
            }
            let contract = coin_contract(world, coin_addr);
            let Some((high, _)) = contract.high_bidder() else {
                return StepOutcome::Complete(vec![]);
            };
            let declared = match behaviour {
                AuctioneerBehaviour::DeclareHighBidder => high,
                AuctioneerBehaviour::DeclareLowBidder => {
                    let low = contract
                        .bids()
                        .iter()
                        .min_by_key(|(_, amount)| **amount)
                        .map(|(p, _)| *p)
                        .unwrap_or(high);
                    low
                }
                AuctioneerBehaviour::Abandon => return StepOutcome::Complete(vec![]),
            };
            let secret = secrets[&declared].clone();
            StepOutcome::Complete(vec![
                Action::call(
                    coin_addr,
                    AuctionCoinMsg::SubmitHashkey { winner: declared, secret: secret.clone() },
                    CallDesc::Party {
                        prefix: "Alice declares ",
                        party: declared,
                        suffix: " on the coin chain",
                    },
                ),
                Action::call(
                    ticket_addr,
                    AuctionTicketMsg::SubmitHashkey { winner: declared, secret },
                    CallDesc::Party {
                        prefix: "Alice declares ",
                        party: declared,
                        suffix: " on the ticket chain",
                    },
                ),
            ])
        })
        .with_deadline(challenge_deadline),
        Step::new("auctioneer: settle", move |world: &World| {
            if !world.now().has_reached(challenge_deadline) {
                return StepOutcome::WaitUntil(challenge_deadline);
            }
            let mut actions = Vec::new();
            if coin_contract(world, coin_addr).outcome().is_none() {
                actions.push(Action::call(coin_addr, AuctionCoinMsg::Settle, "settle coin chain"));
            }
            if !ticket_contract(world, ticket_addr).settled() {
                actions.push(Action::call(
                    ticket_addr,
                    AuctionTicketMsg::Settle,
                    "settle ticket chain",
                ));
            }
            StepOutcome::Complete(actions)
        }),
    ]
}

fn bidder_steps(config: &AuctionConfig, setup: &AuctionSetup, bidder: PartyId) -> Vec<Step> {
    let coin_addr = setup.coin_addr;
    let ticket_addr = setup.ticket_addr;
    let bid = config.bids[(bidder.0 - 1) as usize];
    let bid_deadline = setup.params.bid_deadline;
    let challenge_deadline = setup.params.challenge_deadline;
    let secrets = setup.secrets.clone();
    vec![
        Step::new("bidder: place bid", move |world: &World| {
            let Some(amount) = bid else {
                return StepOutcome::Complete(vec![]);
            };
            if world.now().has_reached(bid_deadline) {
                // The auctioneer never funded the auction in time.
                return StepOutcome::Complete(vec![]);
            }
            // A prudent bidder commits coins only after observing both the
            // n·p endowment on this chain and the ticket escrow on the
            // other: Lemmas 7–8 protect bidders of *funded* auctions, and an
            // unfunded one (e.g. a crashed auctioneer whose endowment call
            // bounced) must attract no bids at all.
            let funded = coin_contract(world, coin_addr).premium_held()
                && ticket_contract(world, ticket_addr).tickets_held();
            if funded {
                StepOutcome::Complete(vec![Action::call(
                    coin_addr,
                    AuctionCoinMsg::PlaceBid { amount },
                    CallDesc::Amount { party: bidder, verb: "bids", amount },
                )])
            } else {
                StepOutcome::WaitUntil(bid_deadline)
            }
        })
        .with_deadline(bid_deadline),
        Step::new("bidder: challenge (cross-forward hashkeys)", move |world: &World| {
            if world.now().has_reached(challenge_deadline) {
                return StepOutcome::Complete(vec![]);
            }
            if !world.now().has_reached(bid_deadline) {
                return StepOutcome::WaitUntil(bid_deadline);
            }
            let on_coin = coin_contract(world, coin_addr).hashkeys_received();
            let on_ticket = ticket_contract(world, ticket_addr).hashkeys_received();
            let mut actions = Vec::new();
            for winner in &on_coin {
                if !on_ticket.contains(winner) {
                    actions.push(Action::call(
                        ticket_addr,
                        AuctionTicketMsg::SubmitHashkey {
                            winner: *winner,
                            secret: secrets[winner].clone(),
                        },
                        CallDesc::Parties {
                            party: bidder,
                            mid: " forwards ",
                            other: *winner,
                            suffix: "'s hashkey to the ticket chain",
                        },
                    ));
                }
            }
            for winner in &on_ticket {
                if !on_coin.contains(winner) {
                    actions.push(Action::call(
                        coin_addr,
                        AuctionCoinMsg::SubmitHashkey {
                            winner: *winner,
                            secret: secrets[winner].clone(),
                        },
                        CallDesc::Parties {
                            party: bidder,
                            mid: " forwards ",
                            other: *winner,
                            suffix: "'s hashkey to the coin chain",
                        },
                    ));
                }
            }
            if actions.is_empty() {
                // Forwarding opportunities only appear when other parties
                // act; the clock alone matters again at the challenge
                // deadline.
                StepOutcome::WaitUntil(challenge_deadline)
            } else {
                StepOutcome::Progress(actions)
            }
        })
        .with_deadline(challenge_deadline),
        Step::new("bidder: settle", move |world: &World| {
            if !world.now().has_reached(challenge_deadline) {
                return StepOutcome::WaitUntil(challenge_deadline);
            }
            let mut actions = Vec::new();
            if coin_contract(world, coin_addr).outcome().is_none() {
                actions.push(Action::call(coin_addr, AuctionCoinMsg::Settle, "settle coin chain"));
            }
            if !ticket_contract(world, ticket_addr).settled() {
                actions.push(Action::call(
                    ticket_addr,
                    AuctionTicketMsg::Settle,
                    "settle ticket chain",
                ));
            }
            StepOutcome::Complete(actions)
        }),
    ]
}

/// Runs the auction with the given per-party strategies (keyed by party id;
/// missing parties are compliant). The auctioneer's *declaration content*
/// (honest, low-bidder, abandon) is part of [`AuctionConfig`].
pub fn run_auction(
    config: &AuctionConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
) -> AuctionReport {
    run_auction_in(&mut World::new(1), config, strategies)
}

/// Builds the auction's world (both contracts published with their real
/// deadline parameters) and compliant scripted parties without executing a
/// single round. Static analyzers consume the contracts' state specs and
/// the scripts' deadline annotations from the result.
pub fn auction_static_setup(config: &AuctionConfig) -> (World, Vec<ScriptedParty>) {
    let mut world = World::new(1);
    let setup = build(&mut world, config);
    let actors = auction_actors(config, &setup, &|_| Strategy::compliant());
    (world, actors)
}

/// Runs the auction inside a caller-provided world (reset first; its
/// [`chainsim::TraceMode`] is preserved). Hot-path variant of
/// [`run_auction`] for sweep engines that pool worlds across scenarios.
pub fn run_auction_in(
    world: &mut World,
    config: &AuctionConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
) -> AuctionReport {
    let setup = build(world, config);
    let parties = auction_parties(config);
    let before = BalanceSnapshot::capture(world, &parties, &[setup.coin, setup.ticket]);
    let actors = auction_actors(config, &setup, &|party| {
        strategies.get(&party).copied().unwrap_or(Strategy::compliant())
    });
    let run_report = run_parties(world, actors, auction_max_rounds(config));
    finish_auction_report(
        world,
        config,
        strategies,
        &setup,
        &before,
        run_report.failures().len(),
        run_report.rounds(),
    )
}

fn auction_parties(config: &AuctionConfig) -> Vec<PartyId> {
    let mut parties = vec![AUCTIONEER];
    parties.extend(config.bidders());
    parties
}

fn auction_max_rounds(config: &AuctionConfig) -> u64 {
    8 * config.delta_blocks + 4
}

fn auction_actors(
    config: &AuctionConfig,
    setup: &AuctionSetup,
    strategy_of: &dyn Fn(PartyId) -> Strategy,
) -> Vec<ScriptedParty> {
    let mut actors = vec![ScriptedParty::new(
        AUCTIONEER,
        auctioneer_steps(config, setup),
        strategy_of(AUCTIONEER),
    )
    .with_delta(config.delta_blocks)];
    for bidder in config.bidders() {
        actors.push(
            ScriptedParty::new(bidder, bidder_steps(config, setup, bidder), strategy_of(bidder))
                .with_delta(config.delta_blocks),
        );
    }
    debug_assert!(
        actors.iter().all(|a| a.total_steps() == SCRIPT_STEPS),
        "SCRIPT_STEPS must match every auction script so sweeps cover exactly the stop-points"
    );
    actors
}

/// Derives the [`AuctionReport`] from the final world state. Shared by the
/// from-scratch and deviation-tree paths, which keeps their reports
/// byte-identical.
fn finish_auction_report(
    world: &World,
    config: &AuctionConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
    setup: &AuctionSetup,
    before: &BalanceSnapshot,
    failed_actions: usize,
    rounds: usize,
) -> AuctionReport {
    let bidders = config.bidders();
    let parties = auction_parties(config);
    let after = BalanceSnapshot::capture(world, &parties, &[setup.coin, setup.ticket]);
    let payoffs = Payoffs::between(before, &after);

    let outcome = coin_contract(world, setup.coin_addr).outcome();
    let ticket_winner = ticket_contract(world, setup.ticket_addr).winner();

    let mut bidder_coin_payoffs = BTreeMap::new();
    let mut bidder_ticket_payoffs = BTreeMap::new();
    let mut no_bid_stolen = true;
    let mut bidders_compensated = true;
    for bidder in &bidders {
        let coin_payoff = payoffs.of(*bidder, setup.coin).value();
        let ticket_payoff = payoffs.of(*bidder, setup.ticket).value();
        bidder_coin_payoffs.insert(*bidder, coin_payoff);
        bidder_ticket_payoffs.insert(*bidder, ticket_payoff);
        let compliant =
            strategies.get(bidder).copied().unwrap_or(Strategy::compliant()).is_compliant();
        let placed_bid = config.bids[(bidder.0 - 1) as usize].is_some();
        if compliant {
            let got_tickets = ticket_payoff > 0;
            if !got_tickets && coin_payoff < 0 {
                no_bid_stolen = false;
            }
            if placed_bid
                && matches!(outcome, Some(AuctionOutcome::Aborted))
                && coin_payoff < config.premium.value() as i128
            {
                bidders_compensated = false;
            }
        }
    }

    AuctionReport {
        outcome,
        ticket_winner,
        bidder_coin_payoffs,
        bidder_ticket_payoffs,
        auctioneer_coin_payoff: payoffs.of(AUCTIONEER, setup.coin).value(),
        no_bid_stolen,
        bidders_compensated,
        payoffs,
        failed_actions,
        rounds,
    }
}

/// The per-worker deviation-tree cache for one auction configuration (one
/// per auctioneer behaviour): the recorded compliant-strategy prefix plus
/// the setup report derivation needs.
///
/// "Compliant" here means every party follows its script to the end; the
/// auctioneer's *declaration content* (honest, low-bidder, abandon) is part
/// of the configuration, so each behaviour records its own prefix.
pub struct AuctionPrefix {
    prefix: DeviationTree,
    setup: AuctionSetup,
    before: BalanceSnapshot,
}

impl std::fmt::Debug for AuctionPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuctionPrefix").field("prefix", &self.prefix).finish()
    }
}

/// Runs the auction through the deviation tree; reports are byte-identical
/// to [`run_auction_in`] for every strategy profile.
pub fn run_auction_shared(
    world: &mut World,
    config: &AuctionConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
    cache: &mut Option<AuctionPrefix>,
) -> AuctionReport {
    if cache.is_none() {
        let setup = build(world, config);
        let parties = auction_parties(config);
        let before = BalanceSnapshot::capture(world, &parties, &[setup.coin, setup.ticket]);
        let actors = auction_actors(config, &setup, &|_| Strategy::compliant());
        let prefix = DeviationTree::record(world, actors, auction_max_rounds(config));
        *cache = Some(AuctionPrefix { prefix, setup, before });
    }
    let cached = cache.as_mut().expect("cache populated above");
    let resumed = cached
        .prefix
        .resume(world, &|party| strategies.get(&party).copied().unwrap_or(Strategy::compliant()));
    finish_auction_report(
        world,
        config,
        strategies,
        &cached.setup,
        &cached.before,
        resumed.failed_actions,
        resumed.rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_auction_awards_high_bidder() {
        let report = run_auction(&AuctionConfig::default(), &BTreeMap::new());
        assert!(
            matches!(report.outcome, Some(AuctionOutcome::Completed { winner, .. }) if winner == PartyId(1))
        );
        assert_eq!(report.ticket_winner, Some(PartyId(1)));
        assert_eq!(report.bidder_coin_payoffs[&PartyId(1)], -60);
        assert_eq!(report.bidder_ticket_payoffs[&PartyId(1)], 1);
        assert_eq!(report.bidder_coin_payoffs[&PartyId(2)], 0);
        assert_eq!(report.auctioneer_coin_payoff, 60);
        assert!(report.no_bid_stolen);
        assert_eq!(report.failed_actions, 0);
    }

    #[test]
    fn cheating_auctioneer_pays_premiums_to_bidders() {
        let config = AuctionConfig {
            auctioneer: AuctioneerBehaviour::DeclareLowBidder,
            ..AuctionConfig::default()
        };
        let report = run_auction(&config, &BTreeMap::new());
        assert_eq!(report.outcome, Some(AuctionOutcome::Aborted));
        assert!(report.no_bid_stolen, "{report:?}");
        assert!(report.bidders_compensated);
        assert_eq!(report.bidder_coin_payoffs[&PartyId(1)], 2);
        assert_eq!(report.bidder_coin_payoffs[&PartyId(2)], 2);
        assert_eq!(report.auctioneer_coin_payoff, -4);
    }

    #[test]
    fn absent_auctioneer_still_compensates_bidders() {
        let config =
            AuctionConfig { auctioneer: AuctioneerBehaviour::Abandon, ..AuctionConfig::default() };
        let report = run_auction(&config, &BTreeMap::new());
        assert_eq!(report.outcome, Some(AuctionOutcome::Aborted));
        assert!(report.no_bid_stolen);
        assert!(report.bidders_compensated);
    }

    #[test]
    fn low_bidder_cannot_grief_the_auction() {
        // Carol (the low bidder) refuses to do anything after bidding: the
        // auction still completes for Bob because Alice's hashkey appears on
        // both chains without Carol's help.
        let strategies = BTreeMap::from([(PartyId(2), Strategy::stop_after(1))]);
        let report = run_auction(&AuctionConfig::default(), &strategies);
        assert!(
            matches!(report.outcome, Some(AuctionOutcome::Completed { winner, .. }) if winner == PartyId(1))
        );
        assert_eq!(report.ticket_winner, Some(PartyId(1)));
        assert!(report.no_bid_stolen);
    }

    #[test]
    fn abstaining_bidder_is_harmless() {
        let config =
            AuctionConfig { bids: vec![Some(Amount::new(60)), None], ..AuctionConfig::default() };
        let report = run_auction(&config, &BTreeMap::new());
        assert!(
            matches!(report.outcome, Some(AuctionOutcome::Completed { winner, .. }) if winner == PartyId(1))
        );
        assert!(report.no_bid_stolen);
    }

    #[test]
    fn auctioneer_walking_away_before_endowment_steals_nothing() {
        let strategies = BTreeMap::from([(AUCTIONEER, Strategy::stop_after(0))]);
        let report = run_auction(&AuctionConfig::default(), &strategies);
        assert!(report.no_bid_stolen);
        // Without the premium endowment the bids are still refunded.
        assert_eq!(report.bidder_coin_payoffs[&PartyId(1)], 0);
        assert_eq!(report.bidder_coin_payoffs[&PartyId(2)], 0);
    }
}
