//! Shared-account-pool deal parameterization for market-scale workloads.
//!
//! Every `run_*` entry point in this crate builds a private world per
//! scenario; the market engine (`marketsim::market`) is the opposite — many
//! thousands of overlapping deals contend on the *same* sharded ledgers with
//! 100k+ accounts. This module provides the pieces that let deal instances
//! be parameterized by a shared [`AccountPool`] instead of the fixed
//! `ALICE`/`BOB` ids, and builders that anchor the §5.2 hedged-swap contract
//! schedule at an arbitrary start height instead of `Time::ZERO`.
//!
//! The deadline offsets reproduce [`crate::two_party`]'s hedged setup
//! exactly (premium 1Δ/2Δ, escrow 4Δ/3Δ, redeem 5Δ/6Δ), so a market deal's
//! contracts behave precisely like the conformance-tested ones, just shifted
//! in time and renamed in party space.

use chainsim::{Amount, AssetId, PartyId, Time};
use contracts::HedgedEscrowParams;
use cryptosim::Hashlock;
use serde::{Deserialize, Serialize};

/// A contiguous slice of the shared party-id space from which deal instances
/// draw their participants.
///
/// Party ids are dense (they index ledger rows), so a pool is just a base id
/// plus a length; drawing is O(participants) with rejection-free distinct
/// sampling for the tiny per-deal party counts (2–6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountPool {
    base: u32,
    len: u32,
}

impl AccountPool {
    /// A pool of `len` parties starting at `PartyId(base)`.
    ///
    /// # Panics
    ///
    /// Panics if the pool would overflow the `u32` party-id space.
    pub fn new(base: u32, len: u32) -> Self {
        assert!(base.checked_add(len).is_some(), "account pool overflows party-id space");
        AccountPool { base, len }
    }

    /// The number of parties in the pool.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first party id in the pool.
    pub fn base(&self) -> PartyId {
        PartyId(self.base)
    }

    /// The `idx`-th party of the pool.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn party(&self, idx: u32) -> PartyId {
        assert!(idx < self.len, "party index {idx} out of pool of {}", self.len);
        PartyId(self.base + idx)
    }

    /// Whether `party` belongs to this pool.
    pub fn contains(&self, party: PartyId) -> bool {
        party.0 >= self.base && party.0 - self.base < self.len
    }

    /// Iterates over every party in the pool, ascending.
    pub fn iter(&self) -> impl Iterator<Item = PartyId> + '_ {
        (0..self.len).map(|i| PartyId(self.base + i))
    }

    /// Draws `count` *distinct* parties using the caller's random stream
    /// (`next` yields raw `u64`s, e.g. from a SplitMix64).
    ///
    /// Re-draws on collision, which terminates fast because deals draw a
    /// handful of parties from pools of tens of thousands.
    ///
    /// # Panics
    ///
    /// Panics if `count > len` (a distinct draw would never terminate).
    pub fn draw_distinct(&self, count: usize, mut next: impl FnMut() -> u64) -> Vec<PartyId> {
        assert!(count as u64 <= u64::from(self.len), "cannot draw {count} distinct parties");
        let mut drawn: Vec<PartyId> = Vec::with_capacity(count);
        while drawn.len() < count {
            let candidate = PartyId(self.base + (next() % u64::from(self.len)) as u32);
            if !drawn.contains(&candidate) {
                drawn.push(candidate);
            }
        }
        drawn
    }
}

/// The §5.2 hedged-swap deadline schedule, in Δ-steps from the deal's start
/// height. Mirrors [`crate::two_party`]'s hedged setup verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgedSwapSchedule {
    /// Leader-side (apricot) premium deadline, in Δ-steps: the follower
    /// deposits `p_b` here.
    pub leader_premium_steps: u64,
    /// Leader-side escrow deadline (`t_{a,e}`), in Δ-steps.
    pub leader_escrow_steps: u64,
    /// Leader-side redeem timelock (`t_A`), in Δ-steps.
    pub leader_redeem_steps: u64,
    /// Follower-side (banana) premium deadline: the leader deposits
    /// `p_a + p_b` here.
    pub follower_premium_steps: u64,
    /// Follower-side escrow deadline (`t_{b,e}`), in Δ-steps.
    pub follower_escrow_steps: u64,
    /// Follower-side redeem timelock (`t_B`), in Δ-steps.
    pub follower_redeem_steps: u64,
}

impl HedgedSwapSchedule {
    /// The paper's §5.2 schedule, as pinned by the two-party conformance
    /// sweeps: premiums by 2Δ/1Δ, escrows by 3Δ/4Δ, redeems by 6Δ/5Δ.
    pub const PAPER: HedgedSwapSchedule = HedgedSwapSchedule {
        leader_premium_steps: 2,
        leader_escrow_steps: 3,
        leader_redeem_steps: 6,
        follower_premium_steps: 1,
        follower_escrow_steps: 4,
        follower_redeem_steps: 5,
    };

    /// The number of Δ-steps after which both contracts of a swap following
    /// this schedule are guaranteed settleable (the later redeem timelock).
    pub fn horizon_steps(&self) -> u64 {
        self.leader_redeem_steps.max(self.follower_redeem_steps)
    }
}

/// A hedged two-party swap instance drawn from shared account pools: the
/// leader plays the paper's Alice (knows the secret, escrows on the leader
/// chain), the follower plays Bob.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgedSwapSpec {
    /// The secret-holding party (the paper's Alice).
    pub leader: PartyId,
    /// The counterparty (the paper's Bob).
    pub follower: PartyId,
    /// The token the leader sells, living on the leader chain.
    pub leader_token: AssetId,
    /// The token the follower sells, living on the follower chain.
    pub follower_token: AssetId,
    /// The leader chain's native currency (denominates the follower's
    /// premium deposit).
    pub leader_native: AssetId,
    /// The follower chain's native currency (denominates the leader's
    /// premium deposit).
    pub follower_native: AssetId,
    /// The leader's principal.
    pub leader_amount: Amount,
    /// The follower's principal.
    pub follower_amount: Amount,
    /// The leader's premium `p_a`.
    pub premium_leader: Amount,
    /// The follower's premium `p_b`.
    pub premium_follower: Amount,
    /// The hashlock guarding both legs.
    pub hashlock: Hashlock,
}

impl HedgedSwapSpec {
    /// Builds the leader-chain escrow parameters (leader escrows, follower
    /// deposits `p_b` and redeems), anchored at `start` with synchrony
    /// bound `delta` blocks.
    pub fn leader_leg(
        &self,
        start: Time,
        delta: u64,
        schedule: &HedgedSwapSchedule,
    ) -> HedgedEscrowParams {
        HedgedEscrowParams {
            escrower: self.leader,
            redeemer: self.follower,
            principal_asset: self.leader_token,
            principal_amount: self.leader_amount,
            premium_asset: self.leader_native,
            premium_amount: self.premium_follower,
            hashlock: self.hashlock,
            premium_deadline: start.plus(delta * schedule.leader_premium_steps),
            escrow_deadline: start.plus(delta * schedule.leader_escrow_steps),
            redeem_deadline: start.plus(delta * schedule.leader_redeem_steps),
        }
    }

    /// Builds the follower-chain escrow parameters (follower escrows, leader
    /// deposits `p_a + p_b` and redeems with the secret); see
    /// [`HedgedSwapSpec::leader_leg`].
    pub fn follower_leg(
        &self,
        start: Time,
        delta: u64,
        schedule: &HedgedSwapSchedule,
    ) -> HedgedEscrowParams {
        HedgedEscrowParams {
            escrower: self.follower,
            redeemer: self.leader,
            principal_asset: self.follower_token,
            principal_amount: self.follower_amount,
            premium_asset: self.follower_native,
            premium_amount: self.premium_leader + self.premium_follower,
            hashlock: self.hashlock,
            premium_deadline: start.plus(delta * schedule.follower_premium_steps),
            escrow_deadline: start.plus(delta * schedule.follower_escrow_steps),
            redeem_deadline: start.plus(delta * schedule.follower_redeem_steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptosim::Secret;

    #[test]
    fn pool_indexing_and_membership() {
        let pool = AccountPool::new(100, 50);
        assert_eq!(pool.len(), 50);
        assert!(!pool.is_empty());
        assert_eq!(pool.base(), PartyId(100));
        assert_eq!(pool.party(0), PartyId(100));
        assert_eq!(pool.party(49), PartyId(149));
        assert!(pool.contains(PartyId(100)) && pool.contains(PartyId(149)));
        assert!(!pool.contains(PartyId(99)) && !pool.contains(PartyId(150)));
        assert_eq!(pool.iter().count(), 50);
        assert_eq!(pool.iter().next(), Some(PartyId(100)));
    }

    #[test]
    #[should_panic(expected = "out of pool")]
    fn pool_rejects_out_of_range_index() {
        AccountPool::new(0, 3).party(3);
    }

    #[test]
    fn draw_distinct_is_distinct_and_stream_driven() {
        let pool = AccountPool::new(10, 4);
        // A stream that collides on purpose: 0, 0, 1, 1, 2 → parties 10, 11, 12.
        let stream = [0u64, 0, 1, 1, 2];
        let mut i = 0;
        let drawn = pool.draw_distinct(3, || {
            let v = stream[i];
            i += 1;
            v
        });
        assert_eq!(drawn, vec![PartyId(10), PartyId(11), PartyId(12)]);
    }

    #[test]
    fn legs_mirror_the_two_party_schedule() {
        let secret = Secret::from_seed(3);
        let spec = HedgedSwapSpec {
            leader: PartyId(7),
            follower: PartyId(9),
            leader_token: AssetId(10),
            follower_token: AssetId(11),
            leader_native: AssetId(0),
            follower_native: AssetId(1),
            leader_amount: Amount::new(100),
            follower_amount: Amount::new(100),
            premium_leader: Amount::new(2),
            premium_follower: Amount::new(3),
            hashlock: secret.hashlock(),
        };
        let schedule = HedgedSwapSchedule::PAPER;
        // Anchored at t0 = 20 with Δ = 2.
        let leader = spec.leader_leg(Time(20), 2, &schedule);
        assert_eq!(leader.escrower, PartyId(7));
        assert_eq!(leader.redeemer, PartyId(9));
        assert_eq!(leader.premium_amount, Amount::new(3));
        assert_eq!(leader.premium_deadline, Time(24));
        assert_eq!(leader.escrow_deadline, Time(26));
        assert_eq!(leader.redeem_deadline, Time(32));
        let follower = spec.follower_leg(Time(20), 2, &schedule);
        assert_eq!(follower.escrower, PartyId(9));
        assert_eq!(follower.redeemer, PartyId(7));
        assert_eq!(follower.premium_amount, Amount::new(5));
        assert_eq!(follower.premium_deadline, Time(22));
        assert_eq!(follower.escrow_deadline, Time(28));
        assert_eq!(follower.redeem_deadline, Time(30));
        assert_eq!(schedule.horizon_steps(), 6);
    }
}
