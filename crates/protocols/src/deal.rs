//! A generic engine for hedged multi-arc deals.
//!
//! Both the multi-party swap of §7 and the brokered deal of §8 are
//! instances of the same structure: a strongly-connected digraph of asset
//! transfers, a leader set, per-arc escrow (or trading) premiums, per-arc
//! redemption premiums derived from Equation (1), and the four-phase
//! hedged execution (escrow premiums → redemption premiums → asset escrow →
//! hashkey release). This module drives [`contracts::ArcEscrow`] contracts
//! for an arbitrary such configuration; [`crate::multi_party`] and
//! [`crate::broker`] are thin wrappers that build the configuration.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use chainsim::{
    Action, Amount, AssetId, CallDesc, ChainId, ContractAddr, Label, PartyId, Time, World,
};
use contracts::{
    ArcDeadlines, ArcEscrow, ArcEscrowMsg, ArcEscrowParams, Hashkey, HashkeyVerifyCache, PartyKeys,
    PremiumSlotState, PrincipalState,
};
use cryptosim::{KeyPair, Secret};
use swapgraph::premiums::RedemptionPremiumEvaluator;
use swapgraph::Digraph;

use crate::outcome::{BalanceSnapshot, Payoffs};
use crate::script::{
    run_parties, DeviationTree, HashkeyMemo, ScriptedParty, Step, StepMemo, StepOutcome, Strategy,
};

/// The number of scripted steps in each deal-engine role: escrow premiums,
/// redemption premiums, asset escrow, hashkey release, settlement.
/// [`Strategy::stop_after`] points at or beyond this are equivalent to
/// compliance.
pub const SCRIPT_STEPS: usize = 5;

/// Every distinct per-party strategy of the deal engine: the full
/// `stop_after × timing × faults` product over the five-step script (see
/// [`Strategy::all`] for the dedup rules). Model-checking sweeps range over
/// exactly this space.
pub fn strategy_space() -> Vec<Strategy> {
    Strategy::all(SCRIPT_STEPS)
}

/// One asset transfer of the deal.
#[derive(Clone, Debug)]
pub struct ArcSpec {
    /// The sender.
    pub from: PartyId,
    /// The receiver.
    pub to: PartyId,
    /// The chain the asset (and its escrow contract) lives on, named by key
    /// into [`DealConfig::chains`].
    pub chain: String,
    /// The asset transferred.
    pub asset_name: String,
    /// The amount transferred.
    pub amount: Amount,
    /// The escrow (or trading) premium the sender owes on this arc.
    pub escrow_premium: Amount,
}

/// Cross-run caches shared by every execution of one deal configuration.
///
/// Everything a deal's contracts verify and its compliant parties sign is a
/// pure function of the configuration (seeded keys and secrets, a fixed
/// digraph and key table), so sweeps that execute the same configuration
/// thousands of times memoise these artefacts. Every table here is either
/// **pre-warmed once and then read-only** (leader hashkeys, deadlines, the
/// Equation-(1) evaluator — `OnceLock`s initialised on the first run and
/// read lock-free ever after) or **per-worker** (the hashkey-verification
/// memo lives in each world's [`chainsim::SimCaches`]; party-side hashkey
/// *extensions*, which depend on run dynamics and cannot be pre-warmed, live
/// in per-step [`StepMemo`]s that deviation-tree forks carry and merge).
/// Earlier revisions shared an `Arc<Mutex<BTreeMap<..>>>` hashkey memo
/// across every worker thread; that lock was the single contended object in
/// an otherwise share-nothing sweep and flattened 1→2-thread scaling.
///
/// The caches affect performance only: every cached value is bit-for-bit
/// what recomputation would produce, so reports and sweep summaries are
/// unchanged (pinned by the determinism tests).
#[derive(Clone, Debug, Default)]
pub struct DealCaches {
    verify: HashkeyVerifyCache,
    /// The leaders' initial hashkeys, signed once per configuration when
    /// the first run's setup pre-warms the table; read-only afterwards.
    leader_hashkeys: Arc<OnceLock<BTreeMap<PartyId, Hashkey>>>,
    /// The phase deadlines, which require the digraph diameter (an
    /// all-pairs BFS) — computed once per configuration instead of several
    /// times per run.
    deadlines: Arc<OnceLock<ArcDeadlines>>,
    /// Each party's depth in the wait-for-incoming dependency DAG (leaders
    /// and other non-waiting parties are depth 0), computed once per
    /// configuration; drives the staggered per-sender asset-escrow
    /// deadlines.
    escrow_depths: Arc<OnceLock<BTreeMap<PartyId, u64>>>,
    /// Compact Equation-(1) adjacency tables, built once per configuration
    /// and shared with every arc escrow the configuration publishes.
    premium_evaluator: Arc<OnceLock<RedemptionPremiumEvaluator>>,
}

impl DealCaches {
    /// Creates empty caches for one deal configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-warms the read-only leader-hashkey table. Called by the deal
    /// setup; the first caller signs, everyone after reads lock-free.
    fn ensure_leader_hashkeys(&self, leaders: &BTreeSet<PartyId>) {
        self.leader_hashkeys.get_or_init(|| {
            leaders
                .iter()
                .map(|&leader| {
                    let hashkey =
                        Hashkey::from_leader(leader, leader_secret(leader), &party_keypair(leader));
                    (leader, hashkey)
                })
                .collect()
        });
    }

    /// The leader's initial hashkey: from the pre-warmed table when
    /// available, else computed into the caller's per-worker memo.
    /// Always signed from the canonical seeded material
    /// ([`leader_secret`]/[`party_keypair`]) — the same derivation the deal
    /// setup uses — so the pre-warmed table and the fallback can never
    /// disagree.
    fn leader_hashkey(&self, leader: PartyId, memo: &mut HashkeyMemo) -> Hashkey {
        if let Some(table) = self.leader_hashkeys.get() {
            if let Some(hashkey) = table.get(&leader) {
                return hashkey.clone();
            }
        }
        memo.entry((leader, None))
            .or_insert_with(|| {
                Hashkey::from_leader(leader, leader_secret(leader), &party_keypair(leader))
            })
            .clone()
    }

    /// `base` extended by `party`, signed once per (base, party) *per
    /// worker*: extensions depend on which hashkey a party observed first,
    /// so they cannot be pre-warmed; the memo is per-step state, carried
    /// across scenario forks by the deviation tree.
    fn extend_hashkey(
        &self,
        base: &Hashkey,
        party: PartyId,
        keys: &KeyPair,
        memo: &mut HashkeyMemo,
    ) -> Hashkey {
        memo.entry((party, Some(base.chain_tag())))
            .or_insert_with(|| base.extend(party, keys))
            .clone()
    }
}

/// Configuration of a hedged deal.
#[derive(Clone, Debug)]
pub struct DealConfig {
    /// The transfer digraph (party ids as vertices).
    pub digraph: Digraph,
    /// The leader set (must be a feedback vertex set).
    pub leaders: BTreeSet<PartyId>,
    /// The chains involved, by name.
    pub chains: Vec<String>,
    /// The arcs of the deal.
    pub arcs: Vec<ArcSpec>,
    /// Parties that must wait for all incoming assets before escrowing their
    /// own outgoing assets (followers, and the broker in §8).
    pub wait_for_incoming: BTreeSet<PartyId>,
    /// The base premium `p`.
    pub base_premium: Amount,
    /// The synchrony bound Δ in blocks.
    pub delta_blocks: u64,
    /// Initial endowment of each party's traded assets, as
    /// `(party, chain, asset, amount)`; parties are also endowed with
    /// `premium_float` native currency on every chain for premiums.
    pub endowments: Vec<(PartyId, String, String, Amount)>,
    /// Native-currency float minted per party per chain to fund premiums.
    /// Size it with [`DealConfig::premium_float_for`]; it is computed once
    /// at configuration time because sweeps re-run the same config
    /// thousands of times.
    pub premium_float: Amount,
    /// Cross-run caches (see [`DealCaches`]); fresh per configuration.
    pub caches: DealCaches,
}

impl DealConfig {
    /// Sizes the per-party, per-chain native-currency float for a deal over
    /// `digraph` with the given `leaders`, `arcs` and `base_premium`.
    ///
    /// The historical constant float of 10^6 base premiums covers the
    /// paper's hand-built examples, but escrow and redemption premiums grow
    /// exponentially with party count on dense generated digraphs (§7), so
    /// the float is also bounded below by the deal's actual premium
    /// structure: the materialised per-arc escrow premiums plus every
    /// Equation (1) redemption obligation of every leader.
    pub fn premium_float_for(
        digraph: &Digraph,
        leaders: &BTreeSet<PartyId>,
        arcs: &[ArcSpec],
        base_premium: Amount,
    ) -> Amount {
        let escrow_need: u128 = arcs.iter().map(|arc| arc.escrow_premium.value()).sum();
        let redemption_need: u128 = leaders
            .iter()
            .flat_map(|leader| {
                swapgraph::premiums::redemption_premium_table(
                    digraph,
                    leader.0,
                    base_premium.value(),
                )
            })
            .map(|entry| entry.amount)
            .sum();
        Amount::new(
            base_premium
                .scaled(1_000_000)
                .value()
                .max((escrow_need + redemption_need).saturating_mul(4)),
        )
    }
    /// All parties appearing in the digraph, in ascending order.
    pub fn parties(&self) -> Vec<PartyId> {
        self.digraph.vertices().map(PartyId).collect()
    }

    fn n(&self) -> u64 {
        self.digraph.vertex_count() as u64
    }

    /// The §7 phase deadlines this configuration publishes on every arc
    /// escrow: `ℓΔ`-staggered ladders anchored at `nΔ, 2nΔ, 3nΔ` with the
    /// final deadline at `(4n + diam + 1)·Δ`. Public so static schedule
    /// checks (the `staticcheck` crate) can verify the ladder against the
    /// digraph without building a deal.
    pub fn arc_deadlines(&self) -> ArcDeadlines {
        self.deadlines()
    }

    fn deadlines(&self) -> ArcDeadlines {
        self.caches
            .deadlines
            .get_or_init(|| {
                let d = self.delta_blocks;
                let n = self.n();
                let diam = self.digraph.diameter().unwrap_or(n);
                ArcDeadlines {
                    escrow_premium_deadline: Time(n * d),
                    redemption_premium_deadline: Time(2 * n * d),
                    asset_escrow_deadline: Time(3 * n * d),
                    hashkey_timeout_base: Time(3 * n * d),
                    delta_blocks: d,
                    final_deadline: Time((4 * n + diam + 1) * d),
                }
            })
            .clone()
    }

    fn final_deadline(&self) -> Time {
        self.deadlines().final_deadline
    }

    /// Each party's depth in the wait-for-incoming dependency DAG: parties
    /// that escrow unconditionally (leaders) are depth 0; a waiting party
    /// sits one level below the deepest sender it waits on. The leader set
    /// is a feedback vertex set, so the waiting sub-digraph is acyclic and
    /// the fixed point below converges within `n` sweeps; anything left
    /// unassigned (an invalid configuration) is capped at `n`.
    fn escrow_depths(&self) -> &BTreeMap<PartyId, u64> {
        self.caches.escrow_depths.get_or_init(|| {
            let parties = self.parties();
            let mut depths: BTreeMap<PartyId, u64> = parties
                .iter()
                .filter(|p| !self.wait_for_incoming.contains(p))
                .map(|&p| (p, 0))
                .collect();
            for _ in 0..parties.len() {
                let mut changed = false;
                for &v in parties.iter().filter(|p| self.wait_for_incoming.contains(p)) {
                    if depths.contains_key(&v) {
                        continue;
                    }
                    let senders: Vec<PartyId> =
                        self.digraph.in_arcs(v.0).into_iter().map(|(u, _)| PartyId(u)).collect();
                    if let Some(depth) =
                        senders.iter().map(|u| depths.get(u).copied()).collect::<Option<Vec<_>>>()
                    {
                        depths.insert(v, 1 + depth.into_iter().max().unwrap_or(0));
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for &p in &parties {
                depths.entry(p).or_insert(parties.len() as u64);
            }
            depths
        })
    }

    /// The staggered asset-escrow deadline of `sender`'s outgoing arcs:
    /// `redemption_premium_deadline + (depth + 1)·Δ`.
    ///
    /// The escrow phase chains through waiting parties — a follower escrows
    /// only after observing every incoming asset — so a single shared
    /// deadline had a deadline-edge hole: a sender escrowing at the last
    /// legal instant (a crash-recovered leader, say) left its dependents
    /// zero rounds to follow, and the dependents' forfeited escrow premiums
    /// flowed to the deviator. Staggering by dependency depth restores the
    /// §7 schedule: every hop — including a last-instant one — leaves the
    /// next a full Δ, and the deepest party's deadline is still at most the
    /// phase end `3nΔ`.
    pub fn asset_escrow_deadline_of(&self, sender: PartyId) -> Time {
        let deadlines = self.deadlines();
        let depth = self.escrow_depths().get(&sender).copied().unwrap_or(0);
        deadlines
            .asset_escrow_deadline
            .min(deadlines.redemption_premium_deadline.plus((depth + 1) * self.delta_blocks))
    }
}

/// Outcome of a single party in a deal run.
#[derive(Clone, Debug, Default)]
pub struct DealPartyOutcome {
    /// Net native-currency (premium) payoff across every chain.
    pub premium_payoff: i128,
    /// Number of outgoing arcs on which this party escrowed an asset that
    /// was eventually refunded rather than redeemed.
    pub escrowed_unredeemed: usize,
    /// Number of outgoing arcs on which this party's asset was redeemed.
    pub escrowed_redeemed: usize,
    /// Number of outgoing arcs still holding this party's asset when the
    /// run ended: neither redeemed nor refunded. Always zero for a
    /// compliant party (its settle step frees every incident arc after the
    /// final deadline); nonzero means a principal was stranded.
    pub escrowed_stuck: usize,
    /// Number of incoming arcs on which this party received the asset.
    pub received: usize,
    /// Number of incoming arcs of this party.
    pub incoming_arcs: usize,
    /// Whether the hedged predicate holds for this party (always `true` for
    /// deviating parties, for which the predicate is vacuous): a compliant
    /// party whose swap fails — any escrow refunded unredeemed — nets at
    /// least one base premium `p` in total compensation, and never ends
    /// with a negative premium payoff otherwise (§7's theorem; see the
    /// README theorem notes for why the guarantee is total rather than
    /// per-arc).
    pub hedged: bool,
    /// Whether the all-or-nothing safety condition holds for this party: if
    /// any of its escrows was redeemed, it received every incoming asset.
    pub safety: bool,
}

/// Outcome of a deal run.
#[derive(Clone, Debug)]
pub struct DealReport {
    /// The strategies used.
    pub strategies: BTreeMap<PartyId, Strategy>,
    /// Whether every arc's asset was redeemed.
    pub completed: bool,
    /// Per-party outcomes.
    pub parties: BTreeMap<PartyId, DealPartyOutcome>,
    /// Raw payoffs.
    pub payoffs: Payoffs,
    /// Rejected actions during the run.
    pub failed_actions: usize,
    /// Synchronous rounds executed.
    pub rounds: usize,
}

impl DealReport {
    /// Returns `true` if every compliant party is hedged and safe.
    pub fn all_compliant_hedged(&self) -> bool {
        self.parties.values().all(|p| p.hedged && p.safety)
    }
}

struct DealSetup {
    arc_addrs: Arc<BTreeMap<(PartyId, PartyId), ContractAddr>>,
    native_assets: Vec<AssetId>,
    traded_assets: Vec<AssetId>,
    secrets: BTreeMap<PartyId, Secret>,
    keypairs: BTreeMap<PartyId, KeyPair>,
}

fn arc_label(from: PartyId, to: PartyId) -> Label {
    Label::Arc { ns: "deal/arc", from: from.0, to: to.0 }
}

/// Key pairs and leader secrets are derived from fixed per-party seeds, and
/// sweeps replay the same setup thousands of times — so the small-id range
/// is derived once and cached. Results are identical to computing them
/// per run.
const CACHED_IDS: u64 = 64;

fn party_keypair(party: PartyId) -> KeyPair {
    static CACHE: OnceLock<Vec<KeyPair>> = OnceLock::new();
    let seed = 1000 + u64::from(party.0);
    if u64::from(party.0) < CACHED_IDS {
        CACHE.get_or_init(|| (0..CACHED_IDS).map(|i| KeyPair::from_seed(1000 + i)).collect())
            [party.0 as usize]
            .clone()
    } else {
        KeyPair::from_seed(seed)
    }
}

fn leader_secret(leader: PartyId) -> Secret {
    static CACHE: OnceLock<Vec<Secret>> = OnceLock::new();
    let seed = 7000 + u64::from(leader.0);
    if u64::from(leader.0) < CACHED_IDS {
        CACHE.get_or_init(|| (0..CACHED_IDS).map(|i| Secret::from_seed(7000 + i)).collect())
            [leader.0 as usize]
            .clone()
    } else {
        Secret::from_seed(seed)
    }
}

/// Builds the deal's world state inside `world`, which is reset first (its
/// trace mode is preserved, so pooled sweep worlds stay trace-free while
/// the public one-shot entry points keep full traces).
fn build(world: &mut World, config: &DealConfig) -> DealSetup {
    world.reset(1);
    // Pre-warm the configuration's read-only tables (leader hashkeys) so
    // every later access — from any worker — is a lock-free read.
    config.caches.ensure_leader_hashkeys(&config.leaders);
    // Setup tables borrow their keys from the config: a sweep re-runs the
    // same config thousands of times and must not re-clone its strings.
    let mut chain_ids: BTreeMap<&str, ChainId> = BTreeMap::new();
    for name in &config.chains {
        chain_ids.insert(name.as_str(), world.add_chain(name));
    }
    let mut asset_ids: BTreeMap<&str, AssetId> = BTreeMap::new();
    for arc in &config.arcs {
        if !asset_ids.contains_key(arc.asset_name.as_str()) {
            let id = world.register_asset(arc.asset_name.clone());
            asset_ids.insert(arc.asset_name.as_str(), id);
        }
    }
    let parties = config.parties();

    // Keys.
    let mut keys = PartyKeys::new();
    let mut keypairs = BTreeMap::new();
    for &party in &parties {
        let pair = party_keypair(party);
        world.directory_mut().register(&pair);
        keys.insert(party, pair.public());
        keypairs.insert(party, pair);
    }
    let keys = Arc::new(keys);

    // Endowments: traded assets per the config, plus generous native
    // balances on every chain for premiums.
    for (party, chain, asset, amount) in &config.endowments {
        let chain_id = chain_ids[chain.as_str()];
        let asset_id = asset_ids[asset.as_str()];
        world.chain_mut(chain_id).mint(*party, asset_id, *amount);
    }
    let premium_float = config.premium_float;
    let native_assets: Vec<AssetId> = config
        .chains
        .iter()
        .map(|name| world.chain(chain_ids[name.as_str()]).native_asset())
        .collect();
    for &party in &parties {
        for name in &config.chains {
            let chain_id = chain_ids[name.as_str()];
            let native = world.chain(chain_id).native_asset();
            world.chain_mut(chain_id).mint(party, native, premium_float);
        }
    }

    // Leaders' secrets and the shared hashlock vector.
    let mut secrets = BTreeMap::new();
    let mut hashlocks = Vec::new();
    for &leader in &config.leaders {
        let secret = leader_secret(leader);
        hashlocks.push((leader, secret.hashlock()));
        secrets.insert(leader, secret);
    }
    let hashlocks = Arc::new(hashlocks);
    let digraph = Arc::new(config.digraph.clone());

    // One ArcEscrow per arc. All arcs (and, through the config-level
    // caches, all runs of this config) share the hashkey-verification memo.
    let verify_cache = config.caches.verify.clone();
    let deadlines = config.deadlines();
    let mut arc_addrs = BTreeMap::new();
    for arc in &config.arcs {
        let chain_id = chain_ids[arc.chain.as_str()];
        let native = world.chain(chain_id).native_asset();
        // Per-arc deadlines: the asset-escrow deadline is staggered by the
        // sender's dependency depth (see `asset_escrow_deadline_of`).
        let arc_deadlines = ArcDeadlines {
            asset_escrow_deadline: config.asset_escrow_deadline_of(arc.from),
            ..deadlines.clone()
        };
        let params = ArcEscrowParams {
            sender: arc.from,
            receiver: arc.to,
            asset: asset_ids[arc.asset_name.as_str()],
            amount: arc.amount,
            premium_asset: native,
            base_premium: config.base_premium,
            escrow_premium: arc.escrow_premium,
            hashlocks: Arc::clone(&hashlocks),
            digraph: Arc::clone(&digraph),
            keys: Arc::clone(&keys),
            deadlines: arc_deadlines,
            verify_cache: verify_cache.clone(),
            premium_evaluator: Arc::clone(&config.caches.premium_evaluator),
        };
        let addr = world.publish_labeled(
            chain_id,
            arc.from,
            arc_label(arc.from, arc.to),
            Box::new(ArcEscrow::new(params)),
        );
        arc_addrs.insert((arc.from, arc.to), addr);
    }

    let traded_assets: Vec<AssetId> = asset_ids.values().copied().collect();
    DealSetup { arc_addrs: Arc::new(arc_addrs), native_assets, traded_assets, secrets, keypairs }
}

/// The earliest of `deadlines` still in the future — the next time a
/// frozen-world step's behaviour can change — or [`Time::MAX`] when every
/// deadline has passed (the step is then inert until other parties act).
fn wake_after(now: Time, deadlines: &[Time]) -> Time {
    deadlines.iter().copied().filter(|t| *t > now).min().unwrap_or(Time::MAX)
}

fn arc_contract(world: &World, addr: ContractAddr) -> &ArcEscrow {
    world.chain(addr.chain).contract_as::<ArcEscrow>(addr.contract).expect("arc escrow present")
}

fn arc_needs_settle(contract: &ArcEscrow, now: Time) -> bool {
    let deadlines = &contract.params().deadlines;
    let escrow_premium_stuck = contract.escrow_premium_state() == PremiumSlotState::Held
        && contract.principal_state() == PrincipalState::NotEscrowed
        && now.has_reached(deadlines.asset_escrow_deadline);
    let late = now.has_reached(deadlines.final_deadline);
    let principal_stuck = contract.principal_state() == PrincipalState::Held && late;
    let redemption_stuck = late
        && contract.params().hashlocks.iter().any(|(leader, _)| {
            contract.redemption_premium_state(*leader) == PremiumSlotState::Held
                && !contract.hashkey_presented(*leader)
        });
    escrow_premium_stuck || principal_stuck || redemption_stuck
}

/// The immutable context one party's five step closures share.
///
/// Wrapped in a single `Arc` so building a party's script costs five `Arc`
/// clones instead of re-cloning the arc tables and adjacency lists into
/// every phase closure.
struct PartyCtx {
    arc_addrs: Arc<BTreeMap<(PartyId, PartyId), ContractAddr>>,
    out_arcs: Vec<(PartyId, PartyId)>,
    in_arcs: Vec<(PartyId, PartyId)>,
    leader_list: Vec<PartyId>,
}

/// Builds the protocol script for one party of the deal.
fn party_steps(config: &DealConfig, setup: &DealSetup, me: PartyId) -> Vec<Step> {
    let ctx = Arc::new(PartyCtx {
        arc_addrs: Arc::clone(&setup.arc_addrs),
        out_arcs: config
            .digraph
            .out_arcs(me.0)
            .into_iter()
            .map(|(u, v)| (PartyId(u), PartyId(v)))
            .collect(),
        in_arcs: config
            .digraph
            .in_arcs(me.0)
            .into_iter()
            .map(|(u, v)| (PartyId(u), PartyId(v)))
            .collect(),
        leader_list: config.leaders.iter().copied().collect(),
    });
    let deadlines = config.deadlines();
    let wait_for_incoming = config.wait_for_incoming.contains(&me);
    let my_secret = setup.secrets.get(&me).cloned();
    let my_keys = setup.keypairs[&me].clone();
    let final_deadline = config.final_deadline();

    let mut steps = Vec::new();

    // Phase 1: escrow premiums on outgoing arcs.
    {
        let ctx = Arc::clone(&ctx);
        let give_up = deadlines.escrow_premium_deadline;
        steps.push(
            Step::new("deposit escrow premiums", move |world: &World| {
                if world.now().has_reached(give_up) {
                    return StepOutcome::Complete(vec![]);
                }
                let ready = !wait_for_incoming
                    || ctx.in_arcs.iter().all(|arc| {
                        arc_contract(world, ctx.arc_addrs[arc]).escrow_premium_state()
                            != PremiumSlotState::NotDeposited
                    });
                if !ready {
                    // On a frozen world readiness cannot change; the clock only
                    // matters again at the give-up deadline.
                    return StepOutcome::WaitUntil(give_up);
                }
                let actions = ctx
                    .out_arcs
                    .iter()
                    .map(|arc| {
                        Action::call(
                            ctx.arc_addrs[arc],
                            ArcEscrowMsg::DepositEscrowPremium,
                            CallDesc::Arc {
                                party: arc.0,
                                verb: "deposits escrow premium on",
                                from: arc.0,
                                to: arc.1,
                            },
                        )
                    })
                    .collect();
                StepOutcome::Complete(actions)
            })
            .with_deadline(give_up),
        );
    }

    // Phase 2: redemption premiums, one obligation per leader.
    {
        let ctx = Arc::clone(&ctx);
        let give_up = deadlines.redemption_premium_deadline;
        let escrow_premium_deadline = deadlines.escrow_premium_deadline;
        steps.push(
            Step::stateful("deposit redemption premiums", move |memo, world: &World| {
                let done = &mut memo.done;
                let now = world.now();
                let mut actions = Vec::new();
                for &leader in &ctx.leader_list {
                    if done.contains(&leader) {
                        continue;
                    }
                    if now.has_reached(give_up) {
                        done.insert(leader);
                        continue;
                    }
                    if leader == me {
                        // Deposit only once every incoming escrow premium arrived
                        // (Lemma 5 behaviour); give up silently otherwise.
                        let all_in = ctx.in_arcs.iter().all(|arc| {
                            arc_contract(world, ctx.arc_addrs[arc]).escrow_premium_state()
                                != PremiumSlotState::NotDeposited
                        });
                        if all_in {
                            for arc in &ctx.in_arcs {
                                actions.push(Action::call(
                                    ctx.arc_addrs[arc],
                                    ArcEscrowMsg::DepositRedemptionPremium {
                                        leader,
                                        path: vec![me],
                                    },
                                    CallDesc::Arc {
                                        party: me,
                                        verb: "deposits own redemption premium on",
                                        from: arc.0,
                                        to: arc.1,
                                    },
                                ));
                            }
                            done.insert(leader);
                        } else if now.has_reached(escrow_premium_deadline) {
                            done.insert(leader);
                        }
                        continue;
                    }
                    // Follower rule: wait for a premium for this leader on some
                    // outgoing arc, then extend its path onto incoming arcs.
                    //
                    // Candidate paths are gathered from *every* outgoing arc: a
                    // path through this party cannot be extended, and a path
                    // through an in-arc's sender prices to zero on that arc
                    // (Equation (1) treats on-path senders as already
                    // protected), so each in-arc prefers the shortest
                    // sender-avoiding candidate. An earlier revision extended
                    // whichever path it happened to observe first, and a
                    // timing deviator could reorder observations so that a
                    // through-the-sender path arrived first — silently zeroing
                    // a compliant sender's compensation.
                    let mut candidates: Vec<Vec<PartyId>> = ctx
                        .out_arcs
                        .iter()
                        .filter_map(|arc| {
                            arc_contract(world, ctx.arc_addrs[arc])
                                .redemption_premium_path(leader)
                                .filter(|path| !path.contains(&me))
                                .map(|path| path.to_vec())
                        })
                        .collect();
                    candidates.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
                    candidates.dedup();
                    if candidates.is_empty() {
                        // Nothing extensible yet. If every outgoing arc already
                        // carries an (inextensible) path through this party, no
                        // better observation can come: give up on this leader.
                        let all_inextensible = !ctx.out_arcs.is_empty()
                            && ctx.out_arcs.iter().all(|arc| {
                                arc_contract(world, ctx.arc_addrs[arc])
                                    .redemption_premium_path(leader)
                                    .is_some_and(|path| path.contains(&me))
                            });
                        if all_inextensible {
                            done.insert(leader);
                        }
                        continue;
                    }
                    for arc in &ctx.in_arcs {
                        let best = candidates
                            .iter()
                            .find(|path| !path.contains(&arc.0))
                            .unwrap_or(&candidates[0]);
                        let mut extended = vec![me];
                        extended.extend_from_slice(best);
                        actions.push(Action::call(
                            ctx.arc_addrs[arc],
                            ArcEscrowMsg::DepositRedemptionPremium { leader, path: extended },
                            CallDesc::SubjectArc {
                                party: me,
                                verb: "passes redemption premium for",
                                subject: leader,
                                link: "to",
                                from: arc.0,
                                to: arc.1,
                            },
                        ));
                    }
                    done.insert(leader);
                }
                if done.len() == ctx.leader_list.len() {
                    StepOutcome::Complete(actions)
                } else if actions.is_empty() {
                    // Frozen-world behaviour only changes at the deadlines the
                    // branches above test (both with idempotent memo effects).
                    StepOutcome::WaitUntil(wake_after(now, &[give_up, escrow_premium_deadline]))
                } else {
                    StepOutcome::Progress(actions)
                }
            })
            .with_deadline(give_up),
        );
    }

    // Phase 3: escrow assets on outgoing arcs. The give-up (and the
    // contracts' acceptance window) is this sender's staggered deadline.
    {
        let ctx = Arc::clone(&ctx);
        let phase_start = deadlines.redemption_premium_deadline;
        let give_up = config.asset_escrow_deadline_of(me);
        steps.push(
            Step::new("escrow assets", move |world: &World| {
                let now = world.now();
                if now.has_reached(give_up) {
                    return StepOutcome::Complete(vec![]);
                }
                let ready = if wait_for_incoming {
                    ctx.in_arcs.iter().all(|arc| {
                        matches!(
                            arc_contract(world, ctx.arc_addrs[arc]).principal_state(),
                            PrincipalState::Held | PrincipalState::Redeemed
                        )
                    })
                } else {
                    now.has_reached(phase_start)
                };
                if !ready {
                    return StepOutcome::WaitUntil(if wait_for_incoming {
                        give_up
                    } else {
                        wake_after(now, &[phase_start, give_up])
                    });
                }
                // Leaders (and everyone else) only escrow on arcs whose escrow
                // premium is activated; an unactivated arc means the receiver
                // skipped its redemption premiums, so escrowing there is unsafe.
                let actions: Vec<Action> = ctx
                    .out_arcs
                    .iter()
                    .filter(|arc| {
                        arc_contract(world, ctx.arc_addrs[arc]).escrow_premium_activated()
                    })
                    .map(|arc| {
                        Action::call(
                            ctx.arc_addrs[arc],
                            ArcEscrowMsg::EscrowAsset,
                            CallDesc::Arc {
                                party: arc.0,
                                verb: "escrows its asset on",
                                from: arc.0,
                                to: arc.1,
                            },
                        )
                    })
                    .collect();
                StepOutcome::Complete(actions)
            })
            .with_deadline(give_up),
        );
    }

    // Phase 4: release and propagate hashkeys.
    {
        let ctx = Arc::clone(&ctx);
        let caches = config.caches.clone();
        let give_up = final_deadline;
        let asset_escrow_deadline = deadlines.asset_escrow_deadline;
        steps.push(
            Step::stateful("release and propagate hashkeys", move |memo, world: &World| {
                let StepMemo { done, hashkeys } = memo;
                let now = world.now();
                let mut actions = Vec::new();
                for &leader in &ctx.leader_list {
                    if done.contains(&leader) {
                        continue;
                    }
                    if now.has_reached(give_up) {
                        done.insert(leader);
                        continue;
                    }
                    let hashkey: Option<Hashkey> = if leader == me {
                        // Release the own secret once every incoming arc is
                        // funded (the normal case), or — per Lemma 4 — once it is
                        // clear this party escrowed nothing itself, so releasing
                        // is free and recovers its redemption premiums.
                        let all_in = !ctx.in_arcs.is_empty()
                            && ctx.in_arcs.iter().all(|arc| {
                                matches!(
                                    arc_contract(world, ctx.arc_addrs[arc]).principal_state(),
                                    PrincipalState::Held | PrincipalState::Redeemed
                                )
                            });
                        let escrowed_nothing = ctx.out_arcs.iter().all(|arc| {
                            matches!(
                                arc_contract(world, ctx.arc_addrs[arc]).principal_state(),
                                PrincipalState::NotEscrowed
                            )
                        });
                        let past_escrow_phase = now.has_reached(asset_escrow_deadline);
                        if all_in || (escrowed_nothing && past_escrow_phase) {
                            my_secret.as_ref().map(|_| caches.leader_hashkey(me, hashkeys))
                        } else {
                            None
                        }
                    } else {
                        // Learn the hashkey from an outgoing arc and extend it.
                        ctx.out_arcs.iter().find_map(|arc| {
                            arc_contract(world, ctx.arc_addrs[arc])
                                .presented_hashkey(leader)
                                .map(|k| caches.extend_hashkey(k, me, &my_keys, hashkeys))
                        })
                    };
                    if let Some(hashkey) = hashkey {
                        for arc in &ctx.in_arcs {
                            actions.push(Action::call(
                                ctx.arc_addrs[arc],
                                ArcEscrowMsg::PresentHashkey { hashkey: hashkey.clone() },
                                CallDesc::SubjectArc {
                                    party: me,
                                    verb: "presents hashkey of",
                                    subject: leader,
                                    link: "on",
                                    from: arc.0,
                                    to: arc.1,
                                },
                            ));
                        }
                        done.insert(leader);
                    }
                }
                if done.len() == ctx.leader_list.len() {
                    StepOutcome::Complete(actions)
                } else if actions.is_empty() {
                    // Frozen-world behaviour only changes when the escrow phase
                    // ends (Lemma-4 release) or at the final deadline.
                    StepOutcome::WaitUntil(wake_after(now, &[asset_escrow_deadline, give_up]))
                } else {
                    StepOutcome::Progress(actions)
                }
            })
            .with_deadline(give_up),
        );
    }

    // Recovery: settle every incident arc after the final deadline.
    {
        let ctx = Arc::clone(&ctx);
        let incident: Vec<(PartyId, PartyId)> =
            ctx.out_arcs.iter().chain(ctx.in_arcs.iter()).copied().collect();
        steps.push(Step::new("settle incident arcs", move |world: &World| {
            let now = world.now();
            let unresolved: Vec<&(PartyId, PartyId)> = incident
                .iter()
                .filter(|arc| arc_needs_settle(arc_contract(world, ctx.arc_addrs[arc]), now))
                .collect();
            let anything_pending = incident.iter().any(|arc| {
                let c = arc_contract(world, ctx.arc_addrs[arc]);
                c.escrow_premium_state() == PremiumSlotState::Held
                    || c.principal_state() == PrincipalState::Held
                    || c.params()
                        .hashlocks
                        .iter()
                        .any(|(l, _)| c.redemption_premium_state(*l) == PremiumSlotState::Held)
            });
            if !anything_pending {
                return StepOutcome::Complete(vec![]);
            }
            if !now.has_reached(final_deadline) {
                return StepOutcome::WaitUntil(final_deadline);
            }
            let actions: Vec<Action> = unresolved
                .into_iter()
                .map(|arc| {
                    Action::call(
                        ctx.arc_addrs[arc],
                        ArcEscrowMsg::Settle,
                        CallDesc::Arc { party: me, verb: "settles", from: arc.0, to: arc.1 },
                    )
                })
                .collect();
            StepOutcome::Complete(actions)
        }));
    }

    steps
}

/// Builds the deal's world (every arc escrow published with its real
/// deadline parameters) and compliant scripted parties without executing a
/// single round. Static analyzers consume the contracts' state specs and
/// the scripts' deadline annotations from the result.
pub fn deal_static_setup(config: &DealConfig) -> (World, Vec<ScriptedParty>) {
    let mut world = World::new(1);
    let setup = build(&mut world, config);
    let actors = deal_actors(config, &setup, &|_| Strategy::compliant());
    (world, actors)
}

/// Runs a hedged deal with the given per-party strategies.
///
/// Parties not present in `strategies` default to [`Strategy::compliant()`].
pub fn run_deal(config: &DealConfig, strategies: &BTreeMap<PartyId, Strategy>) -> DealReport {
    run_deal_in(&mut World::new(1), config, strategies)
}

/// Runs a hedged deal inside a caller-provided world, which is reset first.
///
/// This is the hot-path entry point for sweep engines: a pooled world keeps
/// its ledgers, contract stores and trace buffers allocated across
/// thousands of scenario runs, and its [`chainsim::TraceMode`] decides
/// whether the run records event traces. The report is identical to
/// [`run_deal`]'s for any world state and trace mode.
pub fn run_deal_in(
    world: &mut World,
    config: &DealConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
) -> DealReport {
    let setup = build(world, config);
    let tables = DealTables::from_setup(config, &setup);
    let before = BalanceSnapshot::capture(world, &tables.parties, &tables.all_assets);
    let actors = deal_actors(config, &setup, &|party| {
        strategies.get(&party).copied().unwrap_or(Strategy::compliant())
    });
    let run_report = run_parties(world, actors, deal_max_rounds(config));
    let resumed = crate::script::ResumedRun {
        rounds: run_report.rounds(),
        failed_actions: run_report.failures().len(),
        state_key: 0,
        zero_tail: false,
    };
    let state = FinalState::capture(world, &tables, &before, &resumed);
    finish_report(config, strategies, &tables, &state)
}

/// The per-worker deviation-tree cache for one deal configuration: the
/// recorded compliant prefix plus the setup tables report derivation needs.
///
/// Built lazily by the first [`run_deal_shared`] call on a worker and
/// reused for every scenario of the same configuration that worker runs.
pub struct DealPrefix {
    prefix: DeviationTree,
    tables: DealTables,
    before: BalanceSnapshot,
    /// Final-state data of zero-tail resumes, keyed by the resume's
    /// divergence-round state key: a profile whose fork runs zero tail
    /// rounds ends in a state that is a pure function of that key, so the
    /// (relatively expensive) balance capture, payoff diff and
    /// contract-state scan are done once per checkpoint instead of once
    /// per profile.
    zero_tail: BTreeMap<u64, FinalState>,
}

impl fmt::Debug for DealPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DealPrefix").field("prefix", &self.prefix).finish()
    }
}

/// Runs a hedged deal through the deviation tree: the compliant prefix is
/// executed (and checkpointed) once per worker, and each profile resumes
/// from the snapshot at its divergence round instead of replaying the
/// shared prefix.
///
/// The report is byte-identical to [`run_deal_in`]'s for every profile —
/// pinned by the `replay-oracle` differential tests in `modelcheck`.
pub fn run_deal_shared(
    world: &mut World,
    config: &DealConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
    cache: &mut Option<DealPrefix>,
) -> DealReport {
    if cache.is_none() {
        let setup = build(world, config);
        let tables = DealTables::from_setup(config, &setup);
        let before = BalanceSnapshot::capture(world, &tables.parties, &tables.all_assets);
        let actors = deal_actors(config, &setup, &|_| Strategy::compliant());
        let prefix = DeviationTree::record(world, actors, deal_max_rounds(config));
        *cache = Some(DealPrefix { prefix, tables, before, zero_tail: BTreeMap::new() });
    }
    let DealPrefix { prefix, tables, before, zero_tail } =
        cache.as_mut().expect("cache populated above");
    let strategy_of =
        |party: PartyId| strategies.get(&party).copied().unwrap_or(Strategy::compliant());
    let resumed = prefix.resume(world, &strategy_of);
    if resumed.zero_tail {
        // The profile's final state is exactly its divergence checkpoint:
        // capture it once, then derive every such profile's report from the
        // cached capture.
        let state = zero_tail
            .entry(resumed.state_key)
            .or_insert_with(|| FinalState::capture(world, tables, before, &resumed));
        return finish_report(config, strategies, tables, state);
    }
    let state = FinalState::capture(world, tables, before, &resumed);
    finish_report(config, strategies, tables, &state)
}

/// The round budget of a deal run: past the final deadline plus slack for
/// the settlement steps.
fn deal_max_rounds(config: &DealConfig) -> u64 {
    config.final_deadline().height() + 3 * config.delta_blocks + 4
}

/// The scripted parties of a deal run, in party-id order.
fn deal_actors(
    config: &DealConfig,
    setup: &DealSetup,
    strategy_of: &dyn Fn(PartyId) -> Strategy,
) -> Vec<ScriptedParty> {
    config
        .parties()
        .iter()
        .map(|&party| {
            let steps = party_steps(config, setup, party);
            debug_assert_eq!(
                steps.len(),
                SCRIPT_STEPS,
                "SCRIPT_STEPS must match the deal script so sweeps cover all stop-points"
            );
            ScriptedParty::new(party, steps, strategy_of(party)).with_delta(config.delta_blocks)
        })
        .collect()
}

/// The slices of a [`DealSetup`] that report derivation needs (the rest —
/// secrets, key pairs — is baked into the step closures).
struct DealTables {
    arc_addrs: Arc<BTreeMap<(PartyId, PartyId), ContractAddr>>,
    parties: Vec<PartyId>,
    native_assets: Vec<AssetId>,
    all_assets: Vec<AssetId>,
}

impl DealTables {
    fn from_setup(config: &DealConfig, setup: &DealSetup) -> Self {
        let mut all_assets = setup.traded_assets.clone();
        all_assets.extend(setup.native_assets.iter().copied());
        DealTables {
            arc_addrs: Arc::clone(&setup.arc_addrs),
            parties: config.parties(),
            native_assets: setup.native_assets.clone(),
            all_assets,
        }
    }
}

/// Everything a [`DealReport`] derivation reads from the final world
/// state: the post-run balances/payoffs and each arc's principal state.
/// Capturing it is the per-scenario cost floor, so zero-tail resumes cache
/// one per divergence checkpoint.
struct FinalState {
    payoffs: Payoffs,
    arc_states: Vec<((PartyId, PartyId), PrincipalState)>,
    failed_actions: usize,
    rounds: usize,
}

impl FinalState {
    fn capture(
        world: &World,
        tables: &DealTables,
        before: &BalanceSnapshot,
        resumed: &crate::script::ResumedRun,
    ) -> Self {
        let after = BalanceSnapshot::capture(world, &tables.parties, &tables.all_assets);
        FinalState {
            payoffs: Payoffs::between(before, &after),
            arc_states: tables
                .arc_addrs
                .iter()
                .map(|(arc, addr)| (*arc, arc_contract(world, *addr).principal_state()))
                .collect(),
            failed_actions: resumed.failed_actions,
            rounds: resumed.rounds,
        }
    }
}

/// Derives the [`DealReport`] from the captured final state. Shared by the
/// from-scratch and deviation-tree paths, which is what keeps their reports
/// byte-identical.
fn finish_report(
    config: &DealConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
    tables: &DealTables,
    state: &FinalState,
) -> DealReport {
    let parties = &tables.parties;
    let payoffs = &state.payoffs;

    let mut outcomes: BTreeMap<PartyId, DealPartyOutcome> = BTreeMap::new();
    let mut completed = true;
    for &party in parties {
        let strategy = strategies.get(&party).copied().unwrap_or(Strategy::compliant());
        let mut outcome = DealPartyOutcome {
            premium_payoff: payoffs.total_over(party, &tables.native_assets).value(),
            ..DealPartyOutcome::default()
        };
        for (arc, principal_state) in &state.arc_states {
            if *principal_state != PrincipalState::Redeemed {
                completed = false;
            }
            if arc.0 == party {
                match principal_state {
                    PrincipalState::Redeemed => outcome.escrowed_redeemed += 1,
                    PrincipalState::Refunded => outcome.escrowed_unredeemed += 1,
                    PrincipalState::Held => outcome.escrowed_stuck += 1,
                    PrincipalState::NotEscrowed => {}
                }
            }
            if arc.1 == party {
                outcome.incoming_arcs += 1;
                if *principal_state == PrincipalState::Redeemed {
                    outcome.received += 1;
                }
            }
        }
        // §7's guarantee is *total*: a failed swap leaves a compliant party
        // with at least one base premium p in net compensation, not p per
        // unredeemed arc. The Equation (1) recursion is pass-the-parcel
        // sized — the premium deposited on an arc covers the receiver's own
        // p plus everything the receiver forfeits upstream — so on digraphs
        // with heavily overlapping redemption paths a compliant party with
        // several unredeemed escrows legitimately nets exactly +p (see the
        // README theorem notes; `random_config(5, 4, seeds 2 and 4)` pin
        // the boundary case).
        let compensation_due =
            if outcome.escrowed_unredeemed > 0 { config.base_premium.value() as i128 } else { 0 };
        outcome.hedged = !strategy.is_compliant() || outcome.premium_payoff >= compensation_due;
        outcome.safety = !strategy.is_compliant()
            || outcome.escrowed_redeemed == 0
            || outcome.received == outcome.incoming_arcs;
        outcomes.insert(party, outcome);
    }

    DealReport {
        strategies: parties
            .iter()
            .map(|&p| (p, strategies.get(&p).copied().unwrap_or(Strategy::compliant())))
            .collect(),
        completed,
        parties: outcomes,
        payoffs: payoffs.clone(),
        failed_actions: state.failed_actions,
        rounds: state.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_party::figure3_config;

    #[test]
    fn compliant_figure3_deal_completes() {
        let config = figure3_config();
        let report = run_deal(&config, &BTreeMap::new());
        assert!(report.completed, "all arcs should be redeemed: {report:?}");
        assert!(report.all_compliant_hedged());
        assert_eq!(report.failed_actions, 0);
        for outcome in report.parties.values() {
            assert_eq!(outcome.premium_payoff, 0, "premiums refunded in a compliant run");
        }
        assert!(report.payoffs.conserved());
    }
}
