//! A generic engine for hedged multi-arc deals.
//!
//! Both the multi-party swap of §7 and the brokered deal of §8 are
//! instances of the same structure: a strongly-connected digraph of asset
//! transfers, a leader set, per-arc escrow (or trading) premiums, per-arc
//! redemption premiums derived from Equation (1), and the four-phase
//! hedged execution (escrow premiums → redemption premiums → asset escrow →
//! hashkey release). This module drives [`contracts::ArcEscrow`] contracts
//! for an arbitrary such configuration; [`crate::multi_party`] and
//! [`crate::broker`] are thin wrappers that build the configuration.

use std::collections::{BTreeMap, BTreeSet};

use chainsim::{Action, Amount, AssetId, ChainId, ContractAddr, PartyId, Time, World};
use contracts::{
    ArcDeadlines, ArcEscrow, ArcEscrowMsg, ArcEscrowParams, Hashkey, PartyKeys, PremiumSlotState,
    PrincipalState,
};
use cryptosim::{KeyPair, Secret};
use swapgraph::Digraph;

use crate::outcome::{BalanceSnapshot, Payoffs};
use crate::script::{run_parties, ScriptedParty, Step, StepOutcome, Strategy};

/// The number of scripted steps in each deal-engine role: escrow premiums,
/// redemption premiums, asset escrow, hashkey release, settlement.
/// [`Strategy::StopAfter`] points at or beyond this are equivalent to
/// compliance.
pub const SCRIPT_STEPS: usize = 5;

/// Every distinct per-party strategy of the deal engine: compliant plus each
/// stop-point of the five-step script. Model-checking sweeps range over
/// exactly this space.
pub fn strategy_space() -> Vec<Strategy> {
    Strategy::all(SCRIPT_STEPS)
}

/// One asset transfer of the deal.
#[derive(Clone, Debug)]
pub struct ArcSpec {
    /// The sender.
    pub from: PartyId,
    /// The receiver.
    pub to: PartyId,
    /// The chain the asset (and its escrow contract) lives on, named by key
    /// into [`DealConfig::chains`].
    pub chain: String,
    /// The asset transferred.
    pub asset_name: String,
    /// The amount transferred.
    pub amount: Amount,
    /// The escrow (or trading) premium the sender owes on this arc.
    pub escrow_premium: Amount,
}

/// Configuration of a hedged deal.
#[derive(Clone, Debug)]
pub struct DealConfig {
    /// The transfer digraph (party ids as vertices).
    pub digraph: Digraph,
    /// The leader set (must be a feedback vertex set).
    pub leaders: BTreeSet<PartyId>,
    /// The chains involved, by name.
    pub chains: Vec<String>,
    /// The arcs of the deal.
    pub arcs: Vec<ArcSpec>,
    /// Parties that must wait for all incoming assets before escrowing their
    /// own outgoing assets (followers, and the broker in §8).
    pub wait_for_incoming: BTreeSet<PartyId>,
    /// The base premium `p`.
    pub base_premium: Amount,
    /// The synchrony bound Δ in blocks.
    pub delta_blocks: u64,
    /// Initial endowment of each party's traded assets, as
    /// `(party, chain, asset, amount)`; parties are also endowed with
    /// `premium_float` native currency on every chain for premiums.
    pub endowments: Vec<(PartyId, String, String, Amount)>,
    /// Native-currency float minted per party per chain to fund premiums.
    /// Size it with [`DealConfig::premium_float_for`]; it is computed once
    /// at configuration time because sweeps re-run the same config
    /// thousands of times.
    pub premium_float: Amount,
}

impl DealConfig {
    /// Sizes the per-party, per-chain native-currency float for a deal over
    /// `digraph` with the given `leaders`, `arcs` and `base_premium`.
    ///
    /// The historical constant float of 10^6 base premiums covers the
    /// paper's hand-built examples, but escrow and redemption premiums grow
    /// exponentially with party count on dense generated digraphs (§7), so
    /// the float is also bounded below by the deal's actual premium
    /// structure: the materialised per-arc escrow premiums plus every
    /// Equation (1) redemption obligation of every leader.
    pub fn premium_float_for(
        digraph: &Digraph,
        leaders: &BTreeSet<PartyId>,
        arcs: &[ArcSpec],
        base_premium: Amount,
    ) -> Amount {
        let escrow_need: u128 = arcs.iter().map(|arc| arc.escrow_premium.value()).sum();
        let redemption_need: u128 = leaders
            .iter()
            .flat_map(|leader| {
                swapgraph::premiums::redemption_premium_table(
                    digraph,
                    leader.0,
                    base_premium.value(),
                )
            })
            .map(|entry| entry.amount)
            .sum();
        Amount::new(
            base_premium
                .scaled(1_000_000)
                .value()
                .max((escrow_need + redemption_need).saturating_mul(4)),
        )
    }
    /// All parties appearing in the digraph, in ascending order.
    pub fn parties(&self) -> Vec<PartyId> {
        self.digraph.vertices().map(PartyId).collect()
    }

    fn n(&self) -> u64 {
        self.digraph.vertex_count() as u64
    }

    fn deadlines(&self) -> ArcDeadlines {
        let d = self.delta_blocks;
        let n = self.n();
        let diam = self.digraph.diameter().unwrap_or(n);
        ArcDeadlines {
            escrow_premium_deadline: Time(n * d),
            redemption_premium_deadline: Time(2 * n * d),
            asset_escrow_deadline: Time(3 * n * d),
            hashkey_timeout_base: Time(3 * n * d),
            delta_blocks: d,
            final_deadline: Time((4 * n + diam + 1) * d),
        }
    }

    fn final_deadline(&self) -> Time {
        self.deadlines().final_deadline
    }
}

/// Outcome of a single party in a deal run.
#[derive(Clone, Debug, Default)]
pub struct DealPartyOutcome {
    /// Net native-currency (premium) payoff across every chain.
    pub premium_payoff: i128,
    /// Number of outgoing arcs on which this party escrowed an asset that
    /// was eventually refunded rather than redeemed.
    pub escrowed_unredeemed: usize,
    /// Number of outgoing arcs on which this party's asset was redeemed.
    pub escrowed_redeemed: usize,
    /// Number of outgoing arcs still holding this party's asset when the
    /// run ended: neither redeemed nor refunded. Always zero for a
    /// compliant party (its settle step frees every incident arc after the
    /// final deadline); nonzero means a principal was stranded.
    pub escrowed_stuck: usize,
    /// Number of incoming arcs on which this party received the asset.
    pub received: usize,
    /// Number of incoming arcs of this party.
    pub incoming_arcs: usize,
    /// Whether the hedged predicate holds for this party (always `true` for
    /// deviating parties, for which the predicate is vacuous).
    pub hedged: bool,
    /// Whether the all-or-nothing safety condition holds for this party: if
    /// any of its escrows was redeemed, it received every incoming asset.
    pub safety: bool,
}

/// Outcome of a deal run.
#[derive(Clone, Debug)]
pub struct DealReport {
    /// The strategies used.
    pub strategies: BTreeMap<PartyId, Strategy>,
    /// Whether every arc's asset was redeemed.
    pub completed: bool,
    /// Per-party outcomes.
    pub parties: BTreeMap<PartyId, DealPartyOutcome>,
    /// Raw payoffs.
    pub payoffs: Payoffs,
    /// Rejected actions during the run.
    pub failed_actions: usize,
    /// Synchronous rounds executed.
    pub rounds: usize,
}

impl DealReport {
    /// Returns `true` if every compliant party is hedged and safe.
    pub fn all_compliant_hedged(&self) -> bool {
        self.parties.values().all(|p| p.hedged && p.safety)
    }
}

struct DealSetup {
    world: World,
    arc_addrs: BTreeMap<(PartyId, PartyId), ContractAddr>,
    native_assets: Vec<AssetId>,
    traded_assets: Vec<AssetId>,
    secrets: BTreeMap<PartyId, Secret>,
    keypairs: BTreeMap<PartyId, KeyPair>,
}

fn arc_label(from: PartyId, to: PartyId) -> String {
    format!("deal/arc-{}-{}", from.0, to.0)
}

fn build(config: &DealConfig) -> DealSetup {
    let mut world = World::new(1);
    let mut chain_ids: BTreeMap<String, ChainId> = BTreeMap::new();
    for name in &config.chains {
        chain_ids.insert(name.clone(), world.add_chain(name.clone()));
    }
    let mut asset_ids: BTreeMap<String, AssetId> = BTreeMap::new();
    for arc in &config.arcs {
        if !asset_ids.contains_key(&arc.asset_name) {
            let id = world.register_asset(arc.asset_name.clone());
            asset_ids.insert(arc.asset_name.clone(), id);
        }
    }
    let parties = config.parties();

    // Keys.
    let mut keys = PartyKeys::new();
    let mut keypairs = BTreeMap::new();
    for &party in &parties {
        let pair = KeyPair::from_seed(1000 + u64::from(party.0));
        world.directory_mut().register(&pair);
        keys.insert(party, pair.public());
        keypairs.insert(party, pair);
    }

    // Endowments: traded assets per the config, plus generous native
    // balances on every chain for premiums.
    for (party, chain, asset, amount) in &config.endowments {
        let chain_id = chain_ids[chain];
        let asset_id = asset_ids[asset];
        world.chain_mut(chain_id).mint(*party, asset_id, *amount);
    }
    let premium_float = config.premium_float;
    let native_assets: Vec<AssetId> =
        config.chains.iter().map(|name| world.chain(chain_ids[name]).native_asset()).collect();
    for &party in &parties {
        for name in &config.chains {
            let chain_id = chain_ids[name];
            let native = world.chain(chain_id).native_asset();
            world.chain_mut(chain_id).mint(party, native, premium_float);
        }
    }

    // Leaders' secrets and the shared hashlock vector.
    let mut secrets = BTreeMap::new();
    let mut hashlocks = Vec::new();
    for &leader in &config.leaders {
        let secret = Secret::from_seed(7000 + u64::from(leader.0));
        hashlocks.push((leader, secret.hashlock()));
        secrets.insert(leader, secret);
    }

    // One ArcEscrow per arc.
    let deadlines = config.deadlines();
    let mut arc_addrs = BTreeMap::new();
    for arc in &config.arcs {
        let chain_id = chain_ids[&arc.chain];
        let native = world.chain(chain_id).native_asset();
        let params = ArcEscrowParams {
            sender: arc.from,
            receiver: arc.to,
            asset: asset_ids[&arc.asset_name],
            amount: arc.amount,
            premium_asset: native,
            base_premium: config.base_premium,
            escrow_premium: arc.escrow_premium,
            hashlocks: hashlocks.clone(),
            digraph: config.digraph.clone(),
            keys: keys.clone(),
            deadlines: deadlines.clone(),
        };
        let addr = world.publish_labeled(
            chain_id,
            arc.from,
            arc_label(arc.from, arc.to),
            Box::new(ArcEscrow::new(params)),
        );
        arc_addrs.insert((arc.from, arc.to), addr);
    }

    let traded_assets: Vec<AssetId> = asset_ids.values().copied().collect();
    DealSetup { world, arc_addrs, native_assets, traded_assets, secrets, keypairs }
}

fn arc_contract(world: &World, addr: ContractAddr) -> &ArcEscrow {
    world.chain(addr.chain).contract_as::<ArcEscrow>(addr.contract).expect("arc escrow present")
}

fn arc_needs_settle(contract: &ArcEscrow, now: Time) -> bool {
    let deadlines = &contract.params().deadlines;
    let escrow_premium_stuck = contract.escrow_premium_state() == PremiumSlotState::Held
        && contract.principal_state() == PrincipalState::NotEscrowed
        && now.has_reached(deadlines.asset_escrow_deadline);
    let late = now.has_reached(deadlines.final_deadline);
    let principal_stuck = contract.principal_state() == PrincipalState::Held && late;
    let redemption_stuck = late
        && contract.params().hashlocks.iter().any(|(leader, _)| {
            contract.redemption_premium_state(*leader) == PremiumSlotState::Held
                && !contract.hashkey_presented(*leader)
        });
    escrow_premium_stuck || principal_stuck || redemption_stuck
}

/// Builds the protocol script for one party of the deal.
fn party_steps(config: &DealConfig, setup: &DealSetup, me: PartyId) -> Vec<Step> {
    let digraph = config.digraph.clone();
    let leaders = config.leaders.clone();
    let arc_addrs = setup.arc_addrs.clone();
    let out_arcs: Vec<(PartyId, PartyId)> =
        digraph.out_arcs(me.0).into_iter().map(|(u, v)| (PartyId(u), PartyId(v))).collect();
    let in_arcs: Vec<(PartyId, PartyId)> =
        digraph.in_arcs(me.0).into_iter().map(|(u, v)| (PartyId(u), PartyId(v))).collect();
    let deadlines = config.deadlines();
    let wait_for_incoming = config.wait_for_incoming.contains(&me);
    let my_secret = setup.secrets.get(&me).cloned();
    let my_keys = setup.keypairs[&me].clone();
    let leader_list: Vec<PartyId> = leaders.iter().copied().collect();
    let final_deadline = config.final_deadline();

    let mut steps = Vec::new();

    // Phase 1: escrow premiums on outgoing arcs.
    {
        let arc_addrs = arc_addrs.clone();
        let out_arcs = out_arcs.clone();
        let in_arcs = in_arcs.clone();
        let give_up = deadlines.escrow_premium_deadline;
        steps.push(Step::new("deposit escrow premiums", move |world: &World| {
            if world.now().has_reached(give_up) {
                return StepOutcome::Complete(vec![]);
            }
            let ready = !wait_for_incoming
                || in_arcs.iter().all(|arc| {
                    arc_contract(world, arc_addrs[arc]).escrow_premium_state()
                        != PremiumSlotState::NotDeposited
                });
            if !ready {
                return StepOutcome::Wait;
            }
            let actions = out_arcs
                .iter()
                .map(|arc| {
                    Action::call(
                        arc_addrs[arc],
                        ArcEscrowMsg::DepositEscrowPremium,
                        format!("{} deposits escrow premium on ({}, {})", arc.0, arc.0, arc.1),
                    )
                })
                .collect();
            StepOutcome::Complete(actions)
        }));
    }

    // Phase 2: redemption premiums, one obligation per leader.
    {
        let arc_addrs = arc_addrs.clone();
        let out_arcs = out_arcs.clone();
        let in_arcs = in_arcs.clone();
        let leader_list = leader_list.clone();
        let give_up = deadlines.redemption_premium_deadline;
        let escrow_premium_deadline = deadlines.escrow_premium_deadline;
        let mut done: BTreeSet<PartyId> = BTreeSet::new();
        steps.push(Step::new("deposit redemption premiums", move |world: &World| {
            let now = world.now();
            let mut actions = Vec::new();
            for &leader in &leader_list {
                if done.contains(&leader) {
                    continue;
                }
                if now.has_reached(give_up) {
                    done.insert(leader);
                    continue;
                }
                if leader == me {
                    // Deposit only once every incoming escrow premium arrived
                    // (Lemma 5 behaviour); give up silently otherwise.
                    let all_in = in_arcs.iter().all(|arc| {
                        arc_contract(world, arc_addrs[arc]).escrow_premium_state()
                            != PremiumSlotState::NotDeposited
                    });
                    if all_in {
                        for arc in &in_arcs {
                            actions.push(Action::call(
                                arc_addrs[arc],
                                ArcEscrowMsg::DepositRedemptionPremium { leader, path: vec![me] },
                                format!(
                                    "{me} deposits own redemption premium on ({}, {})",
                                    arc.0, arc.1
                                ),
                            ));
                        }
                        done.insert(leader);
                    } else if now.has_reached(escrow_premium_deadline) {
                        done.insert(leader);
                    }
                    continue;
                }
                // Follower rule: wait for a premium for this leader on some
                // outgoing arc, then extend its path onto incoming arcs.
                let observed = out_arcs.iter().find_map(|arc| {
                    arc_contract(world, arc_addrs[arc])
                        .redemption_premium_path(leader)
                        .map(|path| path.to_vec())
                });
                if let Some(path) = observed {
                    if path.contains(&me) {
                        done.insert(leader);
                        continue;
                    }
                    let mut extended = vec![me];
                    extended.extend_from_slice(&path);
                    for arc in &in_arcs {
                        actions.push(Action::call(
                            arc_addrs[arc],
                            ArcEscrowMsg::DepositRedemptionPremium {
                                leader,
                                path: extended.clone(),
                            },
                            format!(
                                "{me} passes redemption premium for {leader} to ({}, {})",
                                arc.0, arc.1
                            ),
                        ));
                    }
                    done.insert(leader);
                }
            }
            if done.len() == leader_list.len() {
                StepOutcome::Complete(actions)
            } else if actions.is_empty() {
                StepOutcome::Wait
            } else {
                StepOutcome::Progress(actions)
            }
        }));
    }

    // Phase 3: escrow assets on outgoing arcs.
    {
        let arc_addrs = arc_addrs.clone();
        let out_arcs = out_arcs.clone();
        let in_arcs = in_arcs.clone();
        let phase_start = deadlines.redemption_premium_deadline;
        let give_up = deadlines.asset_escrow_deadline;
        steps.push(Step::new("escrow assets", move |world: &World| {
            let now = world.now();
            if now.has_reached(give_up) {
                return StepOutcome::Complete(vec![]);
            }
            let ready = if wait_for_incoming {
                in_arcs.iter().all(|arc| {
                    matches!(
                        arc_contract(world, arc_addrs[arc]).principal_state(),
                        PrincipalState::Held | PrincipalState::Redeemed
                    )
                })
            } else {
                now.has_reached(phase_start)
            };
            if !ready {
                return StepOutcome::Wait;
            }
            // Leaders (and everyone else) only escrow on arcs whose escrow
            // premium is activated; an unactivated arc means the receiver
            // skipped its redemption premiums, so escrowing there is unsafe.
            let actions: Vec<Action> = out_arcs
                .iter()
                .filter(|arc| arc_contract(world, arc_addrs[arc]).escrow_premium_activated())
                .map(|arc| {
                    Action::call(
                        arc_addrs[arc],
                        ArcEscrowMsg::EscrowAsset,
                        format!("{} escrows its asset on ({}, {})", arc.0, arc.0, arc.1),
                    )
                })
                .collect();
            StepOutcome::Complete(actions)
        }));
    }

    // Phase 4: release and propagate hashkeys.
    {
        let arc_addrs = arc_addrs.clone();
        let out_arcs = out_arcs.clone();
        let in_arcs = in_arcs.clone();
        let leader_list = leader_list.clone();
        let give_up = final_deadline;
        let mut done: BTreeSet<PartyId> = BTreeSet::new();
        steps.push(Step::new("release and propagate hashkeys", move |world: &World| {
            let now = world.now();
            let mut actions = Vec::new();
            for &leader in &leader_list {
                if done.contains(&leader) {
                    continue;
                }
                if now.has_reached(give_up) {
                    done.insert(leader);
                    continue;
                }
                let hashkey: Option<Hashkey> = if leader == me {
                    // Release the own secret once every incoming arc is
                    // funded (the normal case), or — per Lemma 4 — once it is
                    // clear this party escrowed nothing itself, so releasing
                    // is free and recovers its redemption premiums.
                    let all_in = !in_arcs.is_empty()
                        && in_arcs.iter().all(|arc| {
                            matches!(
                                arc_contract(world, arc_addrs[arc]).principal_state(),
                                PrincipalState::Held | PrincipalState::Redeemed
                            )
                        });
                    let escrowed_nothing = out_arcs.iter().all(|arc| {
                        matches!(
                            arc_contract(world, arc_addrs[arc]).principal_state(),
                            PrincipalState::NotEscrowed
                        )
                    });
                    let past_escrow_phase = now.has_reached(
                        arc_contract(world, arc_addrs[&in_arcs[0]])
                            .params()
                            .deadlines
                            .asset_escrow_deadline,
                    );
                    if all_in || (escrowed_nothing && past_escrow_phase) {
                        my_secret.clone().map(|secret| Hashkey::from_leader(me, secret, &my_keys))
                    } else {
                        None
                    }
                } else {
                    // Learn the hashkey from an outgoing arc and extend it.
                    out_arcs.iter().find_map(|arc| {
                        arc_contract(world, arc_addrs[arc])
                            .presented_hashkey(leader)
                            .map(|k| k.extend(me, &my_keys))
                    })
                };
                if let Some(hashkey) = hashkey {
                    for arc in &in_arcs {
                        actions.push(Action::call(
                            arc_addrs[arc],
                            ArcEscrowMsg::PresentHashkey { hashkey: hashkey.clone() },
                            format!("{me} presents hashkey of {leader} on ({}, {})", arc.0, arc.1),
                        ));
                    }
                    done.insert(leader);
                }
            }
            if done.len() == leader_list.len() {
                StepOutcome::Complete(actions)
            } else if actions.is_empty() {
                StepOutcome::Wait
            } else {
                StepOutcome::Progress(actions)
            }
        }));
    }

    // Recovery: settle every incident arc after the final deadline.
    {
        let arc_addrs = arc_addrs.clone();
        let incident: Vec<(PartyId, PartyId)> =
            out_arcs.iter().chain(in_arcs.iter()).copied().collect();
        steps.push(Step::new("settle incident arcs", move |world: &World| {
            let now = world.now();
            let unresolved: Vec<&(PartyId, PartyId)> = incident
                .iter()
                .filter(|arc| arc_needs_settle(arc_contract(world, arc_addrs[arc]), now))
                .collect();
            let anything_pending = incident.iter().any(|arc| {
                let c = arc_contract(world, arc_addrs[arc]);
                c.escrow_premium_state() == PremiumSlotState::Held
                    || c.principal_state() == PrincipalState::Held
                    || c.params()
                        .hashlocks
                        .iter()
                        .any(|(l, _)| c.redemption_premium_state(*l) == PremiumSlotState::Held)
            });
            if !anything_pending {
                return StepOutcome::Complete(vec![]);
            }
            if !now.has_reached(final_deadline) {
                return StepOutcome::Wait;
            }
            let actions: Vec<Action> = unresolved
                .into_iter()
                .map(|arc| {
                    Action::call(
                        arc_addrs[arc],
                        ArcEscrowMsg::Settle,
                        format!("{me} settles ({}, {})", arc.0, arc.1),
                    )
                })
                .collect();
            StepOutcome::Complete(actions)
        }));
    }

    steps
}

/// Runs a hedged deal with the given per-party strategies.
///
/// Parties not present in `strategies` default to [`Strategy::Compliant`].
pub fn run_deal(config: &DealConfig, strategies: &BTreeMap<PartyId, Strategy>) -> DealReport {
    let mut setup = build(config);
    let parties = config.parties();
    let mut all_assets = setup.traded_assets.clone();
    all_assets.extend(setup.native_assets.iter().copied());
    let before = BalanceSnapshot::capture(&setup.world, &parties, &all_assets);

    let actors: Vec<ScriptedParty> = parties
        .iter()
        .map(|&party| {
            let strategy = strategies.get(&party).copied().unwrap_or(Strategy::Compliant);
            let steps = party_steps(config, &setup, party);
            debug_assert_eq!(
                steps.len(),
                SCRIPT_STEPS,
                "SCRIPT_STEPS must match the deal script so sweeps cover all stop-points"
            );
            ScriptedParty::new(party, steps, strategy)
        })
        .collect();
    let max_rounds = config.final_deadline().height() + 3 * config.delta_blocks + 4;
    let run_report = run_parties(&mut setup.world, actors, max_rounds);

    let after = BalanceSnapshot::capture(&setup.world, &parties, &all_assets);
    let payoffs = Payoffs::between(&before, &after);

    let mut outcomes: BTreeMap<PartyId, DealPartyOutcome> = BTreeMap::new();
    let mut completed = true;
    for &party in &parties {
        let strategy = strategies.get(&party).copied().unwrap_or(Strategy::Compliant);
        let mut outcome = DealPartyOutcome {
            premium_payoff: payoffs.total_over(party, &setup.native_assets).value(),
            ..DealPartyOutcome::default()
        };
        for (arc, addr) in &setup.arc_addrs {
            let contract = arc_contract(&setup.world, *addr);
            if contract.principal_state() != PrincipalState::Redeemed {
                completed = false;
            }
            if arc.0 == party {
                match contract.principal_state() {
                    PrincipalState::Redeemed => outcome.escrowed_redeemed += 1,
                    PrincipalState::Refunded => outcome.escrowed_unredeemed += 1,
                    PrincipalState::Held => outcome.escrowed_stuck += 1,
                    PrincipalState::NotEscrowed => {}
                }
            }
            if arc.1 == party {
                outcome.incoming_arcs += 1;
                if contract.principal_state() == PrincipalState::Redeemed {
                    outcome.received += 1;
                }
            }
        }
        let compensation_due =
            config.base_premium.value() as i128 * outcome.escrowed_unredeemed as i128;
        outcome.hedged = !strategy.is_compliant() || outcome.premium_payoff >= compensation_due;
        outcome.safety = !strategy.is_compliant()
            || outcome.escrowed_redeemed == 0
            || outcome.received == outcome.incoming_arcs;
        outcomes.insert(party, outcome);
    }

    DealReport {
        strategies: parties
            .iter()
            .map(|&p| (p, strategies.get(&p).copied().unwrap_or(Strategy::Compliant)))
            .collect(),
        completed,
        parties: outcomes,
        payoffs,
        failed_actions: run_report.failures().len(),
        rounds: run_report.rounds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_party::figure3_config;

    #[test]
    fn compliant_figure3_deal_completes() {
        let config = figure3_config();
        let report = run_deal(&config, &BTreeMap::new());
        assert!(report.completed, "all arcs should be redeemed: {report:?}");
        assert!(report.all_compliant_hedged());
        assert_eq!(report.failed_actions, 0);
        for outcome in report.parties.values() {
            assert_eq!(outcome.premium_payoff, 0, "premiums refunded in a compliant run");
        }
        assert!(report.payoffs.conserved());
    }
}
