//! Hedged cross-chain transaction protocols (the paper's contribution).
//!
//! This crate implements the distributed protocols of Xue & Herlihy,
//! *Hedging Against Sore Loser Attacks in Cross-Chain Transactions*
//! (PODC 2021), on top of the [`chainsim`] simulator and the [`contracts`]
//! crate:
//!
//! * [`two_party`] — the base (unhedged) HTLC swap of §5.1 and the hedged
//!   two-party swap of §5.2;
//! * [`bootstrap`] — premium bootstrapping (§6): extra rounds of hedged
//!   premium deposits that shrink the initial unprotected risk;
//! * [`multi_party`] — the hedged multi-party swap over an arbitrary
//!   strongly-connected digraph (§7), with escrow and redemption premiums
//!   computed from Equations (1) and (2);
//! * [`broker`] — the hedged brokered-commerce deal of §8;
//! * [`auction`] — the hedged auction of §9;
//! * [`outcome`] — payoff accounting and the *hedged* predicate;
//! * [`script`] — the scripted-party machinery and deviation strategies used
//!   to model compliant parties and sore losers.
//!
//! Every protocol module exposes a `run_*` entry point that builds a fresh
//! simulated world, executes the protocol with the requested strategies and
//! returns a report with payoffs, lock-up durations and property checks.
//!
//! # Examples
//!
//! ```
//! use protocols::script::Strategy;
//! use protocols::two_party::{run_hedged_swap, TwoPartyConfig};
//!
//! // Both parties comply: principals are swapped, premiums refunded.
//! let report = run_hedged_swap(&TwoPartyConfig::default(), Strategy::compliant(), Strategy::compliant());
//! assert!(report.swap_completed);
//! assert!(report.hedged_for_alice && report.hedged_for_bob);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod auction;
pub mod bootstrap;
pub mod broker;
pub mod deal;
pub mod market;
pub mod multi_party;
pub mod outcome;
pub mod script;
pub mod two_party;
