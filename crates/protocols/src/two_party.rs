//! Two-party swaps: the unhedged base protocol (§5.1) and the hedged
//! protocol (§5.2).
//!
//! Both protocols swap `A` apricot tokens owned by Alice for `B` banana
//! tokens owned by Bob. The base protocol uses two [`HtlcEscrow`]s and is
//! vulnerable to sore-loser attacks: whoever escrows first can be left
//! locked up with no compensation. The hedged protocol prefixes a premium
//! distribution phase using two [`HedgedEscrow`]s with the §5.2 timeout
//! schedule, after which every unilateral walk-away costs the deviator a
//! premium that compensates the victim.

use chainsim::{Action, Amount, AssetId, ContractAddr, PartyId, Time, World};
use contracts::{
    HedgedEscrow, HedgedEscrowMsg, HedgedEscrowParams, HedgedPremiumState, HedgedPrincipalState,
    HtlcEscrow, HtlcMsg, HtlcState,
};
use cryptosim::Secret;
use serde::{Deserialize, Serialize};

use crate::outcome::{BalanceSnapshot, Lockup, Payoffs};
use crate::script::{run_parties, DeviationTree, ScriptedParty, Step, StepOutcome, Strategy};

/// Alice's party id in two-party protocols.
pub const ALICE: PartyId = PartyId(0);
/// Bob's party id in two-party protocols.
pub const BOB: PartyId = PartyId(1);

/// The number of scripted steps in each hedged two-party role (premium,
/// escrow, redeem, settle).
pub const SCRIPT_STEPS: usize = 4;

/// The number of scripted steps in each *base* two-party role (escrow,
/// redeem, refund) — one shorter than the hedged scripts (no premium
/// phase). The base space is enumerated over this exact length: a stop
/// point at the hedged length would be behaviourally identical to
/// compliance and would double-count the compliant outcome in sweep
/// summaries.
pub const BASE_SCRIPT_STEPS: usize = 3;

/// Every distinct per-party strategy of the *hedged* two-party swap: the
/// full `stop_after × timing × faults` product over the four-step scripts
/// (see [`Strategy::all`] for the dedup rules).
///
/// This is the exact space the model checker and conformance sweeps range
/// over; sweeping anything else either duplicates runs (two stop-points past
/// the script's end behave identically) or misses deviations.
pub fn strategy_space() -> Vec<Strategy> {
    Strategy::all(SCRIPT_STEPS)
}

/// Every distinct per-party strategy of the *base* (unhedged) swap: the
/// same product space over its three-step scripts. See
/// [`BASE_SCRIPT_STEPS`] for why the base space is one step shorter.
pub fn base_strategy_space() -> Vec<Strategy> {
    Strategy::all(BASE_SCRIPT_STEPS)
}

/// The strategy space of the given protocol variant (see
/// [`strategy_space`]/[`base_strategy_space`]).
pub fn strategy_space_for(protocol: SwapProtocol) -> Vec<Strategy> {
    match protocol {
        SwapProtocol::Hedged => strategy_space(),
        SwapProtocol::Base => base_strategy_space(),
    }
}

/// Configuration of a two-party swap experiment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoPartyConfig {
    /// Alice's principal: `A` apricot tokens.
    pub alice_tokens: Amount,
    /// Bob's principal: `B` banana tokens.
    pub bob_tokens: Amount,
    /// Alice's premium `p_a` (her compensation to Bob if she reneges).
    pub premium_a: Amount,
    /// Bob's premium `p_b` (his compensation to Alice if he reneges).
    pub premium_b: Amount,
    /// The synchrony bound Δ, in blocks.
    pub delta_blocks: u64,
    /// Per-chain Δ override for the apricot chain, in blocks (zero inherits
    /// [`delta_blocks`](TwoPartyConfig::delta_blocks)). Heterogeneous
    /// per-chain Δ stretches the deadline ladder: each step's deadline
    /// extends the previous one by the Δ of the chain that step's action
    /// must propagate on.
    #[serde(default)]
    pub delta_apricot: u64,
    /// Per-chain Δ override for the banana chain; see
    /// [`delta_apricot`](TwoPartyConfig::delta_apricot).
    #[serde(default)]
    pub delta_banana: u64,
    /// Finality margin in blocks, padded into every *contract* deadline but
    /// never into the compliant scripts' give-up times. A re-delivered call
    /// displaced by a depth-`d` reorg lands at most `d − 1` rounds late, so
    /// a margin of `d − 1` makes re-delivering reorgs observationally
    /// harmless to compliant parties; with a margin of zero a reorg can
    /// push a last-tick call past its deadline (the sore-loser-by-reorg
    /// scenario the sampled sweeps hunt).
    #[serde(default)]
    pub finality_margin: u64,
}

impl Default for TwoPartyConfig {
    fn default() -> Self {
        TwoPartyConfig {
            alice_tokens: Amount::new(100),
            bob_tokens: Amount::new(100),
            premium_a: Amount::new(2),
            premium_b: Amount::new(2),
            delta_blocks: 2,
            delta_apricot: 0,
            delta_banana: 0,
            finality_margin: 0,
        }
    }
}

/// The hedged swap's six-deadline ladder (§5.2), generalized over per-chain
/// Δ. With both chains at the global Δ this is exactly the paper's
/// `1Δ, 2Δ, …, 6Δ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HedgedSchedule {
    /// Alice's premium deposit on the banana chain (`1Δ`).
    pub premium_banana: Time,
    /// Bob's premium deposit on the apricot chain (`2Δ`).
    pub premium_apricot: Time,
    /// Alice's principal escrow on the apricot chain (`3Δ`).
    pub escrow_apricot: Time,
    /// Bob's principal escrow on the banana chain (`4Δ`).
    pub escrow_banana: Time,
    /// Alice's redemption on the banana chain (`5Δ`).
    pub redeem_banana: Time,
    /// Bob's redemption on the apricot chain (`6Δ`).
    pub redeem_apricot: Time,
}

impl TwoPartyConfig {
    /// The apricot chain's effective Δ in blocks.
    pub fn delta_a(&self) -> u64 {
        if self.delta_apricot == 0 {
            self.delta_blocks
        } else {
            self.delta_apricot
        }
    }

    /// The banana chain's effective Δ in blocks.
    pub fn delta_b(&self) -> u64 {
        if self.delta_banana == 0 {
            self.delta_blocks
        } else {
            self.delta_banana
        }
    }

    /// The hedged deadline ladder for this configuration: cumulative sums
    /// where each step adds the Δ of the chain its action propagates on.
    pub fn hedged_schedule(&self) -> HedgedSchedule {
        let (da, db) = (self.delta_a(), self.delta_b());
        let t1 = db; // Alice's premium is on banana
        let t2 = t1 + da; // Bob's premium is on apricot
        let t3 = t2 + da; // Alice's escrow is on apricot
        let t4 = t3 + db; // Bob's escrow is on banana
        let t5 = t4 + db; // Alice's redeem is on banana
        let t6 = t5 + da; // Bob's redeem is on apricot
        HedgedSchedule {
            premium_banana: Time(t1),
            premium_apricot: Time(t2),
            escrow_apricot: Time(t3),
            escrow_banana: Time(t4),
            redeem_banana: Time(t5),
            redeem_apricot: Time(t6),
        }
    }

    /// The base (§5.1) HTLC timelocks `(banana, apricot)`: the banana leg
    /// times out after `Δ_a + Δ_b` (the paper's `2Δ`), the apricot leg one
    /// apricot-propagation later (`2Δ_a + Δ_b`, the paper's `3Δ`).
    pub fn base_timelocks(&self) -> (Time, Time) {
        let (da, db) = (self.delta_a(), self.delta_b());
        (Time(da + db), Time(2 * da + db))
    }

    /// Pads a contract-side deadline with the finality margin. Compliant
    /// scripts keep the unpadded time, so their last legal call is at least
    /// `finality_margin` blocks clear of the contract's cut-off.
    fn padded(&self, deadline: Time) -> Time {
        deadline.plus(self.finality_margin)
    }
}

/// Which protocol variant produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapProtocol {
    /// The unhedged §5.1 HTLC swap.
    Base,
    /// The hedged §5.2 swap with premiums.
    Hedged,
}

/// The outcome of a two-party swap run.
#[derive(Clone, Debug)]
pub struct TwoPartyReport {
    /// Which protocol was run.
    pub protocol: SwapProtocol,
    /// The strategies the parties followed.
    pub strategies: (Strategy, Strategy),
    /// Whether both principals were redeemed (the swap completed).
    pub swap_completed: bool,
    /// Per-party, per-asset payoffs.
    pub payoffs: Payoffs,
    /// Alice's net payoff in apricot tokens.
    pub alice_apricot_payoff: i128,
    /// Alice's net payoff in banana tokens.
    pub alice_banana_payoff: i128,
    /// Bob's net payoff in apricot tokens.
    pub bob_apricot_payoff: i128,
    /// Bob's net payoff in banana tokens.
    pub bob_banana_payoff: i128,
    /// Alice's net premium (native-currency) payoff across both chains.
    pub alice_premium_payoff: i128,
    /// Bob's net premium (native-currency) payoff across both chains.
    pub bob_premium_payoff: i128,
    /// Alice's principal lock-up on the apricot chain.
    pub alice_lockup: Lockup,
    /// Bob's principal lock-up on the banana chain.
    pub bob_lockup: Lockup,
    /// Whether compliant Alice ended up hedged (vacuously true if she deviated).
    pub hedged_for_alice: bool,
    /// Whether compliant Bob ended up hedged (vacuously true if he deviated).
    pub hedged_for_bob: bool,
    /// Number of rejected actions during the run (protocol noise).
    pub failed_actions: usize,
    /// Number of synchronous rounds executed.
    pub rounds: usize,
}

#[derive(Clone)]
struct Setup {
    apricot_token: AssetId,
    banana_token: AssetId,
    apricot_native: AssetId,
    banana_native: AssetId,
    apricot_contract: ContractAddr,
    banana_contract: ContractAddr,
    secret: Secret,
}

/// Labels under which the two escrow contracts are registered.
const APRICOT_LABEL: &str = "two-party/apricot-escrow";
/// See [`APRICOT_LABEL`].
const BANANA_LABEL: &str = "two-party/banana-escrow";

fn build_world(world: &mut World, config: &TwoPartyConfig) -> (AssetId, AssetId, AssetId, AssetId) {
    world.reset(1);
    let apricot = world.add_chain("apricot");
    let banana = world.add_chain("banana");
    let apricot_native = world.chain(apricot).native_asset();
    let banana_native = world.chain(banana).native_asset();
    let apricot_token = world.register_asset("apricot-token");
    let banana_token = world.register_asset("banana-token");
    // Endowments: principals plus enough native currency for premiums.
    world.chain_mut(apricot).mint(ALICE, apricot_token, config.alice_tokens);
    world.chain_mut(banana).mint(BOB, banana_token, config.bob_tokens);
    world.chain_mut(banana).mint(ALICE, banana_native, config.premium_a + config.premium_b);
    world.chain_mut(apricot).mint(BOB, apricot_native, config.premium_b);
    (apricot_token, banana_token, apricot_native, banana_native)
}

fn hedged_setup(world: &mut World, config: &TwoPartyConfig) -> Setup {
    let (apricot_token, banana_token, apricot_native, banana_native) = build_world(world, config);
    let apricot = world.chains().next().expect("apricot chain").id();
    let banana = world.chains().nth(1).expect("banana chain").id();
    let secret = Secret::from_seed(0xA11CE);
    let hashlock = secret.hashlock();
    let sched = config.hedged_schedule();

    // Contract deadlines are padded with the finality margin; the compliant
    // scripts act against the unpadded ladder, so a reorg re-delivering a
    // last-tick call up to `finality_margin` blocks late still lands.
    // Banana-chain contract: Bob escrows B, Alice deposits p_a + p_b.
    let banana_contract = world.publish_labeled(
        banana,
        BOB,
        BANANA_LABEL,
        Box::new(HedgedEscrow::new(HedgedEscrowParams {
            escrower: BOB,
            redeemer: ALICE,
            principal_asset: banana_token,
            principal_amount: config.bob_tokens,
            premium_asset: banana_native,
            premium_amount: config.premium_a + config.premium_b,
            hashlock,
            premium_deadline: config.padded(sched.premium_banana),
            escrow_deadline: config.padded(sched.escrow_banana),
            redeem_deadline: config.padded(sched.redeem_banana),
        })),
    );
    // Apricot-chain contract: Alice escrows A, Bob deposits p_b.
    let apricot_contract = world.publish_labeled(
        apricot,
        ALICE,
        APRICOT_LABEL,
        Box::new(HedgedEscrow::new(HedgedEscrowParams {
            escrower: ALICE,
            redeemer: BOB,
            principal_asset: apricot_token,
            principal_amount: config.alice_tokens,
            premium_asset: apricot_native,
            premium_amount: config.premium_b,
            hashlock,
            premium_deadline: config.padded(sched.premium_apricot),
            escrow_deadline: config.padded(sched.escrow_apricot),
            redeem_deadline: config.padded(sched.redeem_apricot),
        })),
    );
    Setup {
        apricot_token,
        banana_token,
        apricot_native,
        banana_native,
        apricot_contract,
        banana_contract,
        secret,
    }
}

fn base_setup(world: &mut World, config: &TwoPartyConfig) -> Setup {
    let (apricot_token, banana_token, apricot_native, banana_native) = build_world(world, config);
    let apricot = world.chains().next().expect("apricot chain").id();
    let banana = world.chains().nth(1).expect("banana chain").id();
    let secret = Secret::from_seed(0xA11CE);
    let hashlock = secret.hashlock();

    // §5.1: Alice's apricot escrow with timelock 3Δ, Bob's banana escrow
    // with 2Δ (both generalized over per-chain Δ and padded with the
    // finality margin, like the hedged contracts).
    let (banana_timelock, apricot_timelock) = config.base_timelocks();
    let apricot_contract = world.publish_labeled(
        apricot,
        ALICE,
        APRICOT_LABEL,
        Box::new(HtlcEscrow::new(
            ALICE,
            BOB,
            apricot_token,
            config.alice_tokens,
            hashlock,
            config.padded(apricot_timelock),
        )),
    );
    let banana_contract = world.publish_labeled(
        banana,
        BOB,
        BANANA_LABEL,
        Box::new(HtlcEscrow::new(
            BOB,
            ALICE,
            banana_token,
            config.bob_tokens,
            hashlock,
            config.padded(banana_timelock),
        )),
    );
    Setup {
        apricot_token,
        banana_token,
        apricot_native,
        banana_native,
        apricot_contract,
        banana_contract,
        secret,
    }
}

fn hedged_contract(world: &World, addr: ContractAddr) -> &HedgedEscrow {
    world
        .chain(addr.chain)
        .contract_as::<HedgedEscrow>(addr.contract)
        .expect("hedged escrow present")
}

fn htlc_contract(world: &World, addr: ContractAddr) -> &HtlcEscrow {
    world.chain(addr.chain).contract_as::<HtlcEscrow>(addr.contract).expect("htlc present")
}

fn hedged_needs_settle(contract: &HedgedEscrow, now: Time) -> bool {
    let p = contract.params();
    let premium_stuck = contract.premium_state() == HedgedPremiumState::Held
        && contract.principal_state() == HedgedPrincipalState::NotEscrowed
        && now.has_reached(p.escrow_deadline);
    let principal_stuck = contract.principal_state() == HedgedPrincipalState::Held
        && now.has_reached(p.redeem_deadline);
    premium_stuck || principal_stuck
}

fn hedged_resolved(contract: &HedgedEscrow) -> bool {
    contract.premium_state() != HedgedPremiumState::Held
        && contract.principal_state() != HedgedPrincipalState::Held
}

/// Alice's script for the hedged swap.
fn hedged_alice_steps(setup: &Setup, config: &TwoPartyConfig) -> Vec<Step> {
    let banana = setup.banana_contract;
    let apricot = setup.apricot_contract;
    let secret = setup.secret.clone();
    let sched = config.hedged_schedule();
    let premium_give_up = sched.premium_banana;
    let escrow_give_up = sched.escrow_apricot;
    let redeem_give_up = sched.redeem_banana;
    // Settlement waits for the *padded* final deadline: contracts only
    // become settleable once their (margin-padded) cut-offs pass.
    let final_deadline = config.padded(sched.redeem_apricot);
    vec![
        Step::new("alice: deposit premium on banana", move |_world: &World| {
            StepOutcome::Complete(vec![Action::call(
                banana,
                HedgedEscrowMsg::DepositPremium,
                "Alice deposits p_a + p_b on the banana chain",
            )])
        })
        .with_deadline(premium_give_up),
        Step::new("alice: escrow principal on apricot", move |world: &World| {
            if world.now().has_reached(escrow_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if hedged_contract(world, apricot).premium_state() == HedgedPremiumState::Held {
                StepOutcome::Complete(vec![Action::call(
                    apricot,
                    HedgedEscrowMsg::EscrowPrincipal,
                    "Alice escrows A apricot tokens",
                )])
            } else {
                StepOutcome::WaitUntil(escrow_give_up)
            }
        })
        .with_deadline(escrow_give_up),
        Step::new("alice: redeem banana principal", move |world: &World| {
            if world.now().has_reached(redeem_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if hedged_contract(world, banana).principal_state() == HedgedPrincipalState::Held {
                StepOutcome::Complete(vec![Action::call(
                    banana,
                    HedgedEscrowMsg::Redeem { secret: secret.clone() },
                    "Alice redeems B banana tokens, revealing s",
                )])
            } else {
                StepOutcome::WaitUntil(redeem_give_up)
            }
        })
        .with_deadline(redeem_give_up),
        settle_step("alice: settle", vec![apricot, banana], final_deadline),
    ]
}

/// Bob's script for the hedged swap.
fn hedged_bob_steps(setup: &Setup, config: &TwoPartyConfig) -> Vec<Step> {
    let banana = setup.banana_contract;
    let apricot = setup.apricot_contract;
    let sched = config.hedged_schedule();
    let premium_give_up = sched.premium_apricot;
    let escrow_give_up = sched.escrow_banana;
    let redeem_give_up = sched.redeem_apricot;
    let final_deadline = config.padded(sched.redeem_apricot);
    vec![
        Step::new("bob: deposit premium on apricot", move |world: &World| {
            if world.now().has_reached(premium_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if hedged_contract(world, banana).premium_state() == HedgedPremiumState::Held {
                StepOutcome::Complete(vec![Action::call(
                    apricot,
                    HedgedEscrowMsg::DepositPremium,
                    "Bob deposits p_b on the apricot chain",
                )])
            } else {
                StepOutcome::WaitUntil(premium_give_up)
            }
        })
        .with_deadline(premium_give_up),
        Step::new("bob: escrow principal on banana", move |world: &World| {
            if world.now().has_reached(escrow_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if hedged_contract(world, apricot).principal_state() == HedgedPrincipalState::Held {
                StepOutcome::Complete(vec![Action::call(
                    banana,
                    HedgedEscrowMsg::EscrowPrincipal,
                    "Bob escrows B banana tokens",
                )])
            } else {
                StepOutcome::WaitUntil(escrow_give_up)
            }
        })
        .with_deadline(escrow_give_up),
        Step::new("bob: redeem apricot principal", move |world: &World| {
            if world.now().has_reached(redeem_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if let Some(secret) = hedged_contract(world, banana).revealed_secret() {
                StepOutcome::Complete(vec![Action::call(
                    apricot,
                    HedgedEscrowMsg::Redeem { secret: secret.clone() },
                    "Bob redeems A apricot tokens with the learned secret",
                )])
            } else {
                StepOutcome::WaitUntil(redeem_give_up)
            }
        })
        .with_deadline(redeem_give_up),
        settle_step("bob: settle", vec![apricot, banana], final_deadline),
    ]
}

/// A recovery step: once every contract is resolved the step completes; once
/// the final deadline passes it settles whatever still needs it.
fn settle_step(name: &'static str, contracts: Vec<ContractAddr>, final_deadline: Time) -> Step {
    Step::new(name, move |world: &World| {
        let all_resolved =
            contracts.iter().all(|addr| hedged_resolved(hedged_contract(world, *addr)));
        if all_resolved {
            return StepOutcome::Complete(vec![]);
        }
        if !world.now().has_reached(final_deadline) {
            return StepOutcome::WaitUntil(final_deadline);
        }
        let calls: Vec<Action> = contracts
            .iter()
            .filter(|addr| hedged_needs_settle(hedged_contract(world, **addr), world.now()))
            .map(|addr| Action::call(*addr, HedgedEscrowMsg::Settle, "settle hedged escrow"))
            .collect();
        StepOutcome::Complete(calls)
    })
}

/// Alice's script for the base (unhedged) swap.
fn base_alice_steps(setup: &Setup, config: &TwoPartyConfig) -> Vec<Step> {
    let apricot = setup.apricot_contract;
    let banana = setup.banana_contract;
    let secret = setup.secret.clone();
    // Alice's escrow is legal until the apricot timelock (3Δ); her
    // redemption must land strictly before the banana timelock (2Δ). The
    // give-ups use the unpadded timelocks: the margin is contract-side
    // slack for reorg re-delivery, not extra time to act.
    let (banana_timelock, apricot_timelock) = config.base_timelocks();
    let escrow_deadline = apricot_timelock;
    let redeem_give_up = banana_timelock;
    let final_deadline = config.padded(apricot_timelock);
    vec![
        Step::new("alice: escrow principal on apricot", move |_world: &World| {
            StepOutcome::Complete(vec![Action::call(
                apricot,
                HtlcMsg::Escrow,
                "Alice escrows A apricot tokens",
            )])
        })
        .with_deadline(escrow_deadline),
        Step::new("alice: redeem banana principal", move |world: &World| {
            if world.now().has_reached(redeem_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if htlc_contract(world, banana).state() == HtlcState::Escrowed {
                StepOutcome::Complete(vec![Action::call(
                    banana,
                    HtlcMsg::Redeem { secret: secret.clone() },
                    "Alice redeems B banana tokens, revealing s",
                )])
            } else {
                StepOutcome::WaitUntil(redeem_give_up)
            }
        })
        .with_deadline(redeem_give_up),
        base_recovery_step(
            "alice: refund timed-out escrows",
            vec![apricot, banana],
            final_deadline,
        ),
    ]
}

/// Bob's script for the base (unhedged) swap.
fn base_bob_steps(setup: &Setup, config: &TwoPartyConfig) -> Vec<Step> {
    let apricot = setup.apricot_contract;
    let banana = setup.banana_contract;
    let (banana_timelock, apricot_timelock) = config.base_timelocks();
    let escrow_give_up = banana_timelock;
    // The secret can only *appear* strictly before the banana timelock
    // (2Δ), but Bob observes the chain with a one-round lag and can legally
    // redeem until the apricot timelock (3Δ). Giving up already at 2Δ — as
    // an earlier revision did — silently forfeited swaps against a
    // last-instant (procrastinating) Alice whose reveal lands exactly at
    // 2Δ − 1: the boundary round in which the secret is on chain but Bob
    // has not seen it yet. He gives up one observation round later instead.
    //
    // The `canary-bugs` feature reintroduces the fixed bug so the sampled
    // sweeps can prove they find and shrink it (see modelcheck's canary
    // tests); it must never be enabled in a real build.
    #[cfg(not(feature = "canary-bugs"))]
    let redeem_give_up = banana_timelock.plus(1);
    #[cfg(feature = "canary-bugs")]
    let redeem_give_up = banana_timelock;
    let final_deadline = config.padded(apricot_timelock);
    vec![
        Step::new("bob: escrow principal on banana", move |world: &World| {
            if world.now().has_reached(escrow_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if htlc_contract(world, apricot).state() == HtlcState::Escrowed {
                StepOutcome::Complete(vec![Action::call(
                    banana,
                    HtlcMsg::Escrow,
                    "Bob escrows B banana tokens",
                )])
            } else {
                StepOutcome::WaitUntil(escrow_give_up)
            }
        })
        .with_deadline(escrow_give_up),
        Step::new("bob: redeem apricot principal", move |world: &World| {
            if world.now().has_reached(redeem_give_up) {
                return StepOutcome::Complete(vec![]);
            }
            if let Some(secret) = htlc_contract(world, banana).revealed_secret() {
                StepOutcome::Complete(vec![Action::call(
                    apricot,
                    HtlcMsg::Redeem { secret: secret.clone() },
                    "Bob redeems A apricot tokens with the learned secret",
                )])
            } else {
                StepOutcome::WaitUntil(redeem_give_up)
            }
        })
        // The deadline annotation must match the give-up, not the apricot
        // timelock (3Δ): an annotation past the give-up would let a
        // procrastinator's hold land on the give-up tick and silently drop
        // a legal redemption (the with_deadline stability contract).
        .with_deadline(redeem_give_up),
        base_recovery_step("bob: refund timed-out escrows", vec![apricot, banana], final_deadline),
    ]
}

fn base_recovery_step(
    name: &'static str,
    contracts: Vec<ContractAddr>,
    _final_deadline: Time,
) -> Step {
    Step::new(name, move |world: &World| {
        let pending: Vec<ContractAddr> = contracts
            .iter()
            .copied()
            .filter(|addr| htlc_contract(world, *addr).state() == HtlcState::Escrowed)
            .collect();
        if pending.is_empty() {
            return StepOutcome::Complete(vec![]);
        }
        let refunds: Vec<Action> = pending
            .iter()
            .filter(|addr| world.now().has_reached(htlc_contract(world, **addr).timelock()))
            .map(|addr| Action::call(*addr, HtlcMsg::Refund, "refund timed-out escrow"))
            .collect();
        if refunds.is_empty() {
            // Refunds unlock at the earliest pending timelock.
            let wake = pending
                .iter()
                .map(|addr| htlc_contract(world, *addr).timelock())
                .filter(|t| *t > world.now())
                .min()
                .unwrap_or(chainsim::Time::MAX);
            StepOutcome::WaitUntil(wake)
        } else if refunds.len() == pending.len() {
            StepOutcome::Complete(refunds)
        } else {
            StepOutcome::Progress(refunds)
        }
    })
}

fn swap_setup(world: &mut World, config: &TwoPartyConfig, protocol: SwapProtocol) -> Setup {
    match protocol {
        SwapProtocol::Hedged => hedged_setup(world, config),
        SwapProtocol::Base => base_setup(world, config),
    }
}

fn swap_actors(
    setup: &Setup,
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
    alice: Strategy,
    bob: Strategy,
) -> Vec<ScriptedParty> {
    let (alice_steps, bob_steps) = match protocol {
        SwapProtocol::Hedged => {
            (hedged_alice_steps(setup, config), hedged_bob_steps(setup, config))
        }
        SwapProtocol::Base => (base_alice_steps(setup, config), base_bob_steps(setup, config)),
    };
    let expected = match protocol {
        SwapProtocol::Hedged => SCRIPT_STEPS,
        SwapProtocol::Base => BASE_SCRIPT_STEPS,
    };
    debug_assert!(
        alice_steps.len() == expected && bob_steps.len() == expected,
        "script constants must match the scripts so sweeps cover exactly the stop-points"
    );
    vec![
        ScriptedParty::new(ALICE, alice_steps, alice).with_delta(config.delta_blocks),
        ScriptedParty::new(BOB, bob_steps, bob).with_delta(config.delta_blocks),
    ]
}

/// Builds the swap's world (contracts published with their real deadline
/// parameters) and compliant scripted parties without executing a single
/// round. Static analyzers consume the contracts' state specs and the
/// scripts' deadline annotations from the result.
pub fn swap_static_setup(
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
) -> (World, Vec<ScriptedParty>) {
    let mut world = World::new(1);
    let setup = swap_setup(&mut world, config, protocol);
    let actors =
        swap_actors(&setup, config, protocol, Strategy::compliant(), Strategy::compliant());
    (world, actors)
}

/// The round budget a two-party run gets before the driver declares it
/// stuck: the last padded deadline plus two propagation rounds of slack.
/// Also the horizon for [`SwapRealism`] reorg schedules — a reorg at or
/// beyond this round can never fire within the run.
pub fn swap_max_rounds(config: &TwoPartyConfig) -> u64 {
    // Reduces to the long-standing `8Δ + 4` bound when both chains share
    // the global Δ and the margin is zero, keeping homogeneous runs
    // bit-identical.
    config.padded(config.hedged_schedule().redeem_apricot).0
        + 2 * config.delta_a().max(config.delta_b())
        + 4
}

fn swap_assets(setup: &Setup) -> [AssetId; 4] {
    [setup.apricot_token, setup.banana_token, setup.apricot_native, setup.banana_native]
}

fn run(
    world: &mut World,
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
    alice: Strategy,
    bob: Strategy,
) -> TwoPartyReport {
    let setup = swap_setup(world, config, protocol);
    let before = BalanceSnapshot::capture(world, &[ALICE, BOB], &swap_assets(&setup));
    let actors = swap_actors(&setup, config, protocol, alice, bob);
    let run_report = run_parties(world, actors, swap_max_rounds(config));
    finish_swap_report(
        world,
        config,
        protocol,
        alice,
        bob,
        &setup,
        &before,
        run_report.failures().len(),
        run_report.rounds(),
    )
}

/// Derives the [`TwoPartyReport`] from the final world state. Shared by the
/// from-scratch and deviation-tree paths, which keeps their reports
/// byte-identical.
#[allow(clippy::too_many_arguments)]
fn finish_swap_report(
    world: &World,
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
    alice: Strategy,
    bob: Strategy,
    setup: &Setup,
    before: &BalanceSnapshot,
    failed_actions: usize,
    rounds: usize,
) -> TwoPartyReport {
    let after = BalanceSnapshot::capture(world, &[ALICE, BOB], &swap_assets(setup));
    let payoffs = Payoffs::between(before, &after);

    let (alice_lockup, bob_lockup, alice_redeemed, bob_redeemed) = match protocol {
        SwapProtocol::Hedged => {
            let apricot = hedged_contract(world, setup.apricot_contract);
            let banana = hedged_contract(world, setup.banana_contract);
            (
                lockup_from_times(
                    apricot.escrowed_at(),
                    apricot.principal_settled_at(),
                    apricot.principal_state() == HedgedPrincipalState::Redeemed,
                    world.now(),
                ),
                lockup_from_times(
                    banana.escrowed_at(),
                    banana.principal_settled_at(),
                    banana.principal_state() == HedgedPrincipalState::Redeemed,
                    world.now(),
                ),
                apricot.principal_state() == HedgedPrincipalState::Redeemed,
                banana.principal_state() == HedgedPrincipalState::Redeemed,
            )
        }
        SwapProtocol::Base => {
            let apricot = htlc_contract(world, setup.apricot_contract);
            let banana = htlc_contract(world, setup.banana_contract);
            (
                lockup_from_times(
                    apricot.escrowed_at(),
                    apricot.settled_at(),
                    apricot.state() == HtlcState::Redeemed,
                    world.now(),
                ),
                lockup_from_times(
                    banana.escrowed_at(),
                    banana.settled_at(),
                    banana.state() == HtlcState::Redeemed,
                    world.now(),
                ),
                apricot.state() == HtlcState::Redeemed,
                banana.state() == HtlcState::Redeemed,
            )
        }
    };

    let alice_premium_payoff =
        payoffs.total_over(ALICE, &[setup.apricot_native, setup.banana_native]).value();
    let bob_premium_payoff =
        payoffs.total_over(BOB, &[setup.apricot_native, setup.banana_native]).value();
    let swap_completed = alice_redeemed && bob_redeemed;

    let hedged_for_alice = if alice.is_compliant() {
        hedged_check(
            alice_lockup,
            alice_redeemed,
            payoffs.of(ALICE, setup.banana_token).value(),
            config.bob_tokens,
            alice_premium_payoff,
            config.premium_b,
        )
    } else {
        true
    };
    let hedged_for_bob = if bob.is_compliant() {
        hedged_check(
            bob_lockup,
            bob_redeemed,
            payoffs.of(BOB, setup.apricot_token).value(),
            config.alice_tokens,
            bob_premium_payoff,
            config.premium_a,
        )
    } else {
        true
    };

    TwoPartyReport {
        protocol,
        strategies: (alice, bob),
        swap_completed,
        alice_apricot_payoff: payoffs.of(ALICE, setup.apricot_token).value(),
        alice_banana_payoff: payoffs.of(ALICE, setup.banana_token).value(),
        bob_apricot_payoff: payoffs.of(BOB, setup.apricot_token).value(),
        bob_banana_payoff: payoffs.of(BOB, setup.banana_token).value(),
        alice_premium_payoff,
        bob_premium_payoff,
        alice_lockup,
        bob_lockup,
        hedged_for_alice,
        hedged_for_bob,
        failed_actions,
        rounds,
        payoffs,
    }
}

fn lockup_from_times(
    escrowed_at: Option<Time>,
    settled_at: Option<Time>,
    redeemed: bool,
    now: Time,
) -> Lockup {
    match escrowed_at {
        None => Lockup { principal_blocks: 0, redeemed: false },
        Some(start) => {
            let end = settled_at.unwrap_or(now);
            Lockup { principal_blocks: end - start, redeemed }
        }
    }
}

/// The hedged condition for one side of the swap: either their escrow was
/// redeemed and they received the counterparty's principal (and lost no
/// premium), or their escrow was returned / never made and their premium
/// payoff covers the agreed compensation (zero when nothing was locked up).
fn hedged_check(
    lockup: Lockup,
    own_principal_redeemed: bool,
    counter_asset_gain: i128,
    counter_asset_expected: Amount,
    premium_payoff: i128,
    compensation: Amount,
) -> bool {
    if own_principal_redeemed {
        counter_asset_gain >= counter_asset_expected.value() as i128 && premium_payoff >= 0
    } else if lockup.principal_blocks > 0 {
        premium_payoff >= compensation.value() as i128
    } else {
        premium_payoff >= 0
    }
}

/// Runs the hedged two-party swap (§5.2) with the given strategies.
pub fn run_hedged_swap(config: &TwoPartyConfig, alice: Strategy, bob: Strategy) -> TwoPartyReport {
    run(&mut World::new(1), config, SwapProtocol::Hedged, alice, bob)
}

/// Runs the unhedged base swap (§5.1) with the given strategies.
pub fn run_base_swap(config: &TwoPartyConfig, alice: Strategy, bob: Strategy) -> TwoPartyReport {
    run(&mut World::new(1), config, SwapProtocol::Base, alice, bob)
}

/// Runs the hedged two-party swap inside a caller-provided world (reset
/// first; its [`chainsim::TraceMode`] is preserved). Hot-path variant of
/// [`run_hedged_swap`] for sweep engines that pool worlds across scenarios.
pub fn run_hedged_swap_in(
    world: &mut World,
    config: &TwoPartyConfig,
    alice: Strategy,
    bob: Strategy,
) -> TwoPartyReport {
    run(world, config, SwapProtocol::Hedged, alice, bob)
}

/// Runs the unhedged base swap inside a caller-provided world; see
/// [`run_hedged_swap_in`].
pub fn run_base_swap_in(
    world: &mut World,
    config: &TwoPartyConfig,
    alice: Strategy,
    bob: Strategy,
) -> TwoPartyReport {
    run(world, config, SwapProtocol::Base, alice, bob)
}

/// Chain-realism overlay for a two-party run: per-chain finality lag plus a
/// deterministic reorg schedule, applied to the freshly set-up world before
/// the first protocol round. The default overlay (zero depths, no reorgs)
/// reproduces [`run_hedged_swap_in`]/[`run_base_swap_in`] exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapRealism {
    /// Finality lag (revertible trailing rounds) of the apricot chain.
    pub apricot_depth: u32,
    /// Finality lag of the banana chain.
    pub banana_depth: u32,
    /// Reorgs to schedule, in firing order. In two-party worlds the apricot
    /// chain is [`chainsim::ChainId`]`(0)` and the banana chain is
    /// `ChainId(1)`; `at_round` counts protocol rounds from setup.
    pub reorgs: Vec<chainsim::ReorgEvent>,
}

/// Runs a two-party swap under a [`SwapRealism`] overlay: finality lag on
/// either chain and scheduled reorgs that rewind speculative rounds and
/// re-deliver (or drop) the affected calls.
///
/// This is the entry point for the reorg fault axis in sampled sweeps: with
/// [`TwoPartyConfig::finality_margin`] at least `depth − 1`, re-delivering
/// reorgs are absorbed by the padded contract deadlines; with a zero margin
/// they can push a compliant party's last-tick call past its deadline.
pub fn run_swap_with_realism_in(
    world: &mut World,
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
    alice: Strategy,
    bob: Strategy,
    realism: &SwapRealism,
) -> TwoPartyReport {
    let setup = swap_setup(world, config, protocol);
    let apricot = world.chains().next().expect("apricot chain").id();
    let banana = world.chains().nth(1).expect("banana chain").id();
    if realism.apricot_depth > 0 {
        world.set_finality(
            apricot,
            chainsim::FinalityParams { depth: realism.apricot_depth, delta: 0 },
        );
    }
    if realism.banana_depth > 0 {
        world.set_finality(
            banana,
            chainsim::FinalityParams { depth: realism.banana_depth, delta: 0 },
        );
    }
    for event in &realism.reorgs {
        world.schedule_reorg(*event);
    }
    let before = BalanceSnapshot::capture(world, &[ALICE, BOB], &swap_assets(&setup));
    let actors = swap_actors(&setup, config, protocol, alice, bob);
    let run_report = run_parties(world, actors, swap_max_rounds(config));
    finish_swap_report(
        world,
        config,
        protocol,
        alice,
        bob,
        &setup,
        &before,
        run_report.failures().len(),
        run_report.rounds(),
    )
}

/// The per-worker deviation-tree cache for one two-party configuration
/// (one per protocol variant): the recorded compliant prefix plus the
/// setup report derivation needs.
pub struct TwoPartyPrefix {
    protocol: SwapProtocol,
    prefix: DeviationTree,
    setup: Setup,
    before: BalanceSnapshot,
}

impl std::fmt::Debug for TwoPartyPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPartyPrefix")
            .field("protocol", &self.protocol)
            .field("prefix", &self.prefix)
            .finish()
    }
}

/// Runs a two-party swap through the deviation tree: the compliant prefix
/// is executed (and checkpointed) once per worker and every `(alice, bob)`
/// profile resumes from the snapshot at its divergence round. Reports are
/// byte-identical to [`run_hedged_swap_in`]/[`run_base_swap_in`].
pub fn run_swap_shared(
    world: &mut World,
    config: &TwoPartyConfig,
    protocol: SwapProtocol,
    alice: Strategy,
    bob: Strategy,
    cache: &mut Option<TwoPartyPrefix>,
) -> TwoPartyReport {
    if cache.as_ref().is_none_or(|c| c.protocol != protocol) {
        let setup = swap_setup(world, config, protocol);
        let before = BalanceSnapshot::capture(world, &[ALICE, BOB], &swap_assets(&setup));
        let actors =
            swap_actors(&setup, config, protocol, Strategy::compliant(), Strategy::compliant());
        let prefix = DeviationTree::record(world, actors, swap_max_rounds(config));
        *cache = Some(TwoPartyPrefix { protocol, prefix, setup, before });
    }
    let cached = cache.as_mut().expect("cache populated above");
    let resumed = cached.prefix.resume(world, &|party| if party == ALICE { alice } else { bob });
    finish_swap_report(
        world,
        config,
        protocol,
        alice,
        bob,
        &cached.setup,
        &cached.before,
        resumed.failed_actions,
        resumed.rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TwoPartyConfig {
        TwoPartyConfig::default()
    }

    #[test]
    fn hedged_compliant_run_swaps_and_refunds_premiums() {
        let report = run_hedged_swap(&config(), Strategy::compliant(), Strategy::compliant());
        assert!(report.swap_completed);
        assert_eq!(report.alice_apricot_payoff, -100);
        assert_eq!(report.alice_banana_payoff, 100);
        assert_eq!(report.bob_apricot_payoff, 100);
        assert_eq!(report.bob_banana_payoff, -100);
        assert_eq!(report.alice_premium_payoff, 0);
        assert_eq!(report.bob_premium_payoff, 0);
        assert!(report.hedged_for_alice && report.hedged_for_bob);
        assert_eq!(report.failed_actions, 0);
        assert!(report.payoffs.conserved());
        assert!(report.alice_lockup.redeemed && report.bob_lockup.redeemed);
    }

    #[test]
    fn hedged_bob_reneging_after_premiums_pays_alice() {
        // Bob deposits his premium but never escrows (stop after 1 step).
        let report = run_hedged_swap(&config(), Strategy::compliant(), Strategy::stop_after(1));
        assert!(!report.swap_completed);
        // Alice escrowed, was not redeemed, and collects p_b = 2.
        assert_eq!(report.alice_apricot_payoff, 0, "principal refunded");
        assert_eq!(report.alice_premium_payoff, 2);
        assert_eq!(report.bob_premium_payoff, -2);
        assert!(report.hedged_for_alice);
        assert!(report.payoffs.conserved());
    }

    #[test]
    fn hedged_alice_reneging_after_bob_escrows_pays_bob() {
        // Alice stops after escrowing (never reveals the secret).
        let report = run_hedged_swap(&config(), Strategy::stop_after(2), Strategy::compliant());
        assert!(!report.swap_completed);
        // Bob nets +p_a = +2, Alice nets -p_a = -2 (she pays p_a+p_b, receives p_b).
        assert_eq!(report.bob_premium_payoff, 2);
        assert_eq!(report.alice_premium_payoff, -2);
        assert_eq!(report.bob_banana_payoff, 0, "Bob's principal refunded");
        assert!(report.hedged_for_bob);
        assert!(report.payoffs.conserved());
    }

    #[test]
    fn hedged_bob_never_participating_costs_nobody_anything() {
        let report = run_hedged_swap(&config(), Strategy::compliant(), Strategy::stop_after(0));
        assert!(!report.swap_completed);
        assert_eq!(report.alice_premium_payoff, 0);
        assert_eq!(report.bob_premium_payoff, 0);
        assert_eq!(report.alice_apricot_payoff, 0);
        assert!(report.hedged_for_alice);
        assert_eq!(report.alice_lockup.principal_blocks, 0, "Alice never escrows her principal");
    }

    #[test]
    fn base_protocol_leaves_alice_locked_and_uncompensated() {
        // Bob walks away immediately after Alice escrows (claim C1).
        let report = run_base_swap(&config(), Strategy::compliant(), Strategy::stop_after(0));
        assert!(!report.swap_completed);
        assert_eq!(report.alice_apricot_payoff, 0, "refunded after the timelock");
        assert_eq!(report.alice_premium_payoff, 0, "no compensation in the base protocol");
        assert!(!report.hedged_for_alice, "base protocol is not hedged");
        // Locked for the full 3Δ = 6 blocks.
        assert_eq!(report.alice_lockup.principal_blocks, 3 * config().delta_blocks);
    }

    #[test]
    fn base_protocol_leaves_bob_locked_when_alice_aborts() {
        // Alice escrows but never redeems Bob's escrow (claim C1, second half).
        let report = run_base_swap(&config(), Strategy::stop_after(1), Strategy::compliant());
        assert!(!report.swap_completed);
        assert_eq!(report.bob_banana_payoff, 0, "refunded after the timelock");
        assert!(!report.hedged_for_bob);
        assert!(report.bob_lockup.principal_blocks > 0);
        assert!(report.bob_lockup.principal_blocks < 3 * config().delta_blocks);
    }

    #[test]
    fn base_compliant_run_completes() {
        let report = run_base_swap(&config(), Strategy::compliant(), Strategy::compliant());
        assert!(report.swap_completed);
        assert_eq!(report.alice_banana_payoff, 100);
        assert_eq!(report.bob_apricot_payoff, 100);
        assert_eq!(report.failed_actions, 0);
        assert!(report.hedged_for_alice && report.hedged_for_bob);
    }

    #[test]
    fn all_unilateral_deviations_keep_compliant_parties_hedged() {
        // Sweep every deviation point for each party in the hedged protocol.
        for k in 0..4 {
            let report = run_hedged_swap(&config(), Strategy::compliant(), Strategy::stop_after(k));
            assert!(report.hedged_for_alice, "Alice must be hedged when Bob stops after {k}");
            assert!(report.payoffs.conserved());
            let report = run_hedged_swap(&config(), Strategy::stop_after(k), Strategy::compliant());
            assert!(report.hedged_for_bob, "Bob must be hedged when Alice stops after {k}");
            assert!(report.payoffs.conserved());
        }
    }

    #[test]
    fn larger_delta_scales_lockup_durations() {
        let mut cfg = config();
        cfg.delta_blocks = 6;
        let report = run_base_swap(&cfg, Strategy::compliant(), Strategy::stop_after(0));
        assert_eq!(report.alice_lockup.principal_blocks, 18);
    }

    #[test]
    fn hedged_schedule_reduces_to_the_paper_ladder_at_equal_delta() {
        let sched = config().hedged_schedule();
        let d = config().delta_blocks;
        assert_eq!(sched.premium_banana, Time(d));
        assert_eq!(sched.premium_apricot, Time(2 * d));
        assert_eq!(sched.escrow_apricot, Time(3 * d));
        assert_eq!(sched.escrow_banana, Time(4 * d));
        assert_eq!(sched.redeem_banana, Time(5 * d));
        assert_eq!(sched.redeem_apricot, Time(6 * d));
        assert_eq!(config().base_timelocks(), (Time(2 * d), Time(3 * d)));
    }

    #[test]
    fn heterogeneous_delta_stretches_the_ladder_per_chain() {
        let cfg = TwoPartyConfig { delta_apricot: 1, delta_banana: 3, ..config() };
        let sched = cfg.hedged_schedule();
        // t1 = Δ_b, then +Δ_a, +Δ_a, +Δ_b, +Δ_b, +Δ_a.
        assert_eq!(sched.premium_banana, Time(3));
        assert_eq!(sched.premium_apricot, Time(4));
        assert_eq!(sched.escrow_apricot, Time(5));
        assert_eq!(sched.escrow_banana, Time(8));
        assert_eq!(sched.redeem_banana, Time(11));
        assert_eq!(sched.redeem_apricot, Time(12));
        assert_eq!(cfg.base_timelocks(), (Time(4), Time(5)));
    }

    #[test]
    fn heterogeneous_delta_swaps_complete_and_stay_hedged() {
        for (da, db) in [(1, 3), (3, 1), (2, 5)] {
            let cfg = TwoPartyConfig { delta_apricot: da, delta_banana: db, ..config() };
            let report = run_hedged_swap(&cfg, Strategy::compliant(), Strategy::compliant());
            assert!(report.swap_completed, "compliant hedged swap completes at Δ=({da},{db})");
            assert!(report.hedged_for_alice && report.hedged_for_bob);
            assert!(report.payoffs.conserved());
            // Unilateral walk-aways stay compensated under skewed Δ too.
            for k in 0..4 {
                let r = run_hedged_swap(&cfg, Strategy::compliant(), Strategy::stop_after(k));
                assert!(r.hedged_for_alice, "Alice hedged at Δ=({da},{db}), Bob stops after {k}");
                let r = run_hedged_swap(&cfg, Strategy::stop_after(k), Strategy::compliant());
                assert!(r.hedged_for_bob, "Bob hedged at Δ=({da},{db}), Alice stops after {k}");
            }
        }
    }

    #[test]
    fn default_realism_reproduces_the_plain_run() {
        let plain = run_hedged_swap(&config(), Strategy::compliant(), Strategy::compliant());
        let overlay = run_swap_with_realism_in(
            &mut World::new(1),
            &config(),
            SwapProtocol::Hedged,
            Strategy::compliant(),
            Strategy::compliant(),
            &SwapRealism::default(),
        );
        assert_eq!(plain.swap_completed, overlay.swap_completed);
        assert_eq!(plain.payoffs, overlay.payoffs);
        assert_eq!(plain.rounds, overlay.rounds);
        assert_eq!(plain.failed_actions, overlay.failed_actions);
    }

    #[test]
    fn redeliver_reorgs_with_margin_are_absorbed_by_compliant_runs() {
        // Finality lag 2 on both chains, margin depth − 1 = 1, and a
        // redelivering reorg in every protocol round on alternating chains:
        // the padded deadlines absorb every re-delivery, so the swap still
        // completes and both parties stay hedged.
        let cfg = TwoPartyConfig { finality_margin: 1, ..config() };
        let mut realism = SwapRealism { apricot_depth: 2, banana_depth: 2, reorgs: Vec::new() };
        for round in 0..20 {
            realism.reorgs.push(chainsim::ReorgEvent {
                chain: chainsim::ChainId((round % 2) as u32),
                at_round: round,
                depth: 2,
                policy: chainsim::ReorgPolicy::Redeliver,
            });
        }
        for (alice, bob) in [
            (Strategy::compliant(), Strategy::compliant()),
            (Strategy::compliant().late(), Strategy::compliant()),
            (Strategy::compliant(), Strategy::compliant().late()),
        ] {
            let report = run_swap_with_realism_in(
                &mut World::new(1),
                &cfg,
                SwapProtocol::Hedged,
                alice,
                bob,
                &realism,
            );
            assert!(report.swap_completed, "reorgs within the margin cannot break the swap");
            assert!(report.hedged_for_alice && report.hedged_for_bob);
            assert!(report.payoffs.conserved());
        }
    }

    #[test]
    fn zero_margin_reorg_swallows_a_procrastinated_redeem() {
        // The sore-loser-by-reorg scenario: with no finality margin, a
        // depth-2 redelivering reorg can push a procrastinating (but fully
        // compliant) party's last-tick call past its unpadded deadline, so
        // the swap dies even though nobody deviated. Scan every candidate
        // reorg round: at least one must break the zero-margin run, and a
        // `finality_margin` of depth − 1 must absorb every single one.
        let cfg = config();
        let horizon = swap_max_rounds(&cfg);
        let realism_at = |at_round: u64| SwapRealism {
            apricot_depth: 0,
            banana_depth: 2,
            reorgs: vec![chainsim::ReorgEvent {
                chain: chainsim::ChainId(1),
                at_round,
                depth: 2,
                policy: chainsim::ReorgPolicy::Redeliver,
            }],
        };
        let mut violating_rounds = Vec::new();
        for at_round in 1..horizon {
            let report = run_swap_with_realism_in(
                &mut World::new(1),
                &cfg,
                SwapProtocol::Hedged,
                Strategy::compliant().late(),
                Strategy::compliant().late(),
                &realism_at(at_round),
            );
            assert!(report.payoffs.conserved());
            if !(report.swap_completed && report.hedged_for_alice && report.hedged_for_bob) {
                violating_rounds.push(at_round);
            }
        }
        assert!(
            !violating_rounds.is_empty(),
            "some reorg round must swallow a last-tick call at margin 0"
        );
        // The same schedules with the margin keep the theorem intact: every
        // previously violating reorg round now completes, hedged for both.
        let fixed_cfg = TwoPartyConfig { finality_margin: 1, ..cfg };
        for at_round in violating_rounds {
            let fixed = run_swap_with_realism_in(
                &mut World::new(1),
                &fixed_cfg,
                SwapProtocol::Hedged,
                Strategy::compliant().late(),
                Strategy::compliant().late(),
                &realism_at(at_round),
            );
            assert!(
                fixed.swap_completed,
                "a finality margin of depth − 1 absorbs the reorg at round {at_round}"
            );
            assert!(fixed.hedged_for_alice && fixed.hedged_for_bob);
            assert!(fixed.payoffs.conserved());
        }
    }
}
