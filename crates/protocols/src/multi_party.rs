//! The hedged multi-party swap (§7), as a configuration of the generic
//! [`crate::deal`] engine.
//!
//! A multi-party swap is a strongly-connected digraph whose vertices are
//! parties and whose arcs are transfers of each sender's own token. Leaders
//! form a feedback vertex set; escrow premiums follow Equation (2) and
//! redemption premiums Equation (1).

use std::collections::{BTreeMap, BTreeSet};

use chainsim::{Amount, PartyId};
use swapgraph::{premiums, Digraph, Vertex};

use crate::deal::{run_deal, ArcSpec, DealConfig, DealReport};
use crate::script::Strategy;

/// Builds a [`DealConfig`] for a multi-party swap over `digraph` with the
/// given leaders, per-arc principal `amount` and base premium `p`.
///
/// Each party `v` trades its own token (`token-v`), minted in sufficient
/// quantity for all of its outgoing arcs; each arc's contract lives on the
/// sender's chain (`chain-v`).
///
/// # Panics
///
/// Panics if `leaders` is not a valid leader set for `digraph` (not a
/// feedback vertex set of a strongly connected digraph).
pub fn swap_config(
    digraph: &Digraph,
    leaders: &BTreeSet<Vertex>,
    amount: Amount,
    base_premium: Amount,
    delta_blocks: u64,
) -> DealConfig {
    digraph.validate_leaders(leaders).expect("leaders must form a feedback vertex set");
    let escrow_table = premiums::escrow_premium_table(digraph, leaders, 1)
        .expect("validated leader set computes escrow premiums");

    let chains: Vec<String> = digraph.vertices().map(|v| format!("chain-{v}")).collect();
    let mut arcs = Vec::new();
    for (u, v) in digraph.arcs() {
        arcs.push(ArcSpec {
            from: PartyId(u),
            to: PartyId(v),
            chain: format!("chain-{u}"),
            asset_name: format!("token-{u}"),
            amount,
            escrow_premium: base_premium.scaled(escrow_table[&(u, v)]),
        });
    }
    let endowments: Vec<(PartyId, String, String, Amount)> = digraph
        .vertices()
        .map(|v| {
            let out_degree = digraph.out_neighbors(v).len() as u128;
            (
                PartyId(v),
                format!("chain-{v}"),
                format!("token-{v}"),
                amount.scaled(out_degree.max(1)),
            )
        })
        .collect();
    let wait_for_incoming: BTreeSet<PartyId> =
        digraph.vertices().filter(|v| !leaders.contains(v)).map(PartyId).collect();

    let leader_parties: BTreeSet<PartyId> = leaders.iter().map(|&l| PartyId(l)).collect();
    let premium_float =
        DealConfig::premium_float_for(digraph, &leader_parties, &arcs, base_premium);
    DealConfig {
        digraph: digraph.clone(),
        leaders: leader_parties,
        chains,
        arcs,
        wait_for_incoming,
        base_premium,
        delta_blocks,
        endowments,
        premium_float,
        caches: Default::default(),
    }
}

/// The three-party swap of Figure 3a (A = 0 is the only leader), with unit
/// base premium and 100-token principals.
pub fn figure3_config() -> DealConfig {
    swap_config(&Digraph::figure3(), &BTreeSet::from([0]), Amount::new(100), Amount::new(1), 2)
}

/// A directed-cycle swap on `n` parties with party 0 as the leader.
pub fn cycle_config(n: u32) -> DealConfig {
    swap_config(&Digraph::cycle(n), &BTreeSet::from([0]), Amount::new(100), Amount::new(1), 2)
}

/// A complete-digraph (clique) swap on `n` parties: every ordered pair
/// trades, the paper's worst case for premium growth. Leaders are the
/// greedy feedback vertex set (`n - 1` parties on a clique).
pub fn clique_config(n: u32) -> DealConfig {
    digraph_config(&Digraph::complete(n))
}

/// A swap over a seeded random strongly-connected digraph on `n` parties
/// with `extra_arcs` arcs beyond the generated Hamiltonian cycle.
/// Deterministic in `(n, extra_arcs, seed)`.
pub fn random_config(n: u32, extra_arcs: usize, seed: u64) -> DealConfig {
    digraph_config(&Digraph::random_strongly_connected(n, extra_arcs, seed))
}

/// Builds a swap configuration for an arbitrary strongly-connected
/// `digraph`, electing the greedy feedback vertex set as leaders and using
/// the standard 100-token principals, unit base premium and Δ = 2.
///
/// # Panics
///
/// Panics if `digraph` is not strongly connected.
pub fn digraph_config(digraph: &Digraph) -> DealConfig {
    let leaders = digraph.greedy_feedback_vertex_set();
    swap_config(digraph, &leaders, Amount::new(100), Amount::new(1), 2)
}

/// Runs a hedged multi-party swap. Parties missing from `strategies` are
/// compliant.
pub fn run_multi_party_swap(
    config: &DealConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
) -> DealReport {
    run_deal(config, strategies)
}

/// Runs a hedged multi-party swap inside a caller-provided world; see
/// [`crate::deal::run_deal_in`].
pub fn run_multi_party_swap_in(
    world: &mut chainsim::World,
    config: &DealConfig,
    strategies: &BTreeMap<PartyId, Strategy>,
) -> DealReport {
    crate::deal::run_deal_in(world, config, strategies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_compliant_run_swaps_every_arc() {
        let report = run_multi_party_swap(&figure3_config(), &BTreeMap::new());
        assert!(report.completed);
        assert!(report.all_compliant_hedged());
        assert_eq!(report.failed_actions, 0);
        // Everyone receives everything and pays no premium.
        for (party, outcome) in &report.parties {
            assert_eq!(outcome.premium_payoff, 0, "{party} should break even on premiums");
            assert_eq!(outcome.received, outcome.incoming_arcs);
            assert_eq!(outcome.escrowed_unredeemed, 0);
        }
    }

    #[test]
    fn carol_defecting_in_escrow_phase_compensates_the_others() {
        // Carol (2) deposits premiums but never escrows her asset: the
        // classic Figure 3 dilemma. Compliant Alice and Bob must stay hedged.
        let strategies = BTreeMap::from([(PartyId(2), Strategy::stop_after(2))]);
        let report = run_multi_party_swap(&figure3_config(), &strategies);
        assert!(!report.completed);
        assert!(report.parties[&PartyId(0)].hedged, "Alice hedged: {report:?}");
        assert!(report.parties[&PartyId(0)].safety);
        assert!(report.parties[&PartyId(1)].hedged, "Bob hedged: {report:?}");
        assert!(report.parties[&PartyId(1)].safety);
        assert!(report.payoffs.conserved());
        // Carol, the deviator, pays out at least one base premium in total.
        assert!(report.parties[&PartyId(2)].premium_payoff < 0);
    }

    #[test]
    fn absent_leader_costs_compliant_followers_nothing_major() {
        // Alice (leader, 0) never participates at all.
        let strategies = BTreeMap::from([(PartyId(0), Strategy::stop_after(0))]);
        let report = run_multi_party_swap(&figure3_config(), &strategies);
        assert!(!report.completed);
        for party in [PartyId(1), PartyId(2)] {
            assert!(report.parties[&party].hedged);
            assert!(report.parties[&party].safety);
            assert!(report.parties[&party].premium_payoff >= 0);
        }
    }

    #[test]
    fn every_unilateral_deviation_keeps_compliant_parties_hedged() {
        let config = figure3_config();
        for party in 0..3u32 {
            for stop_after in 0..5usize {
                let strategies =
                    BTreeMap::from([(PartyId(party), Strategy::stop_after(stop_after))]);
                let report = run_multi_party_swap(&config, &strategies);
                assert!(
                    report.all_compliant_hedged(),
                    "party {party} stopping after {stop_after} broke the hedge: {report:?}"
                );
                assert!(report.payoffs.conserved());
            }
        }
    }

    #[test]
    fn cycle_swap_completes_for_various_sizes() {
        for n in [2u32, 3, 4] {
            let report = run_multi_party_swap(&cycle_config(n), &BTreeMap::new());
            assert!(report.completed, "cycle of {n} should complete");
            assert!(report.all_compliant_hedged());
        }
    }

    #[test]
    fn clique_swap_completes_and_refunds_premiums() {
        for n in [3u32, 4] {
            let config = clique_config(n);
            assert_eq!(config.leaders.len(), n as usize - 1, "clique FVS is n-1 leaders");
            let report = run_multi_party_swap(&config, &BTreeMap::new());
            assert!(report.completed, "clique of {n} should complete: {report:?}");
            assert!(report.all_compliant_hedged());
            assert_eq!(report.failed_actions, 0);
            for (party, outcome) in &report.parties {
                assert_eq!(outcome.premium_payoff, 0, "{party} should break even");
            }
        }
    }

    #[test]
    fn random_digraph_swap_completes() {
        for seed in 0..4u64 {
            let config = random_config(4, 3, seed);
            let report = run_multi_party_swap(&config, &BTreeMap::new());
            assert!(report.completed, "seed {seed}: {report:?}");
            assert!(report.all_compliant_hedged());
            assert!(report.payoffs.conserved());
        }
    }

    #[test]
    #[should_panic(expected = "feedback vertex set")]
    fn invalid_leader_set_is_rejected() {
        let _ = swap_config(
            &Digraph::figure3(),
            &BTreeSet::from([2]),
            Amount::new(1),
            Amount::new(1),
            1,
        );
    }
}
