//! Scripted parties and deviation strategies.
//!
//! A protocol role is expressed as an ordered list of [`Step`]s. In every
//! synchronous round the party examines the world; the current step either
//! waits (its trigger has not been observed yet), makes partial progress, or
//! completes. A *sore loser* is modelled with [`Strategy::StopAfter`]: the
//! party executes its first `k` steps faithfully and then stops
//! participating entirely — exactly the deviation class the paper's threat
//! model allows, since contracts reject malformed or mistimed calls anyway.

use std::fmt;

use chainsim::{Action, Actor, PartyId, World};

/// How a party behaves during a protocol run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Follow the protocol to completion (including recovery steps).
    Compliant,
    /// Execute the first `n` steps, then walk away (a sore loser).
    ///
    /// `StopAfter(0)` never participates at all.
    StopAfter(usize),
}

impl Strategy {
    /// Returns `true` if this strategy is fully compliant.
    pub fn is_compliant(&self) -> bool {
        matches!(self, Strategy::Compliant)
    }

    /// The number of steps the party will execute, given a script with
    /// `total` steps.
    pub fn steps_executed(&self, total: usize) -> usize {
        match self {
            Strategy::Compliant => total,
            Strategy::StopAfter(n) => (*n).min(total),
        }
    }

    /// Enumerates every distinct strategy for a script with `total` steps:
    /// compliant plus stopping after `0..total` steps.
    pub fn all(total: usize) -> Vec<Strategy> {
        let mut strategies = vec![Strategy::Compliant];
        strategies.extend((0..total).map(Strategy::StopAfter));
        strategies
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Compliant => write!(f, "compliant"),
            Strategy::StopAfter(n) => write!(f, "stop-after-{n}"),
        }
    }
}

/// The result of evaluating a step against the current world.
#[derive(Debug)]
pub enum StepOutcome {
    /// The step's trigger has not been observed yet; try again next round.
    Wait,
    /// Emit these actions and stay on the same step (partial progress).
    Progress(Vec<Action>),
    /// Emit these actions and move on to the next step.
    Complete(Vec<Action>),
}

/// One step of a party's protocol script.
pub struct Step {
    /// Human-readable name used in traces and reports.
    pub name: &'static str,
    /// Evaluates the step against the observed world.
    pub run: Box<dyn FnMut(&World) -> StepOutcome + Send>,
}

impl Step {
    /// Creates a step from a name and closure.
    pub fn new(
        name: &'static str,
        run: impl FnMut(&World) -> StepOutcome + Send + 'static,
    ) -> Self {
        Step { name, run: Box::new(run) }
    }
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Step({})", self.name)
    }
}

/// An [`Actor`] that follows a script of [`Step`]s under a [`Strategy`].
pub struct ScriptedParty {
    party: PartyId,
    steps: Vec<Step>,
    cursor: usize,
    completed: usize,
    allowed: usize,
}

impl ScriptedParty {
    /// Creates a scripted party executing `steps` under `strategy`.
    pub fn new(party: PartyId, steps: Vec<Step>, strategy: Strategy) -> Self {
        let allowed = strategy.steps_executed(steps.len());
        ScriptedParty { party, steps, cursor: 0, completed: 0, allowed }
    }

    /// The number of steps completed so far.
    pub fn completed_steps(&self) -> usize {
        self.completed
    }

    /// The total number of steps in the script.
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }
}

impl fmt::Debug for ScriptedParty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedParty")
            .field("party", &self.party)
            .field("cursor", &self.cursor)
            .field("steps", &self.steps.len())
            .field("allowed", &self.allowed)
            .finish()
    }
}

impl Actor for ScriptedParty {
    fn party(&self) -> PartyId {
        self.party
    }

    fn step(&mut self, world: &World, actions: &mut Vec<Action>) {
        if self.cursor >= self.steps.len() || self.completed >= self.allowed {
            return;
        }
        let step = &mut self.steps[self.cursor];
        match (step.run)(world) {
            StepOutcome::Wait => {}
            StepOutcome::Progress(mut emitted) => {
                actions.append(&mut emitted);
            }
            StepOutcome::Complete(mut emitted) => {
                actions.append(&mut emitted);
                self.cursor += 1;
                self.completed += 1;
            }
        }
    }

    fn done(&self) -> bool {
        self.cursor >= self.steps.len() || self.completed >= self.allowed
    }
}

/// Runs a set of scripted parties to quiescence.
///
/// This is a thin wrapper over [`chainsim::Scheduler`] with a generous round
/// budget: protocols define absolute deadlines, so `max_rounds` only needs
/// to exceed the final deadline.
pub fn run_parties(
    world: &mut World,
    parties: Vec<ScriptedParty>,
    max_rounds: u64,
) -> chainsim::RunReport {
    let mut actors: Vec<Box<dyn Actor>> =
        parties.into_iter().map(|p| Box::new(p) as Box<dyn Actor>).collect();
    chainsim::Scheduler::new(max_rounds).run(world, &mut actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_step_budgets() {
        assert_eq!(Strategy::Compliant.steps_executed(5), 5);
        assert_eq!(Strategy::StopAfter(2).steps_executed(5), 2);
        assert_eq!(Strategy::StopAfter(9).steps_executed(5), 5);
        assert!(Strategy::Compliant.is_compliant());
        assert!(!Strategy::StopAfter(0).is_compliant());
        assert_eq!(Strategy::all(3).len(), 4);
        assert_eq!(Strategy::Compliant.to_string(), "compliant");
        assert_eq!(Strategy::StopAfter(1).to_string(), "stop-after-1");
    }

    #[test]
    fn scripted_party_advances_and_respects_budget() {
        let mut world = World::new(1);
        world.add_chain("a");
        let steps = vec![
            Step::new("one", |_| StepOutcome::Complete(vec![])),
            Step::new("two", |_| StepOutcome::Complete(vec![])),
            Step::new("three", |_| StepOutcome::Complete(vec![])),
        ];
        let mut party = ScriptedParty::new(PartyId(0), steps, Strategy::StopAfter(2));
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2);
        assert!(party.done(), "stops after its deviation budget");
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2);
        assert_eq!(party.total_steps(), 3);
        let _ = &mut world;
    }

    #[test]
    fn waiting_steps_do_not_advance() {
        let world = World::new(1);
        let steps = vec![Step::new("never", |_| StepOutcome::Wait)];
        let mut party = ScriptedParty::new(PartyId(1), steps, Strategy::Compliant);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 0);
        assert!(!party.done());
        assert!(actions.is_empty());
    }

    #[test]
    fn progress_steps_emit_without_advancing() {
        let world = World::new(1);
        let steps = vec![Step::new("chatty", |_| StepOutcome::Progress(vec![]))];
        let mut party = ScriptedParty::new(PartyId(1), steps, Strategy::Compliant);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 0);
        assert!(!party.done());
    }

    #[test]
    fn run_parties_terminates() {
        let mut world = World::new(1);
        world.add_chain("a");
        let parties = vec![ScriptedParty::new(
            PartyId(0),
            vec![Step::new("noop", |_| StepOutcome::Complete(vec![]))],
            Strategy::Compliant,
        )];
        let report = run_parties(&mut world, parties, 10);
        assert!(report.rounds() <= 10);
    }
}
