//! Scripted parties, deviation strategies, and the checkpoint/resume
//! machinery behind prefix-sharing sweeps.
//!
//! A protocol role is expressed as an ordered list of [`Step`]s. In every
//! synchronous round the party examines the world; the current step either
//! waits (its trigger has not been observed yet), makes partial progress, or
//! completes. A *sore loser* is modelled with [`Strategy::stop_after`]: the
//! party executes its first `k` steps faithfully and then stops
//! participating entirely — exactly the deviation class the paper's threat
//! model allows, since contracts reject malformed or mistimed calls anyway.
//!
//! # Deviation trees
//!
//! `StopAfter` deviations share long identical prefixes: a party that
//! stops after `k` steps behaves *identically* to a compliant party until
//! the first round it would have emitted an action past its budget. A
//! [`DeviationTree`] exploits this: it executes the all-compliant run
//! once, snapshots the world and every party's script state at each
//! executed round (compressing provably pure-wait stretches into clock
//! offsets), and then [`DeviationTree::resume`]s any deviation profile
//! from the snapshot at its divergence round instead of replaying the
//! shared prefix from scratch. Because the resumed tail is driven by the
//! exact same round primitive ([`chainsim::run_round`]) over forked
//! copies of the exact same party state, the resumed run is bit-for-bit
//! identical to a from-scratch execution of the profile — pinned by
//! differential tests against the `replay-oracle` brute-force sweeps in
//! `modelcheck`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use chainsim::{run_round_with, Action, Actor, PartyId, RoundBuffers, Time, World, WorldSnapshot};
use contracts::Hashkey;
use cryptosim::Digest;

/// The maximum script length a [`DelayVector`] can address. Every bundled
/// script has at most six steps; the fixed size keeps [`Strategy`] `Copy`.
pub const MAX_DELAY_STEPS: usize = 8;

/// Per-step emission delays, in blocks, for [`Timing::Delay`].
///
/// Entry `i` asks to delay step `i`'s emission by that many blocks past its
/// trigger. The hold is clamped to the last legal tick — within Δ of the
/// trigger *and* strictly before the step's annotated deadline — so every
/// vector is conforming by construction: oversized entries simply behave
/// like [`Timing::Procrastinate`] for that step, and a zero entry is eager.
/// The sampled tier draws these vectors at random to probe arbitrary points
/// of each legal window, not just its Eager/Procrastinate endpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DelayVector(pub [u8; MAX_DELAY_STEPS]);

impl DelayVector {
    /// The all-zero vector (behaviourally eager).
    pub const ZERO: DelayVector = DelayVector([0; MAX_DELAY_STEPS]);

    /// Builds a vector from a prefix of per-step delays (at most
    /// [`MAX_DELAY_STEPS`]); the remaining steps are eager.
    pub fn from_slice(delays: &[u8]) -> DelayVector {
        assert!(delays.len() <= MAX_DELAY_STEPS, "script longer than MAX_DELAY_STEPS");
        let mut vector = DelayVector::ZERO;
        vector.0[..delays.len()].copy_from_slice(delays);
        vector
    }

    /// The requested delay of `step`, in blocks (zero past the end).
    pub fn get(&self, step: usize) -> u64 {
        if step < MAX_DELAY_STEPS {
            self.0[step] as u64
        } else {
            0
        }
    }

    /// Sets the requested delay of `step`, in blocks.
    pub fn set(&mut self, step: usize, blocks: u8) {
        if step < MAX_DELAY_STEPS {
            self.0[step] = blocks;
        }
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; MAX_DELAY_STEPS]
    }
}

/// When within its legal window a party performs each protocol action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Timing {
    /// Act as soon as the triggering condition is observed (the default).
    Eager,
    /// Delay every emission to the last clock tick that is still within one
    /// Δ of its trigger *and* strictly before the step's annotated deadline
    /// (see [`Step::with_deadline`]). A procrastinator is still conforming —
    /// every action lands inside its legal window — which makes this axis a
    /// searchlight for off-by-one timeout semantics: the paper's schedules
    /// are exactly tight enough to accommodate last-instant actors.
    Procrastinate,
    /// Delay each step's emission by its [`DelayVector`] entry, clamped to
    /// the same last legal tick as [`Timing::Procrastinate`]. This is the
    /// sampled tier's timing axis: the space of legal delay vectors is a
    /// product too large to enumerate, so it is sampled (and hill-climbed)
    /// rather than swept. Not part of [`Strategy::all`].
    Delay(DelayVector),
}

impl Timing {
    /// Returns `true` if this profile can delay at least one emission, i.e.
    /// behaves differently from [`Timing::Eager`] on some script.
    pub fn may_delay_any(&self) -> bool {
        match self {
            Timing::Eager => false,
            Timing::Procrastinate => true,
            Timing::Delay(vector) => !vector.is_zero(),
        }
    }

    /// Returns `true` if this profile delays emissions of script step
    /// `step` in particular.
    fn delays_step(&self, step: usize) -> bool {
        match self {
            Timing::Eager => false,
            Timing::Procrastinate => true,
            Timing::Delay(vector) => vector.get(step) > 0,
        }
    }
}

/// Byzantine noise a party injects on top of its schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fault {
    /// No fault.
    None,
    /// Alongside the first real emission of script step `step`, emit one
    /// [`GarbageCall`] per emitted contract call (a wrong-preimage/garbage
    /// message every contract must reject without state damage).
    Garbage {
        /// The script step whose first emission carries the garbage volley.
        step: usize,
    },
    /// On first reaching script step `step`, go dark for a fixed outage of
    /// [`CRASH_OUTAGE_DELTAS`]·Δ blocks, then resume the script where it
    /// left off — possibly past deadlines, exercising every give-up and
    /// recovery branch.
    Crash {
        /// The script step at which the party crashes.
        step: usize,
    },
    /// Like [`Fault::Crash`], but with a variable outage length of
    /// `quarters`·Δ/4 blocks (rounded up, at least one block). The ¼Δ…4Δ
    /// range covers outages that cross no deadline boundary — where the
    /// party must recover as "merely late", not as having missed a phase —
    /// as well as outages crossing several. Sampler-only: not part of
    /// [`Strategy::all`] (a `quarters: 8` outage equals [`Fault::Crash`]).
    Outage {
        /// The script step at which the party crashes.
        step: usize,
        /// Outage length in quarter-Δ units (`1..=16` spans ¼Δ…4Δ).
        quarters: u8,
    },
}

/// Blocks of outage (in units of the protocol's Δ) a [`Fault::Crash`] party
/// stays dark before recovering. Two Δ is long enough to cross a phase
/// boundary in every bundled protocol, short enough that the party recovers
/// within the run's round budget.
pub const CRASH_OUTAGE_DELTAS: u64 = 2;

/// Blocks a [`Fault::Outage`] of `quarters` quarter-Δ lasts at synchrony
/// bound `delta` blocks: `⌈quarters·Δ/4⌉`, at least one block so even a ¼Δ
/// outage at Δ = 1 is observable.
pub fn outage_blocks(quarters: u8, delta: u64) -> u64 {
    (quarters as u64 * delta.max(1)).div_ceil(4)
}

/// The message a [`Fault::Garbage`] deviator emits: no contract downcasts
/// it, so the call is rejected with `UnsupportedMessage` — modelling the
/// wrong-preimage/garbage emissions well-formed contracts must shrug off.
#[derive(Clone, Debug)]
pub struct GarbageCall;

/// How a party behaves during a protocol run: a walk-away budget, a timing
/// profile and a fault profile, independently composable.
///
/// The historical sore-loser model was the `stop_after` axis alone; the
/// timing and fault axes enlarge the checked deviation space to deadline-edge
/// behaviour (acting at the last legal instant), garbage emissions and
/// crash-then-recover outages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Strategy {
    /// Execute at most this many steps, then walk away (a sore loser);
    /// `Some(0)` never participates, `None` follows the script to the end.
    pub stop_after: Option<usize>,
    /// The timing profile.
    pub timing: Timing,
    /// The fault profile.
    pub fault: Fault,
}

impl Strategy {
    /// The fully compliant strategy: run every step, eagerly, faultlessly.
    pub const fn compliant() -> Strategy {
        Strategy { stop_after: None, timing: Timing::Eager, fault: Fault::None }
    }

    /// A sore loser that executes the first `n` steps and then walks away.
    pub const fn stop_after(n: usize) -> Strategy {
        Strategy { stop_after: Some(n), timing: Timing::Eager, fault: Fault::None }
    }

    /// This strategy with [`Timing::Procrastinate`].
    pub const fn late(mut self) -> Strategy {
        self.timing = Timing::Procrastinate;
        self
    }

    /// This strategy with a per-step [`DelayVector`] timing profile.
    pub const fn with_delays(mut self, delays: DelayVector) -> Strategy {
        self.timing = Timing::Delay(delays);
        self
    }

    /// This strategy with the given fault profile.
    pub const fn with_fault(mut self, fault: Fault) -> Strategy {
        self.fault = fault;
        self
    }

    /// Returns `true` if this strategy *conforms* to the protocol: it never
    /// walks away and injects no faults. Timing is deliberately not part of
    /// conformance — the paper's guarantees are claimed for every party that
    /// acts within its legal windows, however lazily, so the hedged theorem
    /// is asserted for procrastinators too.
    pub fn is_compliant(&self) -> bool {
        self.stop_after.is_none() && self.fault == Fault::None
    }

    /// The number of steps the party will execute, given a script with
    /// `total` steps.
    pub fn steps_executed(&self, total: usize) -> usize {
        self.stop_after.map_or(total, |n| n.min(total))
    }

    /// The legacy stop-only space: compliant plus stopping after `0..total`
    /// steps. This is the sub-space the golden payoff matrices pin.
    pub fn stop_only(total: usize) -> Vec<Strategy> {
        let mut strategies = vec![Strategy::compliant()];
        strategies.extend((0..total).map(Strategy::stop_after));
        strategies
    }

    /// Enumerates every distinct strategy of the full
    /// `stop_after × timing × faults` product for a script with `total`
    /// steps, statically deduplicated:
    ///
    /// * stop points at or past `total` are behaviourally compliant and are
    ///   canonicalised to `stop_after: None` (never enumerated twice);
    /// * `Procrastinate` is dropped for `stop_after: Some(0)` (a party that
    ///   never acts has nothing to delay);
    /// * faults at steps the party never reaches (`step ≥` its stop budget)
    ///   can never fire and are not enumerated.
    ///
    /// The first entry is always [`Strategy::compliant`]. The size follows
    /// the closed form [`Strategy::space_size`]; sweep accounting
    /// (`runs == strategies`) is pinned against it.
    ///
    /// The sampled axes — [`Timing::Delay`] vectors and variable-length
    /// [`Fault::Outage`]s — are deliberately *not* enumerated here: their
    /// product space is too large to sweep, so the sampled tier in
    /// `modelcheck` draws from it instead.
    pub fn all(total: usize) -> Vec<Strategy> {
        let mut strategies = Vec::with_capacity(Self::space_size(total));
        for stop in std::iter::once(None).chain((0..total).map(Some)) {
            let reachable = stop.unwrap_or(total);
            let timings: &[Timing] = if reachable == 0 {
                &[Timing::Eager]
            } else {
                &[Timing::Eager, Timing::Procrastinate]
            };
            for &timing in timings {
                let base = Strategy { stop_after: stop, timing, fault: Fault::None };
                strategies.push(base);
                for step in 0..reachable {
                    strategies.push(base.with_fault(Fault::Garbage { step }));
                    strategies.push(base.with_fault(Fault::Crash { step }));
                }
            }
        }
        debug_assert_eq!(strategies.len(), Self::space_size(total));
        strategies
    }

    /// Closed form of [`Strategy::all`]'s length: `2·total² + 4·total + 1`.
    pub const fn space_size(total: usize) -> usize {
        2 * total * total + 4 * total + 1
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stop_after {
            None => write!(f, "compliant")?,
            Some(n) => write!(f, "stop-after-{n}")?,
        }
        match self.timing {
            Timing::Eager => {}
            Timing::Procrastinate => write!(f, "+late")?,
            Timing::Delay(vector) => {
                let used = vector.0.iter().rposition(|&d| d > 0).map_or(1, |last| last + 1);
                write!(f, "+delay[")?;
                for (i, delay) in vector.0[..used].iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{delay}")?;
                }
                write!(f, "]")?;
            }
        }
        match self.fault {
            Fault::None => {}
            Fault::Garbage { step } => write!(f, "+garbage@{step}")?,
            Fault::Crash { step } => write!(f, "+crash@{step}")?,
            Fault::Outage { step, quarters } => write!(f, "+outage@{step}x{quarters}q")?,
        }
        Ok(())
    }
}

/// The result of evaluating a step against the current world.
#[derive(Debug)]
pub enum StepOutcome {
    /// The step's trigger has not been observed yet; try again next round.
    Wait,
    /// Like [`StepOutcome::Wait`], with a *pure-wait guarantee*: on any
    /// world identical except for a clock strictly before the given time,
    /// re-evaluating this step yields the same outcome and the same (or
    /// idempotent) memo effects. Resume tails use the hint to fast-forward
    /// the clock over rounds in which **every** actor pure-waits and
    /// nothing was emitted — rounds whose only observable effect is the
    /// clock tick. Steps unsure of the guarantee must return plain `Wait`,
    /// which disables fast-forwarding for that round.
    WaitUntil(Time),
    /// Emit these actions and stay on the same step (partial progress).
    Progress(Vec<Action>),
    /// Emit these actions and move on to the next step.
    Complete(Vec<Action>),
}

/// Memoised hashkey constructions, keyed by the signer and the
/// collision-resistant chain tag of the base being extended (`None` for a
/// leader's initial hashkey).
///
/// Values are pure functions of their key within one deal configuration
/// (fixed seeds, keys and secrets), so carrying a memo across forks and
/// scenarios changes performance only, never outcomes.
pub type HashkeyMemo = BTreeMap<(PartyId, Option<Digest>), Hashkey>;

/// The explicit mutable state of a [`Step`].
///
/// Earlier revisions let step closures capture `mut` state (`FnMut`), which
/// made a mid-run script impossible to snapshot. All per-step state now
/// lives here, where [`ScriptedParty::fork`] can clone it: `done` tracks
/// per-leader sub-tasks a multi-leader phase has finished; `hashkeys`
/// memoises signature constructions (a cache, not semantic state — entries
/// may be shared across runs of the same configuration).
#[derive(Clone, Debug, Default)]
pub struct StepMemo {
    /// Parties (typically leaders) whose sub-task this step has completed.
    pub done: BTreeSet<PartyId>,
    /// Memoised hashkey constructions (see [`HashkeyMemo`]).
    pub hashkeys: HashkeyMemo,
}

/// The shared decision logic of a [`Step`].
type StepLogic = Arc<dyn Fn(&mut StepMemo, &World) -> StepOutcome + Send + Sync>;

/// One step of a party's protocol script.
///
/// The step's decision logic is immutable and shared (`Arc`) between the
/// clones a deviation tree forks; its mutable state is an explicit
/// [`StepMemo`] that clones with the step.
#[derive(Clone)]
pub struct Step {
    /// Human-readable name used in traces and reports.
    pub name: &'static str,
    memo: StepMemo,
    logic: StepLogic,
    /// The last-legal-emission deadline of this step, if it has one: the
    /// contracts this step calls reject its emissions from this height on.
    ///
    /// [`Timing::Procrastinate`] parties delay each emission to the last
    /// tick strictly before `min(trigger + Δ, deadline)`. Steps without a
    /// deadline (settlement/recovery steps, whose actions have no late
    /// bound) are never delayed. Like the [`StepOutcome::WaitUntil`]
    /// contract, the annotation carries a stability obligation: on a frozen
    /// world, an emission this step is ready to make must stay available
    /// until the deadline.
    deadline: Option<Time>,
}

impl Step {
    /// Creates a stateless step from a name and closure.
    pub fn new(
        name: &'static str,
        run: impl Fn(&World) -> StepOutcome + Send + Sync + 'static,
    ) -> Self {
        Step {
            name,
            memo: StepMemo::default(),
            logic: Arc::new(move |_, world| run(world)),
            deadline: None,
        }
    }

    /// Creates a step whose closure reads and writes an explicit
    /// [`StepMemo`].
    pub fn stateful(
        name: &'static str,
        run: impl Fn(&mut StepMemo, &World) -> StepOutcome + Send + Sync + 'static,
    ) -> Self {
        Step { name, memo: StepMemo::default(), logic: Arc::new(run), deadline: None }
    }

    /// Annotates the step with its last-legal-emission deadline (see
    /// [`Step::deadline`] on the field for the exact contract).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The step's annotated last-legal-emission deadline, if any. Static
    /// schedule checks read this to verify per-party deadline ladders.
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Step({})", self.name)
    }
}

/// An [`Actor`] that follows a script of [`Step`]s under a [`Strategy`].
#[derive(Clone)]
pub struct ScriptedParty {
    party: PartyId,
    steps: Vec<Step>,
    cursor: usize,
    completed: usize,
    allowed: usize,
    timing: Timing,
    fault: Fault,
    /// The protocol's synchrony bound Δ in blocks (see
    /// [`ScriptedParty::with_delta`]); bounds procrastination holds and
    /// sizes crash outages.
    delta: u64,
    /// An armed procrastination hold: the step cursor it belongs to and the
    /// tick at which the delayed emission fires.
    hold: Option<(usize, Time)>,
    /// Set once a [`Fault::Crash`] outage has started; the party is silent
    /// strictly before this height and recovered from it on.
    crash_until: Option<Time>,
    /// Whether the one-shot [`Fault::Garbage`] volley has fired.
    garbage_done: bool,
    /// The wake hint of the most recent evaluation: `Some(t)` after a
    /// [`StepOutcome::WaitUntil(t)`], `Some(Time::MAX)` while the party is
    /// done (it will never act again), `None` otherwise.
    wake: Option<Time>,
}

impl ScriptedParty {
    /// Creates a scripted party executing `steps` under `strategy`, with a
    /// default Δ of one block (see [`ScriptedParty::with_delta`]).
    pub fn new(party: PartyId, steps: Vec<Step>, strategy: Strategy) -> Self {
        let allowed = strategy.steps_executed(steps.len());
        ScriptedParty {
            party,
            steps,
            cursor: 0,
            completed: 0,
            allowed,
            timing: strategy.timing,
            fault: strategy.fault,
            delta: 1,
            hold: None,
            crash_until: None,
            garbage_done: false,
            wake: None,
        }
    }

    /// Sets the protocol's synchrony bound Δ in blocks. Procrastination
    /// delays emissions to the last tick within Δ of their trigger, and
    /// crash outages last [`CRASH_OUTAGE_DELTAS`]·Δ — both are no-ops for
    /// strategies without those axes, so eager faultless parties behave
    /// identically for every Δ.
    #[must_use]
    pub fn with_delta(mut self, delta_blocks: u64) -> Self {
        self.delta = delta_blocks.max(1);
        self
    }

    /// The number of steps completed so far.
    pub fn completed_steps(&self) -> usize {
        self.completed
    }

    /// The total number of steps in the script.
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }

    /// The party this script belongs to.
    pub fn party(&self) -> PartyId {
        self.party
    }

    /// The synchrony bound Δ (in blocks) the script was built with.
    pub fn delta_blocks(&self) -> u64 {
        self.delta
    }

    /// The steps' `(name, annotated deadline)` metadata, in script order.
    /// Static schedule checks consume this without executing any step.
    pub fn step_deadlines(&self) -> Vec<(&'static str, Option<Time>)> {
        self.steps.iter().map(|s| (s.name, s.deadline())).collect()
    }

    /// Clones this party's mid-run state under a (possibly different)
    /// strategy budget.
    ///
    /// Step logic is shared; step memos and the script cursor are cloned, so
    /// the fork continues from exactly this party's current position. Used
    /// by [`DeviationTree::resume`] to turn a recorded compliant party
    /// into the deviating (or still-compliant) party of a tail run.
    pub fn fork(&self, strategy: Strategy) -> ScriptedParty {
        let allowed = strategy.steps_executed(self.steps.len());
        ScriptedParty {
            party: self.party,
            steps: self.steps.clone(),
            cursor: self.cursor,
            completed: self.completed,
            allowed,
            timing: strategy.timing,
            fault: strategy.fault,
            delta: self.delta,
            hold: None,
            crash_until: None,
            garbage_done: false,
            wake: None,
        }
    }

    /// The wake hint of this party's most recent evaluation (see
    /// [`ScriptedParty::wake`]); the clock cannot change its behaviour
    /// strictly before the returned time.
    fn wake_hint(&self) -> Option<Time> {
        if self.done() {
            Some(Time::MAX)
        } else {
            self.wake
        }
    }

    /// Merges the hashkey memos another fork of this party accumulated.
    ///
    /// Memo values are pure functions of their keys, so absorbing a sibling
    /// fork's entries only saves future recomputation; `done` state is *not*
    /// merged (it is semantic, per-run state).
    fn absorb_hashkey_memos(&mut self, other: &ScriptedParty) {
        for (mine, theirs) in self.steps.iter_mut().zip(&other.steps) {
            for (key, value) in &theirs.memo.hashkeys {
                mine.memo.hashkeys.entry(*key).or_insert_with(|| value.clone());
            }
        }
    }
}

impl fmt::Debug for ScriptedParty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedParty")
            .field("party", &self.party)
            .field("cursor", &self.cursor)
            .field("steps", &self.steps.len())
            .field("allowed", &self.allowed)
            .finish()
    }
}

/// The last clock tick strictly before `min(now + Δ, deadline)`, if any tick
/// strictly after `now` qualifies. Ticks are spaced by the world's block
/// step, anchored at `now` (the scheduler advances the clock uniformly, so
/// every observable instant is reachable this way).
fn procrastinate_hold(now: Time, delta: u64, deadline: Time, block_step: u64) -> Option<Time> {
    let target = deadline.min(now.plus(delta.max(1)));
    if target <= now {
        return None;
    }
    let block_step = block_step.max(1);
    let span = (target.height() - 1).saturating_sub(now.height());
    let hold = Time(now.height() + (span / block_step) * block_step);
    (hold > now).then_some(hold)
}

/// The hold tick for `timing`'s emission of script step `step` triggered at
/// `now`, if the emission is delayed at all. [`Timing::Procrastinate`] holds
/// to the last legal tick; [`Timing::Delay`] holds to `now` plus the step's
/// requested blocks, clamped to that same last legal tick — so every hold is
/// within Δ of its trigger and strictly before `deadline` by construction.
fn emission_hold(
    timing: Timing,
    step: usize,
    now: Time,
    delta: u64,
    deadline: Time,
    block_step: u64,
) -> Option<Time> {
    let last = procrastinate_hold(now, delta, deadline, block_step)?;
    match timing {
        Timing::Eager => None,
        Timing::Procrastinate => Some(last),
        Timing::Delay(vector) => {
            let blocks = vector.get(step);
            if blocks == 0 {
                return None;
            }
            Some(last.min(now.plus(blocks * block_step.max(1))))
        }
    }
}

/// The tick at which a party with the given `timing` actually emits a step
/// that became ready at `now` under the annotated `deadline`.
///
/// Exposed for the sampled tier's legality property tests: whenever the
/// result differs from `now`, it is within Δ of `now`, strictly before
/// `deadline`, and on the scheduler's tick grid.
pub fn delayed_emission_tick(
    timing: Timing,
    step: usize,
    now: Time,
    delta: u64,
    deadline: Time,
    block_step: u64,
) -> Time {
    emission_hold(timing, step, now, delta, deadline, block_step).unwrap_or(now)
}

impl ScriptedParty {
    /// Stages `emitted` into `actions`, firing the one-shot garbage volley
    /// first when this is the [`Fault::Garbage`] step's first emission.
    fn emit(&mut self, emitted: &mut Vec<Action>, actions: &mut Vec<Action>) {
        if emitted.is_empty() {
            return;
        }
        // An expired hold is consumed by the emission it delayed; the next
        // volley of a multi-emission step arms its own hold.
        self.hold = None;
        if let Fault::Garbage { step } = self.fault {
            if !self.garbage_done && self.cursor == step {
                self.garbage_done = true;
                for action in emitted.iter() {
                    if let Action::Call { addr, .. } = action {
                        actions.push(Action::call(*addr, GarbageCall, "garbage emission"));
                    }
                }
            }
        }
        actions.append(emitted);
    }
}

impl Actor for ScriptedParty {
    fn party(&self) -> PartyId {
        self.party
    }

    fn step(&mut self, world: &World, actions: &mut Vec<Action>) {
        if self.cursor >= self.steps.len() || self.completed >= self.allowed {
            return;
        }
        let now = world.now();
        // Crash-recover: on first reaching the crash step, go dark for the
        // fault's outage, then resume the script where it left off.
        if self.crash_until.is_none() {
            let outage = match self.fault {
                Fault::Crash { step } if self.cursor == step => {
                    Some(CRASH_OUTAGE_DELTAS * self.delta)
                }
                Fault::Outage { step, quarters } if self.cursor == step => {
                    Some(outage_blocks(quarters, self.delta))
                }
                _ => None,
            };
            if let Some(blocks) = outage {
                self.crash_until = Some(now.plus(blocks));
            }
        }
        if let Some(until) = self.crash_until {
            if now.is_before(until) {
                // Deterministically silent whatever the world does: a sound
                // pure-wait hint.
                self.wake = Some(until);
                return;
            }
        }
        // An armed procrastination hold keeps the party silent (without
        // re-evaluating the step) until the hold tick.
        if let Some((held_cursor, hold)) = self.hold {
            if held_cursor == self.cursor && now.is_before(hold) {
                self.wake = Some(hold);
                return;
            }
        }
        let deadline = self.steps[self.cursor].deadline;
        // A delaying party peeks at the step to learn whether it is ready to
        // emit; a suppressed peek must leave no trace, so the memo is saved
        // and restored around it.
        let may_delay = self.timing.delays_step(self.cursor)
            && deadline.is_some()
            && self.hold.is_none_or(|(held_cursor, _)| held_cursor != self.cursor);
        let saved_memo = may_delay.then(|| self.steps[self.cursor].memo.clone());
        let Step { memo, logic, .. } = &mut self.steps[self.cursor];
        let outcome = logic(memo, world);
        if let Some(saved) = saved_memo {
            let emits = matches!(
                &outcome,
                StepOutcome::Progress(a) | StepOutcome::Complete(a) if !a.is_empty()
            );
            if emits {
                let deadline = deadline.expect("may_delay requires a deadline");
                if let Some(hold) = emission_hold(
                    self.timing,
                    self.cursor,
                    now,
                    self.delta,
                    deadline,
                    world.delta_blocks(),
                ) {
                    self.steps[self.cursor].memo = saved;
                    self.hold = Some((self.cursor, hold));
                    self.wake = Some(hold);
                    return;
                }
            }
        }
        match outcome {
            StepOutcome::Wait => {
                self.hold = None;
                self.wake = None;
            }
            StepOutcome::WaitUntil(time) => {
                self.hold = None;
                self.wake = Some(time);
            }
            StepOutcome::Progress(mut emitted) => {
                self.wake = None;
                self.emit(&mut emitted, actions);
            }
            StepOutcome::Complete(mut emitted) => {
                self.wake = None;
                self.emit(&mut emitted, actions);
                self.cursor += 1;
                self.completed += 1;
            }
        }
    }

    fn done(&self) -> bool {
        self.cursor >= self.steps.len() || self.completed >= self.allowed
    }
}

/// Runs a set of scripted parties to quiescence.
///
/// This is a thin wrapper over [`chainsim::Scheduler`] with a generous round
/// budget: protocols define absolute deadlines, so `max_rounds` only needs
/// to exceed the final deadline.
pub fn run_parties(
    world: &mut World,
    mut parties: Vec<ScriptedParty>,
    max_rounds: u64,
) -> chainsim::RunReport {
    chainsim::Scheduler::new(max_rounds).run_actors(world, &mut parties)
}

// ---------------------------------------------------------------------------
// Deviation-tree recording and resumption.
// ---------------------------------------------------------------------------

/// A recorded checkpoint of the compliant run at the start of one round.
struct PrefixCheckpoint {
    /// The world state at the start of that round.
    world: WorldSnapshot,
    /// Every party's script state at the start of that round.
    parties: Vec<ScriptedParty>,
    /// Failed actions accumulated over the rounds before this checkpoint.
    failures: usize,
}

/// What the compliant run observed about one party, for divergence
/// computation.
#[derive(Clone, Debug, Default)]
struct PartyRecord {
    /// Round of each step completion (`completions[c]` = round of the
    /// `c+1`-th completion).
    completions: Vec<u64>,
    /// `(round, completed-count at round start)` for every round in which
    /// the party emitted at least one action.
    emissions: Vec<(u64, usize)>,
    /// First round at whose start the party reported `done()`, if any.
    done_round: Option<u64>,
}

/// Totals of a run resumed from a [`DeviationTree`]: prefix rounds and
/// failures plus the live tail's. Identical to what a from-scratch
/// [`run_parties`] of the same profile reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumedRun {
    /// Synchronous rounds executed (prefix + tail).
    pub rounds: usize,
    /// Rejected actions (prefix + tail).
    pub failed_actions: usize,
    /// The divergence round this resume forked from. Two zero-tail resumes
    /// with the same key end in bit-identical final states, which protocol
    /// layers exploit to cache derived outcomes per checkpoint.
    pub state_key: u64,
    /// `true` when the resume executed zero tail rounds: the final state
    /// is exactly the forked checkpoint, a pure function of `state_key`.
    pub zero_tail: bool,
}

/// Advances the clock over the pure-wait rounds ahead: if every live actor
/// guarantees pure waiting until some wake time, skips (and returns the
/// count of) the rounds that start strictly before the earliest wake,
/// bounded by `budget`. Returns `None` (and leaves the world untouched)
/// when any actor withholds the guarantee or no round is skippable.
fn pure_wait_rounds(actors: &[ScriptedParty], world: &mut World, budget: u64) -> Option<u64> {
    let earliest_wake = actors
        .iter()
        .try_fold(Time::MAX, |wake, actor| actor.wake_hint().map(|hint| wake.min(hint)))?;
    let delta = world.delta_blocks().max(1);
    let now = world.now();
    if earliest_wake <= now {
        return None;
    }
    // Rounds starting strictly before the wake time are pure waits.
    let skippable = (earliest_wake - now).saturating_sub(1) / delta;
    let skip = skippable.min(budget);
    if skip == 0 {
        return None;
    }
    world.advance_blocks(skip * delta);
    Some(skip)
}

/// The recorded all-compliant execution of one protocol configuration,
/// checkpointed at the start of every *executed* round (compressed
/// pure-wait stretches borrow the checkpoint that precedes them).
///
/// A `StopAfter(k)` deviator behaves identically to its compliant self
/// until it has completed `k` steps; after that it emits nothing and
/// reports `done()`. The **world** trajectory of a deviation profile
/// therefore diverges from the compliant one only at the earliest of:
///
/// * the first round in which some deviator, already past its budget,
///   would have emitted an action (the action is withheld), or
/// * the first round at which *every* party of the profile is done —
///   deviators are done earlier than their compliant selves, so the
///   scheduler may stop the run while the compliant one kept idling.
///
/// [`DeviationTree::resume`] restores the snapshot at that round, forks
/// every recorded party under its profile strategy, and drives the tail
/// with the shared round primitive ([`chainsim::run_round`]) — making the
/// resumed run bit-for-bit identical to a from-scratch execution (pinned by
/// the `replay-oracle` differential tests in `modelcheck`). Profiles whose
/// stop-points are never observably hit resume at the terminal checkpoint
/// and execute zero tail rounds; protocol layers cache their derived
/// outcomes per checkpoint via [`ResumedRun::state_key`].
pub struct DeviationTree {
    /// Checkpoints keyed by the round whose start they capture; the first
    /// is round 0, the last the terminal state. Rounds inside a compressed
    /// pure-wait stretch have no entry of their own: their state is the
    /// preceding checkpoint plus clock ticks (see
    /// [`DeviationTree::record`]).
    checkpoints: BTreeMap<u64, PrefixCheckpoint>,
    records: BTreeMap<PartyId, PartyRecord>,
    /// Rounds the compliant run executed.
    rounds: u64,
    /// The compliant run's round budget; resumed tails inherit the rest.
    max_rounds: u64,
}

impl fmt::Debug for DeviationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviationTree")
            .field("checkpoints", &self.checkpoints.len())
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl DeviationTree {
    /// Executes and records the all-compliant run of `parties` (which must
    /// have been built with [`Strategy::compliant()`] budgets) inside
    /// `world`, checkpointing the start of every round.
    ///
    /// On return, `world` holds the compliant run's final state.
    pub fn record(world: &mut World, parties: Vec<ScriptedParty>, max_rounds: u64) -> Self {
        let mut parties = parties;
        let mut records: BTreeMap<PartyId, PartyRecord> =
            parties.iter().map(|p| (p.party, PartyRecord::default())).collect();
        let mut checkpoints: BTreeMap<u64, PrefixCheckpoint> = BTreeMap::new();
        let mut buffers = RoundBuffers::default();
        let mut failures = 0usize;
        let mut round = 0u64;
        loop {
            for party in &parties {
                let record = records.get_mut(&party.party).expect("records has every party");
                if party.done() && record.done_round.is_none() {
                    record.done_round = Some(round);
                }
            }
            checkpoints.entry(round).or_insert_with(|| PrefixCheckpoint {
                world: world.snapshot(),
                parties: parties.clone(),
                failures,
            });
            if round >= max_rounds || parties.iter().all(|p| p.done()) {
                break;
            }
            let before: Vec<usize> = parties.iter().map(|p| p.completed).collect();
            let trace = run_round_with(world, &mut parties, &mut buffers);
            failures += trace.outcomes.iter().filter(|o| !o.is_ok()).count();
            let mut any_completion = false;
            for (party, was_completed) in parties.iter().zip(before) {
                let record = records.get_mut(&party.party).expect("records has every party");
                if party.completed > was_completed {
                    record.completions.push(round);
                    any_completion = true;
                }
                if trace.outcomes.iter().any(|o| o.party == party.party) {
                    record.emissions.push((round, was_completed));
                }
            }
            round += 1;
            // Compress pure-wait stretches: when the round changed nothing
            // but the clock (no actions, no step completions) and every
            // live actor guarantees pure waiting, the coming rounds are all
            // `this checkpoint + k clock ticks` — skip executing (and
            // snapshotting) them. `restore_at` reconstructs any of them
            // exactly by advancing the clock from the last checkpoint.
            if trace.outcomes.is_empty() && !any_completion && !parties.iter().all(|p| p.done()) {
                if let Some(skip) = pure_wait_rounds(&parties, world, max_rounds - round) {
                    round += skip;
                }
            }
        }
        DeviationTree { checkpoints, records, rounds: round, max_rounds }
    }

    /// Rounds the compliant run executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The number of recorded checkpoints: one per *executed* round of the
    /// compliant run (compressed pure-wait stretches share the checkpoint
    /// that precedes them).
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// The first round at which the profile's trajectory can differ from
    /// the compliant one — the profile's earliest *non-compliant action*,
    /// not merely its first withheld emission — clamped to the terminal
    /// round, plus whether the resumed run would execute zero tail rounds
    /// there (see [`ResumedRun::zero_tail`]).
    ///
    /// Per party, the earliest possible effect of each deviation axis:
    ///
    /// * `stop_after(k)` — the first recorded emission at or past the
    ///   budget (the withheld action), plus an earlier all-done round;
    /// * `Procrastinate` / non-zero `Delay` vectors — the party's first
    ///   recorded emission (the delaying party may hold exactly that
    ///   action; before it, lazy and eager parties are both silent);
    /// * `Garbage { step }` — the step's first recorded emission (the
    ///   garbage volley rides on it; the party's own progress is
    ///   unchanged);
    /// * `Crash { step }` / `Outage { step, .. }` — the round the party
    ///   first reaches the crash step (the outage starts there).
    ///
    /// Procrastination and crashes alter the party's *later* behaviour in
    /// ways the compliant record cannot predict, so they also disable the
    /// all-done shortcut for the profile (conservative: the tail is simply
    /// executed).
    fn divergence_of(&self, strategy_of: &dyn Fn(PartyId) -> Strategy) -> (u64, bool) {
        let mut divergence = self.rounds;
        // The deviating run ends once every party is done; deviators are
        // done earlier than their compliant selves, so the run may stop at
        // a round the compliant run idled through.
        let mut all_done_from = 0u64;
        let mut every_party_finishes = true;
        for (party, record) in &self.records {
            let strategy = strategy_of(*party);
            // Axes whose downstream effect the compliant record cannot
            // predict: resume from their first possible effect and skip the
            // all-done shortcut.
            let mut unpredictable = false;
            if strategy.timing.may_delay_any() {
                if let Some(&(round, _)) = record.emissions.first() {
                    divergence = divergence.min(round);
                    unpredictable = true;
                }
            }
            match strategy.fault {
                Fault::None => {}
                Fault::Garbage { step } => {
                    if let Some(&(round, _)) =
                        record.emissions.iter().find(|(_, completed)| *completed == step)
                    {
                        divergence = divergence.min(round);
                    }
                }
                Fault::Crash { step } | Fault::Outage { step, .. } => {
                    let reached = if step == 0 {
                        Some(0)
                    } else if step <= record.completions.len() {
                        Some(record.completions[step - 1] + 1)
                    } else {
                        // The compliant run never completed the step before
                        // the crash point: the outage never starts.
                        None
                    };
                    if let Some(round) = reached {
                        divergence = divergence.min(round);
                        unpredictable = true;
                    }
                }
            }
            let done_from = match strategy.stop_after {
                None => record.done_round,
                Some(k) => {
                    // First withheld emission: the earliest round where the
                    // compliant party, with `k` or more steps already
                    // completed, emitted an action the deviator would not.
                    if let Some(&(round, _)) =
                        record.emissions.iter().find(|(_, completed)| *completed >= k)
                    {
                        divergence = divergence.min(round);
                    }
                    if k == 0 {
                        Some(0)
                    } else if k <= record.completions.len() {
                        Some(record.completions[k - 1] + 1)
                    } else {
                        // Budget above everything the compliant run ever
                        // completed: the deviator never hits it.
                        record.done_round
                    }
                }
            };
            if unpredictable {
                every_party_finishes = false;
            } else {
                match done_from {
                    Some(round) => all_done_from = all_done_from.max(round),
                    None => every_party_finishes = false,
                }
            }
        }
        if every_party_finishes {
            divergence = divergence.min(all_done_from);
        }
        let zero_tail =
            (every_party_finishes && divergence == all_done_from) || divergence >= self.max_rounds;
        (divergence, zero_tail)
    }

    /// Resumes the profile described by `strategy_of` from its divergence
    /// checkpoint: restores the world, forks every recorded party under its
    /// profile strategy, and drives the tail with the shared round
    /// primitive.
    ///
    /// The resulting world state, rounds and failure counts are identical
    /// to a from-scratch run of the same profile. Hashkey memos computed by
    /// the tail are absorbed back into the checkpoint (a pure cache), so
    /// later scenarios resuming from the same checkpoint skip re-signing.
    pub fn resume(
        &mut self,
        world: &mut World,
        strategy_of: &dyn Fn(PartyId) -> Strategy,
    ) -> ResumedRun {
        let (divergence, zero_tail) = self.divergence_of(strategy_of);
        let (&checkpoint_round, checkpoint) = self
            .checkpoints
            .range(..=divergence)
            .next_back()
            .expect("round 0 is always checkpointed");
        world.restore(&checkpoint.world);
        if divergence > checkpoint_round {
            // The divergence round lies inside a compressed pure-wait
            // stretch: its state is the checkpoint plus clock ticks.
            world.advance_blocks((divergence - checkpoint_round) * world.delta_blocks());
        }
        let mut actors: Vec<ScriptedParty> =
            checkpoint.parties.iter().map(|p| p.fork(strategy_of(p.party))).collect();
        let mut failures = checkpoint.failures;
        let mut buffers = RoundBuffers::default();
        let mut rounds = divergence;
        while rounds < self.max_rounds {
            if actors.iter().all(|a| a.done()) {
                break;
            }
            let trace = run_round_with(world, &mut actors, &mut buffers);
            failures += trace.outcomes.iter().filter(|o| !o.is_ok()).count();
            rounds += 1;
            // Fast-forward: when the round emitted nothing and every live
            // actor gave a pure-wait hint, the coming rounds change only
            // the clock — jump it to the earliest wake time. The skipped
            // rounds still count (a from-scratch run executes them as
            // empty rounds), so reports stay byte-identical.
            if trace.outcomes.is_empty() && !actors.iter().all(|a| a.done()) {
                if let Some(skip) =
                    pure_wait_rounds(&actors, world, self.max_rounds.saturating_sub(rounds))
                {
                    rounds += skip;
                }
            }
        }
        let checkpoint = self
            .checkpoints
            .get_mut(&checkpoint_round)
            .expect("checkpoint existence checked above");
        for (stored, ran) in checkpoint.parties.iter_mut().zip(&actors) {
            stored.absorb_hashkey_memos(ran);
        }
        ResumedRun {
            rounds: rounds as usize,
            failed_actions: failures,
            state_key: divergence,
            zero_tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_step_budgets() {
        assert_eq!(Strategy::compliant().steps_executed(5), 5);
        assert_eq!(Strategy::stop_after(2).steps_executed(5), 2);
        assert_eq!(Strategy::stop_after(9).steps_executed(5), 5);
        assert!(Strategy::compliant().is_compliant());
        assert!(!Strategy::stop_after(0).is_compliant());
        assert_eq!(Strategy::stop_only(3).len(), 4);
        assert_eq!(Strategy::compliant().to_string(), "compliant");
        assert_eq!(Strategy::stop_after(1).to_string(), "stop-after-1");
    }

    #[test]
    fn full_strategy_space_matches_its_closed_form_and_dedupes() {
        for total in 0..=6usize {
            let space = Strategy::all(total);
            assert_eq!(space.len(), Strategy::space_size(total), "total={total}");
            assert_eq!(space[0], Strategy::compliant());
            // Statically distinct: the product space never enumerates the
            // same strategy twice (no double-counted compliant outcomes).
            let unique: BTreeSet<Strategy> = space.iter().copied().collect();
            assert_eq!(unique.len(), space.len(), "duplicates at total={total}");
            for strategy in &space {
                // Dedup rules: no stop point ≥ total, no unreachable fault,
                // no procrastination for a party that never acts.
                if let Some(k) = strategy.stop_after {
                    assert!(k < total);
                }
                let reachable = strategy.stop_after.unwrap_or(total);
                match strategy.fault {
                    Fault::None => {}
                    Fault::Garbage { step } | Fault::Crash { step } => assert!(step < reachable),
                    Fault::Outage { .. } => panic!("variable outages are sampler-only"),
                }
                if reachable == 0 {
                    assert_eq!(strategy.timing, Timing::Eager);
                }
            }
        }
    }

    #[test]
    fn strategy_display_names_every_axis() {
        assert_eq!(Strategy::compliant().late().to_string(), "compliant+late");
        assert_eq!(
            Strategy::stop_after(2).late().with_fault(Fault::Garbage { step: 1 }).to_string(),
            "stop-after-2+late+garbage@1"
        );
        assert_eq!(
            Strategy::compliant().with_fault(Fault::Crash { step: 0 }).to_string(),
            "compliant+crash@0"
        );
        assert!(Strategy::compliant().late().is_compliant(), "lazy but conforming");
        assert!(!Strategy::compliant().with_fault(Fault::Garbage { step: 0 }).is_compliant());
    }

    #[test]
    fn procrastinate_hold_lands_on_the_last_legal_tick() {
        use super::procrastinate_hold;
        // Within Δ of the trigger, bounded by the deadline.
        assert_eq!(procrastinate_hold(Time(0), 2, Time(2), 1), Some(Time(1)));
        assert_eq!(procrastinate_hold(Time(0), 2, Time(10), 1), Some(Time(1)));
        assert_eq!(procrastinate_hold(Time(8), 2, Time(10), 1), Some(Time(9)));
        // Already at the last tick: emit now.
        assert_eq!(procrastinate_hold(Time(1), 1, Time(2), 1), None);
        // Deadline already reached: emit now (the step's give-up handles it).
        assert_eq!(procrastinate_hold(Time(5), 2, Time(5), 1), None);
        // Coarser world ticks stay on the tick grid.
        assert_eq!(procrastinate_hold(Time(0), 6, Time(6), 2), Some(Time(4)));
    }

    #[test]
    fn procrastinating_party_delays_to_the_last_tick_before_its_deadline() {
        let mut world = World::new(1);
        world.add_chain("a");
        let steps = vec![Step::new("emit", |_| {
            StepOutcome::Complete(vec![Action::publish(
                chainsim::ChainId(0),
                "x",
                Box::new(NoopContract),
            )])
        })
        .with_deadline(Time(4))];
        let mut party =
            ScriptedParty::new(PartyId(0), steps, Strategy::compliant().late()).with_delta(4);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert!(actions.is_empty(), "emission suppressed at t=0");
        assert_eq!(party.wake, Some(Time(3)), "held to the last tick before the deadline");
        world.advance_blocks(3);
        party.step(&world, &mut actions);
        assert_eq!(actions.len(), 1, "delayed emission fires at t=3");
        assert!(party.done());
    }

    #[test]
    fn crashed_party_goes_dark_then_recovers() {
        let mut world = World::new(1);
        world.add_chain("a");
        let steps = vec![
            Step::new("one", |_| StepOutcome::Complete(vec![])),
            Step::new("two", |_| StepOutcome::Complete(vec![])),
        ];
        let strategy = Strategy::compliant().with_fault(Fault::Crash { step: 1 });
        let mut party = ScriptedParty::new(PartyId(0), steps, strategy).with_delta(2);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 1, "pre-crash step executes normally");
        // Reaching step 1 starts a 2Δ = 4 block outage.
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 1, "dark during the outage");
        assert_eq!(party.wake, Some(Time(4)));
        world.advance_blocks(4);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2, "recovered and resumed");
    }

    #[test]
    fn outage_blocks_rounds_quarter_deltas_up() {
        // Δ = 2: ¼Δ…4Δ in quarter units.
        assert_eq!(outage_blocks(1, 2), 1, "¼Δ rounds up to one block");
        assert_eq!(outage_blocks(2, 2), 1, "½Δ of Δ=2 is one block");
        assert_eq!(outage_blocks(4, 2), 2, "Δ exactly");
        assert_eq!(outage_blocks(8, 2), 4, "2Δ matches Fault::Crash");
        assert_eq!(outage_blocks(16, 2), 8, "4Δ");
        // Δ = 1: every sub-Δ outage still lasts at least one block.
        assert_eq!(outage_blocks(1, 1), 1);
        assert_eq!(outage_blocks(16, 1), 4);
        // Equivalence with the fixed crash outage at quarters = 8.
        for delta in 1..=8u64 {
            assert_eq!(outage_blocks(8, delta), CRASH_OUTAGE_DELTAS * delta);
        }
    }

    #[test]
    fn variable_outage_party_goes_dark_for_its_quarters() {
        let mut world = World::new(1);
        world.add_chain("a");
        let steps = vec![
            Step::new("one", |_| StepOutcome::Complete(vec![])),
            Step::new("two", |_| StepOutcome::Complete(vec![])),
        ];
        // ½Δ at Δ = 2: a single block of darkness.
        let strategy = Strategy::compliant().with_fault(Fault::Outage { step: 1, quarters: 2 });
        let mut party = ScriptedParty::new(PartyId(0), steps, strategy).with_delta(2);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 1, "pre-outage step executes normally");
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 1, "dark during the sub-Δ outage");
        assert_eq!(party.wake, Some(Time(1)));
        world.advance_blocks(1);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2, "recovered after half a Δ");
    }

    #[test]
    fn delay_vector_holds_each_step_by_its_entry() {
        use super::emission_hold;
        let delays = Timing::Delay(DelayVector::from_slice(&[1, 0, 3]));
        // Step 0: one block past the trigger, inside the legal window.
        assert_eq!(emission_hold(delays, 0, Time(0), 4, Time(10), 1), Some(Time(1)));
        // Step 1: zero delay is eager.
        assert_eq!(emission_hold(delays, 1, Time(0), 4, Time(10), 1), None);
        // Step 2: clamped to the procrastinate hold when the request
        // overshoots the window (Δ = 2 ⇒ last legal tick is t+1).
        assert_eq!(emission_hold(delays, 2, Time(0), 2, Time(10), 1), Some(Time(1)));
        // Steps past the vector's end are eager.
        assert_eq!(emission_hold(delays, MAX_DELAY_STEPS, Time(0), 4, Time(10), 1), None);
        // The public emission tick defaults to `now` when not delayed.
        assert_eq!(delayed_emission_tick(delays, 1, Time(7), 4, Time(10), 1), Time(7));
        assert_eq!(delayed_emission_tick(delays, 0, Time(7), 4, Time(10), 1), Time(8));
        // Maximal entries reproduce Procrastinate exactly.
        let maxed = Timing::Delay(DelayVector([u8::MAX; MAX_DELAY_STEPS]));
        for (now, delta, deadline) in [(0u64, 2u64, 2u64), (0, 2, 10), (8, 2, 10), (5, 2, 5)] {
            assert_eq!(
                emission_hold(maxed, 0, Time(now), delta, Time(deadline), 1),
                emission_hold(Timing::Procrastinate, 0, Time(now), delta, Time(deadline), 1),
            );
        }
    }

    #[test]
    fn delay_vector_party_matches_the_procrastinator_at_full_delay() {
        let make_party = |timing: Timing| {
            let steps = vec![Step::new("emit", |_| {
                StepOutcome::Complete(vec![Action::publish(
                    chainsim::ChainId(0),
                    "x",
                    Box::new(NoopContract),
                )])
            })
            .with_deadline(Time(4))];
            let strategy = Strategy { stop_after: None, timing, fault: Fault::None };
            ScriptedParty::new(PartyId(0), steps, strategy).with_delta(4)
        };
        let mut world = World::new(1);
        world.add_chain("a");
        let mut late = make_party(Timing::Procrastinate);
        let mut maxed = make_party(Timing::Delay(DelayVector::from_slice(&[u8::MAX])));
        let mut modest = make_party(Timing::Delay(DelayVector::from_slice(&[2])));
        let mut actions = Vec::new();
        for party in [&mut late, &mut maxed, &mut modest] {
            party.step(&world, &mut actions);
        }
        assert!(actions.is_empty(), "all emissions suppressed at t=0");
        assert_eq!(late.wake, Some(Time(3)));
        assert_eq!(maxed.wake, Some(Time(3)), "oversized delay clamps to the last tick");
        assert_eq!(modest.wake, Some(Time(2)), "a 2-block delay lands mid-window");
        world.advance_blocks(2);
        modest.step(&world, &mut actions);
        assert_eq!(actions.len(), 1, "the mid-window emission fires at t=2");
        assert!(modest.done());
    }

    #[test]
    fn garbage_fault_rides_on_the_faulted_steps_first_emission() {
        let world = {
            let mut world = World::new(1);
            world.add_chain("a");
            world
        };
        let addr = chainsim::ContractAddr::new(chainsim::ChainId(0), chainsim::ContractId(7));
        let steps = vec![Step::new("call", move |_| {
            StepOutcome::Complete(vec![Action::call(addr, Ping, "real call")])
        })];
        let strategy = Strategy::compliant().with_fault(Fault::Garbage { step: 0 });
        let mut party = ScriptedParty::new(PartyId(0), steps, strategy);
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert_eq!(actions.len(), 2, "garbage volley precedes the real call");
        match &actions[0] {
            Action::Call { msg, .. } => {
                assert!(msg.as_ref().as_any().downcast_ref::<GarbageCall>().is_some());
            }
            other => panic!("expected a garbage call, got {other:?}"),
        }
        match &actions[1] {
            Action::Call { msg, .. } => {
                assert!(msg.as_ref().as_any().downcast_ref::<Ping>().is_some());
            }
            other => panic!("expected the real call, got {other:?}"),
        }
    }

    /// Minimal contract/message fixtures for the fault tests.
    #[derive(Clone, Debug)]
    struct Ping;

    #[derive(Clone, Debug)]
    struct NoopContract;

    impl chainsim::Contract for NoopContract {
        fn type_name(&self) -> &'static str {
            "Noop"
        }
        fn clone_box(&self) -> Box<dyn chainsim::Contract> {
            Box::new(self.clone())
        }
        fn handle(
            &mut self,
            _env: &mut chainsim::CallEnv<'_>,
            _msg: &dyn std::any::Any,
        ) -> Result<(), chainsim::ContractError> {
            Ok(())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn scripted_party_advances_and_respects_budget() {
        let mut world = World::new(1);
        world.add_chain("a");
        let steps = vec![
            Step::new("one", |_| StepOutcome::Complete(vec![])),
            Step::new("two", |_| StepOutcome::Complete(vec![])),
            Step::new("three", |_| StepOutcome::Complete(vec![])),
        ];
        let mut party = ScriptedParty::new(PartyId(0), steps, Strategy::stop_after(2));
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2);
        assert!(party.done(), "stops after its deviation budget");
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 2);
        assert_eq!(party.total_steps(), 3);
        let _ = &mut world;
    }

    #[test]
    fn waiting_steps_do_not_advance() {
        let world = World::new(1);
        let steps = vec![Step::new("never", |_| StepOutcome::Wait)];
        let mut party = ScriptedParty::new(PartyId(1), steps, Strategy::compliant());
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 0);
        assert!(!party.done());
        assert!(actions.is_empty());
    }

    #[test]
    fn progress_steps_emit_without_advancing() {
        let world = World::new(1);
        let steps = vec![Step::new("chatty", |_| StepOutcome::Progress(vec![]))];
        let mut party = ScriptedParty::new(PartyId(1), steps, Strategy::compliant());
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        party.step(&world, &mut actions);
        assert_eq!(party.completed_steps(), 0);
        assert!(!party.done());
    }

    #[test]
    fn run_parties_terminates() {
        let mut world = World::new(1);
        world.add_chain("a");
        let parties = vec![ScriptedParty::new(
            PartyId(0),
            vec![Step::new("noop", |_| StepOutcome::Complete(vec![]))],
            Strategy::compliant(),
        )];
        let report = run_parties(&mut world, parties, 10);
        assert!(report.rounds() <= 10);
    }

    #[test]
    fn stateful_steps_carry_their_memo_across_forks() {
        let world = World::new(1);
        let steps = vec![Step::stateful("memo", |memo, _| {
            memo.done.insert(PartyId(9));
            StepOutcome::Progress(vec![])
        })];
        let mut party = ScriptedParty::new(PartyId(0), steps, Strategy::compliant());
        let mut actions = Vec::new();
        party.step(&world, &mut actions);
        let fork = party.fork(Strategy::stop_after(0));
        assert!(fork.done(), "fork adopts the new budget");
        assert!(fork.steps[0].memo.done.contains(&PartyId(9)), "fork carries the memo");
        assert!(format!("{:?}", fork.steps[0]).contains("memo"));
    }

    /// A three-step script against a counter world: the prefix recorder's
    /// checkpoints land on round 0, each post-completion round, and the
    /// terminal round; resumption reproduces from-scratch runs exactly.
    #[test]
    fn compliant_prefix_resumes_identically_to_scratch_runs() {
        fn build_parties() -> Vec<ScriptedParty> {
            // Party 0 completes a step every round; party 1 waits one round
            // between completions (so completions land on distinct rounds).
            let fast = vec![
                Step::new("f0", |_| StepOutcome::Complete(vec![])),
                Step::new("f1", |_| StepOutcome::Complete(vec![])),
            ];
            let slow = vec![
                Step::new("s0", |w| {
                    if w.now().height() >= 1 {
                        StepOutcome::Complete(vec![])
                    } else {
                        StepOutcome::Wait
                    }
                }),
                Step::new("s1", |w| {
                    if w.now().height() >= 3 {
                        StepOutcome::Complete(vec![])
                    } else {
                        StepOutcome::Wait
                    }
                }),
            ];
            vec![
                ScriptedParty::new(PartyId(0), fast, Strategy::compliant()),
                ScriptedParty::new(PartyId(1), slow, Strategy::compliant()),
            ]
        }
        fn fresh_world() -> World {
            let mut world = World::new(1);
            world.add_chain("a");
            world
        }

        let mut world = fresh_world();
        let mut prefix = DeviationTree::record(&mut world, build_parties(), 10);
        assert!(prefix.checkpoints() >= 3, "round 0, post-completion rounds, terminal");

        for stop in 0..=2usize {
            for deviator in [PartyId(0), PartyId(1)] {
                let strategy_of = move |p: PartyId| {
                    if p == deviator {
                        Strategy::stop_after(stop)
                    } else {
                        Strategy::compliant()
                    }
                };
                let resumed = prefix.resume(&mut world, &strategy_of);

                // From-scratch oracle with the same strategies.
                let mut scratch = fresh_world();
                let parties: Vec<ScriptedParty> = build_parties()
                    .into_iter()
                    .map(|p| {
                        let s = strategy_of(p.party);
                        p.fork(s)
                    })
                    .collect();
                let oracle = run_parties(&mut scratch, parties, 10);
                assert_eq!(
                    resumed.rounds,
                    oracle.rounds(),
                    "deviator {deviator} stop {stop}: rounds diverged"
                );
                assert_eq!(resumed.failed_actions, oracle.failures().len());
                assert_eq!(world.now(), scratch.now(), "clock must match after resume");
            }
        }
    }
}
